"""Hopcroft-style partition refinement for sharing maximization.

The alternative cycle-matching algorithm the paper discusses in §5.4:
instead of pairwise unification, compute the coarsest partition of graph
nodes that is *stable* — two nodes are in the same class only if they have
the same kind/data and their corresponding arguments are classmates.  The
stable partition is exactly bisimulation equivalence (the same relation
:func:`repro.vgraph.sharing.unify` decides pairwise), computed globally in
O(n · rounds); merging each class into one representative maximizes
sharing across cycles.

The paper found this performs about the same as the simple unification
algorithm, and that running unification first with partitioning as a
fallback is marginally better than either alone — the validator's
``matcher="combined"`` mode reproduces that strategy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .graph import ValueGraph


def refine_partition(graph: ValueGraph, roots: Optional[List[int]] = None,
                     max_rounds: int = 64) -> Dict[int, int]:
    """Compute the stable partition; returns node id → class representative."""
    if roots is not None:
        node_ids = sorted(graph.reachable(roots))
    else:
        node_ids = sorted(node.id for node in graph.live_nodes())

    # Initial classes: (kind, data, arity).
    class_of: Dict[int, int] = {}
    interner: Dict[Tuple, int] = {}
    for node_id in node_ids:
        node = graph.node(node_id)
        key = (node.kind, node.data, len(node.args))
        class_of[node_id] = interner.setdefault(key, len(interner))

    for _ in range(max_rounds):
        interner = {}
        updated: Dict[int, int] = {}
        changed = False
        for node_id in node_ids:
            node = graph.node(node_id)
            key = (
                class_of[node_id],
                tuple(class_of.get(graph.resolve(arg), -1) for arg in node.args),
            )
            updated[node_id] = interner.setdefault(key, len(interner))
        # Detect stabilization: same grouping as before.
        groups_before: Dict[int, List[int]] = {}
        groups_after: Dict[int, List[int]] = {}
        for node_id in node_ids:
            groups_before.setdefault(class_of[node_id], []).append(node_id)
            groups_after.setdefault(updated[node_id], []).append(node_id)
        changed = len(groups_after) != len(groups_before)
        class_of = updated
        if not changed:
            break

    representatives: Dict[int, int] = {}
    result: Dict[int, int] = {}
    for node_id in node_ids:
        cls = class_of[node_id]
        representative = representatives.setdefault(cls, node_id)
        result[node_id] = representative
    return result


def merge_by_partition(graph: ValueGraph, roots: Optional[List[int]] = None) -> int:
    """Merge every node into its partition representative.  Returns merge count."""
    mapping = refine_partition(graph, roots)
    merged = 0
    for node_id, representative in mapping.items():
        if node_id != representative and graph.redirect(node_id, representative):
            merged += 1
    if merged:
        graph.maximize_sharing()
    return merged


__all__ = ["refine_partition", "merge_by_partition"]
