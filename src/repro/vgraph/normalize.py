"""The normalization engine.

Applies the rewrite rules to every node reachable from the roots, then
maximizes sharing (hash-consing plus μ-cycle matching), and repeats until
either the goal node pairs have merged or nothing changes any more (§4 of
the paper).  Checking the goal after every round keeps the best case
cheap: when the optimizer did little, one or two rounds suffice — "the
amount of work done by the validator is proportional to the number of
transformations performed by the optimizer" (§4.1).

Two engines implement the fixpoint loop:

``worklist`` (the default)
    An incremental engine.  Round one seeds a worklist with every node
    reachable from the roots; every later round is seeded only by the
    *dirty set* — the parents of nodes redirected or merged in the
    previous round (delivered by the graph's merge-notification hook),
    closed transitively over the reverse use-edges so that rules whose
    applicability depends on a whole sub-graph (η-invariance, alias
    walks) still see every affected ancestor.  Rules are dispatched
    through the kind index of :func:`repro.vgraph.rules.build_rule_index`
    rather than tried one by one, and sharing maximization, μ-cycle
    matching and φ-branch sorting all consume the same dirty set.  This
    realizes the paper's proportionality claim structurally: a validation
    that needed few rewrites touches few nodes after the first round.

``fullscan``
    The original engine: every round re-scans every reachable node
    against every enabled rule.  Kept both as a baseline for the
    engine-parity tests/benchmarks and as a fallback.

Both engines produce the same verdicts; the worklist engine just invokes
far fewer rules to get there (see ``repro.bench.experiments.engine_comparison``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .graph import MergeListener, ValueGraph
from .partition import merge_by_partition
from .rules import ALL_RULE_GROUPS, Rule, build_rule_index, rules_for
from .sharing import merge_cycles

#: Valid values for the ``engine`` parameter.
ENGINES = ("worklist", "fullscan")


class NormalizationStats:
    """Counters describing one normalization run (reported by the validator)."""

    def __init__(self) -> None:
        #: Number of rule/sharing rounds executed.
        self.iterations = 0
        #: Number of successful rule applications.
        self.rewrites = 0
        #: Number of nodes merged by hash-consing.
        self.sharing_merges = 0
        #: Number of nodes merged by μ-cycle unification.
        self.cycle_merges = 0
        #: Number of nodes merged by partition refinement (fallback matcher).
        self.partition_merges = 0
        #: Whether the goal pairs were already equal before any rewriting.
        self.trivially_equal = False
        #: Number of nodes pushed onto the rewrite worklist (worklist engine).
        self.worklist_pushes = 0
        #: Number of dispatches where the kind index had candidate rules.
        self.index_hits = 0
        #: Number of individual rule invocations (both engines count this;
        #: the worklist engine's count is the ISSUE's headline metric).
        self.rule_invocations = 0
        #: Goal-directed runs only: did the loop end at a *natural*
        #: fixpoint (every goal merged, or a round applied no rewrite)
        #: rather than by exhausting ``max_iterations``?  Chain validation
        #: trusts read-off rejections only when this holds (not exported
        #: by :meth:`as_dict` — it qualifies a run, it is not work done).
        self.reached_fixpoint = False

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (handy for reports and benchmarks)."""
        return {
            "iterations": self.iterations,
            "rewrites": self.rewrites,
            "sharing_merges": self.sharing_merges,
            "cycle_merges": self.cycle_merges,
            "partition_merges": self.partition_merges,
            "trivially_equal": int(self.trivially_equal),
            "worklist_pushes": self.worklist_pushes,
            "index_hits": self.index_hits,
            "rule_invocations": self.rule_invocations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NormalizationStats {self.as_dict()}>"


class Normalizer:
    """Drives rewriting and sharing maximization over a shared value graph.

    Parameters
    ----------
    graph:
        The shared :class:`ValueGraph`.
    rule_groups:
        Which rule groups to enable (see :data:`repro.vgraph.rules.RULE_GROUPS`).
        The paper's ablations (Figures 6–8) are produced by varying this.
    matcher:
        Cycle-matching strategy: ``"simple"`` (pairwise unification),
        ``"partition"`` (Hopcroft-style refinement) or ``"combined"``
        (unification first, partitioning as a fallback) — the default, as
        in the paper (§5.4).
    max_iterations:
        Upper bound on rewrite/sharing rounds.
    engine:
        ``"worklist"`` (incremental, the default) or ``"fullscan"``
        (re-scan everything every round; the original engine).
    """

    def __init__(
        self,
        graph: ValueGraph,
        rule_groups: Iterable[str] = ALL_RULE_GROUPS,
        matcher: str = "combined",
        max_iterations: int = 40,
        engine: str = "worklist",
    ):
        if matcher not in ("simple", "partition", "combined"):
            raise ValueError(f"unknown matcher {matcher!r}")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r} (known: {ENGINES})")
        self.graph = graph
        self.rule_groups = tuple(rule_groups)
        self.rules: List[Rule] = rules_for(self.rule_groups)
        self.rule_index = build_rule_index(self.rule_groups)
        self.matcher = matcher
        self.max_iterations = max_iterations
        self.engine = engine

    # -- public API ------------------------------------------------------------
    def normalize_until_equal(self, goal_pairs: Sequence[Tuple[Optional[int], Optional[int]]]
                              ) -> Tuple[bool, NormalizationStats]:
        """Normalize until every goal pair denotes the same node.

        ``goal_pairs`` are pairs of node ids (or ``None``); a pair with a
        single ``None`` can never match.  Returns ``(matched, stats)``.
        """
        stats = NormalizationStats()
        if self._pairs_equal(goal_pairs):
            stats.trivially_equal = True
            stats.reached_fixpoint = True
            return True, stats

        roots = [node for pair in goal_pairs for node in pair if node is not None]
        if self._run_rounds(roots, stats, goal_pairs=goal_pairs):
            return True, stats

        # Fallback matcher: the paper reports that partitioning after the
        # simple algorithm fails is slightly better than either alone.
        if self.matcher == "combined":
            stats.partition_merges += merge_by_partition(self.graph, roots)
            if self._pairs_equal(goal_pairs):
                return True, stats
        return False, stats

    def normalize(self, roots: Sequence[int]) -> NormalizationStats:
        """Normalize the sub-graph under ``roots`` to a fixpoint (no goal)."""
        stats = NormalizationStats()
        self._run_rounds(list(roots), stats, goal_pairs=None)
        return stats

    # -- the fixpoint loop (both engines, goal-directed or not) ------------------
    def _run_rounds(self, roots: List[int], stats: NormalizationStats,
                    goal_pairs: Optional[Sequence[Tuple[Optional[int], Optional[int]]]] = None,
                    ) -> bool:
        """Run rewrite/sharing rounds; returns whether the goal pairs merged.

        With ``goal_pairs`` (validation) a round also prunes unobservable
        stores, checks the goal after every round, and stops once a round
        applied no rewrite.  Without (plain ``normalize``) the loop runs
        until neither rewrites nor merges occur.

        The ``worklist`` engine seeds round one from everything reachable
        and every later round from the dirty set the graph's merge
        notifications collected, closed over reverse use-edges; sharing
        maximization, μ-cycle matching and φ-branch sorting consume the
        same dirty set.  The ``fullscan`` engine re-scans everything every
        round.
        """
        incremental = self.engine == "worklist"
        dirty: Set[int] = set()
        on_merge: Optional[MergeListener] = None
        if incremental:
            def on_merge(old_root: int, new_root: int, stale_parents: Set[int]) -> None:
                dirty.update(stale_parents)
                dirty.add(new_root)

            self.graph.add_listener(on_merge)
        try:
            scope: Optional[Set[int]] = None  # None ⇒ round one: seed everything
            for _ in range(self.max_iterations):
                stats.iterations += 1
                candidates: Optional[Set[int]] = None
                if incremental:
                    seeds = set(self.graph.reachable(roots)) if scope is None else scope
                    rewrites, touched = self._apply_rules_worklist(seeds, stats)
                    if scope is not None:
                        candidates = touched | dirty
                else:
                    rewrites = self._apply_rules(roots, stats)
                rewrites += self._sort_phi_branches(roots, candidates=candidates)
                if goal_pairs is not None and "loadstore" in self.rule_groups:
                    rewrites += self._prune_unobservable_stores(roots)
                stats.rewrites += rewrites
                if candidates is not None:
                    merges = self.graph.maximize_sharing_incremental(set(dirty))
                else:
                    merges = self.graph.maximize_sharing()
                stats.sharing_merges += merges
                if self.matcher in ("simple", "combined"):
                    cycle_candidates = (touched | dirty) if candidates is not None else None
                    cycle = merge_cycles(self.graph, roots, candidates=cycle_candidates)
                    stats.cycle_merges += cycle
                    merges += cycle
                if self.matcher == "partition":
                    partition = merge_by_partition(self.graph, roots)
                    stats.partition_merges += partition
                    merges += partition
                if goal_pairs is not None:
                    if self._pairs_equal(goal_pairs):
                        stats.reached_fixpoint = True
                        return True
                    if rewrites == 0:
                        stats.reached_fixpoint = True
                        break
                elif rewrites == 0 and merges == 0:
                    break
                if incremental:
                    scope = self._dirty_closure(dirty)
                    dirty.clear()
        finally:
            if on_merge is not None:
                self.graph.remove_listener(on_merge)
        return False

    def _dirty_closure(self, dirty: Set[int]) -> Set[int]:
        """The dirty set closed transitively over reverse use-edges.

        Rules such as η-invariance inspect whole sub-graphs, so a change
        deep inside a term can enable a rewrite arbitrarily far up; the
        closure re-examines every ancestor of a changed node.  μ-cycles
        make a μ-node a transitive parent of its own body, so loop
        headers are automatically re-examined when anything in the loop
        changes.  The closure is proportional to the affected region, not
        to the graph.
        """
        closure: Set[int] = set()
        stack = [self.graph.resolve(node_id) for node_id in dirty]
        while stack:
            node_id = stack.pop()
            if node_id in closure:
                continue
            closure.add(node_id)
            for parent in self.graph.parents(node_id):
                if parent not in closure:
                    stack.append(parent)
        return closure

    def _apply_rules_worklist(self, seeds: Set[int],
                              stats: NormalizationStats) -> Tuple[int, Set[int]]:
        """One worklist pass: each seed is dispatched through the kind index.

        Nodes manufactured by a successful rewrite (and the replacement
        itself) join the current pass; everything else invalidated by the
        rewrite reaches the next round through the merge notifications.
        Returns ``(rewrites, touched)`` where ``touched`` is the set of
        canonical ids examined (the φ-sorting/cycle-matching candidates).
        """
        applied = 0
        touched: Set[int] = set()
        queue = deque(sorted(seeds))
        stats.worklist_pushes += len(queue)
        if not self.rule_index:
            touched.update(self.graph.resolve(node_id) for node_id in queue)
            return 0, touched
        while queue:
            node_id = self.graph.resolve(queue.popleft())
            if node_id in touched:
                continue
            touched.add(node_id)
            node = self.graph.node(node_id)
            rules = self.rule_index.get(node.kind)
            if not rules:
                continue
            stats.index_hits += 1
            for rule in rules:
                stats.rule_invocations += 1
                watermark = self.graph.next_id
                replacement = rule(self.graph, node)
                if replacement is None:
                    continue
                if self.graph.redirect(node_id, replacement):
                    applied += 1
                    created = range(watermark, self.graph.next_id)
                    queue.append(self.graph.resolve(replacement))
                    queue.extend(created)
                    stats.worklist_pushes += 1 + len(created)
                    break
        return applied, touched

    # -- internals --------------------------------------------------------------
    def _pairs_equal(self, goal_pairs: Sequence[Tuple[Optional[int], Optional[int]]]) -> bool:
        for left, right in goal_pairs:
            if left is None and right is None:
                continue
            if left is None or right is None:
                return False
            if not self.graph.same(left, right):
                return False
        return True

    def _apply_rules(self, roots: List[int], stats: NormalizationStats) -> int:
        if not self.rules:
            return 0
        applied = 0
        for node_id in sorted(self.graph.reachable(roots)):
            node_id = self.graph.resolve(node_id)
            node = self.graph.node(node_id)
            for rule in self.rules:
                stats.rule_invocations += 1
                replacement = rule(self.graph, node)
                if replacement is None:
                    continue
                if self.graph.redirect(node_id, replacement):
                    applied += 1
                    break
        return applied

    def _prune_unobservable_stores(self, roots: List[int]) -> int:
        """Drop stores to local allocations that nothing can ever read.

        A store to an ``alloca`` is observable only through loads (or
        memory-reading calls) inside the function — the allocation is dead
        once the function returns.  If no load or call argument reachable
        from the roots may alias the stored-to allocation, the store can be
        removed from every memory chain.  This is the graph-level mirror of
        dead-store elimination on non-escaping locals and is required to
        validate DSE (and the ``*t = 42`` store of the paper's §4.2
        example).
        """
        pruned = 0
        for store_id in unobservable_stores(self.graph, roots):
            store = self.graph.node(store_id)
            if store.kind != "store":
                continue
            if self.graph.redirect(store_id, store.args[2]):
                pruned += 1
        return pruned

    def _sort_phi_branches(self, roots: List[int],
                           candidates: Optional[Set[int]] = None) -> int:
        """Order φ branches canonically (by structural signature).

        This is part of the comparison machinery rather than a rewrite rule
        (the paper sorts branches before the syntactic equality check), so
        it runs regardless of which rule groups are enabled.  ``candidates``
        restricts the φ-nodes considered (the incremental engine passes its
        dirty set); the signatures themselves are always computed from the
        roots so sort keys stay globally consistent.
        """
        if candidates is not None:
            phi_ids = sorted({self.graph.resolve(node_id) for node_id in candidates})
            phi_ids = [node_id for node_id in phi_ids
                       if self.graph.node(node_id).kind == "phi"]
            if not phi_ids:
                return 0
            # A node's iterated hash depends only on its descendants, all
            # of which are reachable from the φ itself — so signatures
            # seeded from the dirty φs agree exactly with the global
            # computation while touching only the affected sub-graphs.
            signature_roots: List[int] = phi_ids
        else:
            phi_ids = list(self.graph.reachable(roots))
            signature_roots = roots
        signatures = self.graph.signatures(rounds=4, roots=signature_roots)
        changed = 0
        for node_id in phi_ids:
            node = self.graph.node(node_id)
            if node.kind != "phi" or len(node.args) <= 2:
                continue
            branches = node.phi_branches()
            def sort_key(branch: Tuple[int, int]) -> Tuple:
                condition, value = branch
                condition = self.graph.resolve(condition)
                value = self.graph.resolve(value)
                return (
                    signatures.get(condition, 0),
                    signatures.get(value, 0),
                    self.graph.format_node(condition, max_depth=3),
                    self.graph.format_node(value, max_depth=3),
                )
            ordered = sorted(branches, key=sort_key)
            if ordered != branches:
                replacement = self.graph.phi(ordered)
                if self.graph.redirect(node_id, replacement):
                    changed += 1
        return changed


def unobservable_stores(graph: ValueGraph, roots: Sequence[int]) -> List[int]:
    """Stores to local allocations nothing reachable from ``roots`` can read.

    The read-only analysis behind the normalizer's dead-store pruning: a
    store to an ``alloca`` whose address never escapes (through a call
    argument or a stored pointer value) and whose allocation is never
    loaded within the reachable sub-graph is observable to nobody.  The
    verdict is *root-scoped* — the same graph can hold a store that is
    dead under one root set and live under a larger one — which is
    exactly why chain validation re-runs this per pair before trusting a
    read-off rejection (see ``repro.validator.validate.validate_chain``).
    """

    def base_object(node_id: int) -> int:
        current = graph.resolve(node_id)
        node = graph.node(current)
        while node.kind == "gep":
            current = graph.resolve(node.args[0])
            node = graph.node(current)
        return current

    reachable = graph.reachable(roots)
    loaded_bases = set()
    escape_roots: List[int] = []
    store_nodes: List[int] = []
    for node_id in reachable:
        node = graph.node(node_id)
        if node.kind == "load":
            loaded_bases.add(base_object(node.args[0]))
        elif node.kind == "call":
            # The allocation's address may escape through any argument.
            escape_roots.extend(node.args)
        elif node.kind == "store":
            store_nodes.append(node_id)
            # Storing a pointer publishes it: the *value* operand escapes.
            escape_roots.append(node.args[0])

    # An allocation whose address was never passed to a call nor stored
    # into memory can only be read through loads whose pointer is a GEP
    # chain rooted at the allocation itself.
    escaped = {
        node_id
        for node_id in graph.reachable(escape_roots)
        if graph.node(node_id).kind == "alloca"
    }

    dead: List[int] = []
    for store_id in store_nodes:
        store = graph.node(store_id)
        if store.kind != "store":
            continue
        base = base_object(store.args[1])
        if graph.node(base).kind != "alloca":
            continue
        if base in escaped or base in loaded_bases:
            continue
        dead.append(store_id)
    return dead


__all__ = ["Normalizer", "NormalizationStats", "ENGINES", "unobservable_stores"]
