"""The normalization engine.

Applies the rewrite rules to every node reachable from the roots, then
maximizes sharing (hash-consing plus μ-cycle matching), and repeats until
either the goal node pairs have merged or nothing changes any more (§4 of
the paper).  Checking the goal after every round keeps the best case
cheap: when the optimizer did little, one or two rounds suffice — "the
amount of work done by the validator is proportional to the number of
transformations performed by the optimizer" (§4.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .graph import ValueGraph
from .partition import merge_by_partition
from .rules import ALL_RULE_GROUPS, Rule, rules_for
from .sharing import merge_cycles


class NormalizationStats:
    """Counters describing one normalization run (reported by the validator)."""

    def __init__(self) -> None:
        #: Number of rule/sharing rounds executed.
        self.iterations = 0
        #: Number of successful rule applications.
        self.rewrites = 0
        #: Number of nodes merged by hash-consing.
        self.sharing_merges = 0
        #: Number of nodes merged by μ-cycle unification.
        self.cycle_merges = 0
        #: Number of nodes merged by partition refinement (fallback matcher).
        self.partition_merges = 0
        #: Whether the goal pairs were already equal before any rewriting.
        self.trivially_equal = False

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (handy for reports and benchmarks)."""
        return {
            "iterations": self.iterations,
            "rewrites": self.rewrites,
            "sharing_merges": self.sharing_merges,
            "cycle_merges": self.cycle_merges,
            "partition_merges": self.partition_merges,
            "trivially_equal": int(self.trivially_equal),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NormalizationStats {self.as_dict()}>"


class Normalizer:
    """Drives rewriting and sharing maximization over a shared value graph.

    Parameters
    ----------
    graph:
        The shared :class:`ValueGraph`.
    rule_groups:
        Which rule groups to enable (see :data:`repro.vgraph.rules.RULE_GROUPS`).
        The paper's ablations (Figures 6–8) are produced by varying this.
    matcher:
        Cycle-matching strategy: ``"simple"`` (pairwise unification),
        ``"partition"`` (Hopcroft-style refinement) or ``"combined"``
        (unification first, partitioning as a fallback) — the default, as
        in the paper (§5.4).
    max_iterations:
        Upper bound on rewrite/sharing rounds.
    """

    def __init__(
        self,
        graph: ValueGraph,
        rule_groups: Iterable[str] = ALL_RULE_GROUPS,
        matcher: str = "combined",
        max_iterations: int = 40,
    ):
        if matcher not in ("simple", "partition", "combined"):
            raise ValueError(f"unknown matcher {matcher!r}")
        self.graph = graph
        self.rule_groups = tuple(rule_groups)
        self.rules: List[Rule] = rules_for(self.rule_groups)
        self.matcher = matcher
        self.max_iterations = max_iterations

    # -- public API ------------------------------------------------------------
    def normalize_until_equal(self, goal_pairs: Sequence[Tuple[Optional[int], Optional[int]]]
                              ) -> Tuple[bool, NormalizationStats]:
        """Normalize until every goal pair denotes the same node.

        ``goal_pairs`` are pairs of node ids (or ``None``); a pair with a
        single ``None`` can never match.  Returns ``(matched, stats)``.
        """
        stats = NormalizationStats()
        if self._pairs_equal(goal_pairs):
            stats.trivially_equal = True
            return True, stats

        roots = [node for pair in goal_pairs for node in pair if node is not None]
        for _ in range(self.max_iterations):
            stats.iterations += 1
            rewrites = self._apply_rules(roots)
            rewrites += self._sort_phi_branches(roots)
            if "loadstore" in self.rule_groups:
                rewrites += self._prune_unobservable_stores(roots)
            stats.rewrites += rewrites
            stats.sharing_merges += self.graph.maximize_sharing()
            if self.matcher in ("simple", "combined"):
                stats.cycle_merges += merge_cycles(self.graph, roots)
            if self.matcher == "partition":
                stats.partition_merges += merge_by_partition(self.graph, roots)
            if self._pairs_equal(goal_pairs):
                return True, stats
            if rewrites == 0:
                break

        # Fallback matcher: the paper reports that partitioning after the
        # simple algorithm fails is slightly better than either alone.
        if self.matcher == "combined":
            stats.partition_merges += merge_by_partition(self.graph, roots)
            if self._pairs_equal(goal_pairs):
                return True, stats
        return False, stats

    def normalize(self, roots: Sequence[int]) -> NormalizationStats:
        """Normalize the sub-graph under ``roots`` to a fixpoint (no goal)."""
        stats = NormalizationStats()
        for _ in range(self.max_iterations):
            stats.iterations += 1
            rewrites = self._apply_rules(list(roots))
            rewrites += self._sort_phi_branches(list(roots))
            stats.rewrites += rewrites
            merges = self.graph.maximize_sharing()
            stats.sharing_merges += merges
            if self.matcher in ("simple", "combined"):
                merges += merge_cycles(self.graph, list(roots))
            if self.matcher == "partition":
                merges += merge_by_partition(self.graph, list(roots))
            if rewrites == 0 and merges == 0:
                break
        return stats

    # -- internals --------------------------------------------------------------
    def _pairs_equal(self, goal_pairs: Sequence[Tuple[Optional[int], Optional[int]]]) -> bool:
        for left, right in goal_pairs:
            if left is None and right is None:
                continue
            if left is None or right is None:
                return False
            if not self.graph.same(left, right):
                return False
        return True

    def _apply_rules(self, roots: List[int]) -> int:
        if not self.rules:
            return 0
        applied = 0
        for node_id in sorted(self.graph.reachable(roots)):
            node_id = self.graph.resolve(node_id)
            node = self.graph.node(node_id)
            for rule in self.rules:
                replacement = rule(self.graph, node)
                if replacement is None:
                    continue
                if self.graph.redirect(node_id, replacement):
                    applied += 1
                    break
        return applied

    def _prune_unobservable_stores(self, roots: List[int]) -> int:
        """Drop stores to local allocations that nothing can ever read.

        A store to an ``alloca`` is observable only through loads (or
        memory-reading calls) inside the function — the allocation is dead
        once the function returns.  If no load or call argument reachable
        from the roots may alias the stored-to allocation, the store can be
        removed from every memory chain.  This is the graph-level mirror of
        dead-store elimination on non-escaping locals and is required to
        validate DSE (and the ``*t = 42`` store of the paper's §4.2
        example).
        """

        def base_object(node_id: int) -> int:
            current = self.graph.resolve(node_id)
            node = self.graph.node(current)
            while node.kind == "gep":
                current = self.graph.resolve(node.args[0])
                node = self.graph.node(current)
            return current

        reachable = self.graph.reachable(roots)
        loaded_bases = set()
        escape_roots: List[int] = []
        store_nodes: List[int] = []
        for node_id in reachable:
            node = self.graph.node(node_id)
            if node.kind == "load":
                loaded_bases.add(base_object(node.args[0]))
            elif node.kind == "call":
                # The allocation's address may escape through any argument.
                escape_roots.extend(node.args)
            elif node.kind == "store":
                store_nodes.append(node_id)
                # Storing a pointer publishes it: the *value* operand escapes.
                escape_roots.append(node.args[0])

        # An allocation whose address was never passed to a call nor stored
        # into memory can only be read through loads whose pointer is a GEP
        # chain rooted at the allocation itself.
        escaped = {
            node_id
            for node_id in self.graph.reachable(escape_roots)
            if self.graph.node(node_id).kind == "alloca"
        }

        pruned = 0
        for store_id in store_nodes:
            store = self.graph.node(store_id)
            if store.kind != "store":
                continue
            base = base_object(store.args[1])
            if self.graph.node(base).kind != "alloca":
                continue
            if base in escaped or base in loaded_bases:
                continue
            if self.graph.redirect(store_id, store.args[2]):
                pruned += 1
        return pruned

    def _sort_phi_branches(self, roots: List[int]) -> int:
        """Order φ branches canonically (by structural signature).

        This is part of the comparison machinery rather than a rewrite rule
        (the paper sorts branches before the syntactic equality check), so
        it runs regardless of which rule groups are enabled.
        """
        signatures = self.graph.signatures(rounds=4, roots=roots)
        changed = 0
        for node_id in list(self.graph.reachable(roots)):
            node = self.graph.node(node_id)
            if node.kind != "phi" or len(node.args) <= 2:
                continue
            branches = node.phi_branches()
            def sort_key(branch: Tuple[int, int]) -> Tuple:
                condition, value = branch
                condition = self.graph.resolve(condition)
                value = self.graph.resolve(value)
                return (
                    signatures.get(condition, 0),
                    signatures.get(value, 0),
                    self.graph.format_node(condition, max_depth=3),
                    self.graph.format_node(value, max_depth=3),
                )
            ordered = sorted(branches, key=sort_key)
            if ordered != branches:
                replacement = self.graph.phi(ordered)
                if self.graph.redirect(node_id, replacement):
                    changed += 1
        return changed


__all__ = ["Normalizer", "NormalizationStats"]
