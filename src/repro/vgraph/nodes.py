"""Value-graph node representation.

A value graph is a (possibly cyclic) term graph.  Each node has a *kind*,
an optional hashable *data* payload, and an ordered list of argument node
ids.  The graph itself (storage, hash-consing, redirection) lives in
:mod:`repro.vgraph.graph`; this module defines the node record and the
vocabulary of kinds.

Node kinds
----------
======================  =========================================  =============================
kind                    data                                       args
======================  =========================================  =============================
``const``               ``(value, type string)``                   —
``undef``               type string                                —
``param``               argument index                             —
``global``              global name                                —
``alloca``              allocation-site name                       —
``mem0``                —                                          —  (initial memory state)
``binop``               opcode                                     ``[lhs, rhs]``
``icmp``                predicate                                  ``[lhs, rhs]``
``cast``                ``(opcode, result type string)``           ``[value]``
``gep``                 —                                          ``[pointer, index...]``
``not``                 —                                          ``[condition]``
``phi``                 —                                          ``[c1, v1, c2, v2, ...]``
``mu``                  —                                          ``[initial, iteration]``
``eta``                 —                                          ``[exit condition, value]``
``load``                —                                          ``[pointer, memory]``
``store``               —                                          ``[value, pointer, memory]``
``call``                ``(callee, reads memory?, writes memory?)``  ``[arg..., memory?]``
``callmem``             —                                          ``[call]``  (memory after call)
``reach``               block name                                 —  (opaque gate fallback)
======================  =========================================  =============================

The ``phi`` node is the paper's general gated φ: a list of branches, each
a (condition, value) pair whose conditions are mutually exclusive.  The
``mu``/``eta`` nodes are the Gated-SSA loop constructs of §3.3.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: Kinds whose nodes are leaves (no arguments).
LEAF_KINDS = frozenset({"const", "undef", "param", "global", "alloca", "mem0", "reach"})

#: Kinds that represent a memory state rather than a first-class value.
MEMORY_KINDS = frozenset({"mem0", "store", "callmem"})

#: Kinds for which the node may participate in a cycle (created as
#: placeholders, patched afterwards).
CYCLIC_KINDS = frozenset({"mu"})

#: Pure operator kinds, safe to freely duplicate / commute with η.
PURE_OP_KINDS = frozenset({"binop", "icmp", "cast", "gep", "not", "phi"})


class VNode:
    """One node of a value graph.

    Nodes are owned by a :class:`~repro.vgraph.graph.ValueGraph`; their
    ``args`` store node *ids*, which must be resolved through the graph
    (redirections happen during normalization).
    """

    __slots__ = ("id", "kind", "data", "args")

    def __init__(self, node_id: int, kind: str, data=None, args: Optional[List[int]] = None):
        self.id = node_id
        self.kind = kind
        self.data = data
        self.args: List[int] = list(args) if args else []

    def key(self, resolved_args: Tuple[int, ...]) -> Tuple:
        """Hash-consing key given already-resolved argument ids."""
        return (self.kind, self.data, resolved_args)

    def is_leaf(self) -> bool:
        """Is this a leaf node?"""
        return self.kind in LEAF_KINDS

    def is_memory(self) -> bool:
        """Does this node directly denote a memory state?

        φ/μ/η nodes over memory are not detected here; this only classifies
        the kinds that are unambiguously memory states.
        """
        return self.kind in MEMORY_KINDS

    def is_constant(self) -> bool:
        """Is this a ``const`` node?"""
        return self.kind == "const"

    def constant_value(self) -> Optional[int]:
        """The integer payload of a ``const`` node (``None`` otherwise)."""
        if self.kind == "const":
            return self.data[0]
        return None

    def is_true(self) -> bool:
        """Is this the boolean constant ``true``?"""
        return self.kind == "const" and self.data == (1, "i1")

    def is_false(self) -> bool:
        """Is this the boolean constant ``false``?"""
        return self.kind == "const" and self.data == (0, "i1")

    def phi_branches(self) -> List[Tuple[int, int]]:
        """Branches of a ``phi`` node as (condition id, value id) pairs."""
        assert self.kind == "phi"
        return [(self.args[i], self.args[i + 1]) for i in range(0, len(self.args), 2)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        data = f" {self.data!r}" if self.data is not None else ""
        return f"<VNode #{self.id} {self.kind}{data} args={self.args}>"


__all__ = ["VNode", "LEAF_KINDS", "MEMORY_KINDS", "CYCLIC_KINDS", "PURE_OP_KINDS"]
