"""Construction of the shared value graph from functions.

This is the "hash-consed symbolic analysis" box of the paper's Figure 1.
For each function we:

1. check the CFG is reducible (the front end rejects irreducible control
   flow, §5.1);
2. compute dominators, natural loops and gate (path-condition) formulas;
3. symbolically evaluate the function bottom-up into graph nodes:
   ordinary instructions become operator nodes over their operands'
   nodes, φ-nodes at join points become *gated* φ nodes, φ-nodes at loop
   headers become μ nodes, and uses of loop-defined values outside their
   loop are wrapped in η nodes;
4. thread an abstract memory state through loads, stores and calls (the
   monadic interpretation of §3.1), giving memory its own φ/μ/η structure;
5. return the function's observable roots: the (gated) return value and
   the final memory state.

Both functions of a validation query are built into the *same*
:class:`~repro.vgraph.graph.ValueGraph`, so equal sub-terms are shared and
the final equality check is a pointer comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.loops import Loop
from ..analysis.manager import (
    AnalysisManager,
    FunctionAnalyses,
    compute_function_analyses,
)
from ..errors import ValidationInternalError
from ..gated.gates import (
    AndGate,
    CondGate,
    FalseGate,
    GateExpr,
    OrGate,
    ReachedGate,
    TrueGate,
)
from ..gated.monadic import defines_memory
from ..ir.instructions import (
    Alloca,
    BinaryOperator,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import BasicBlock, Function
from ..ir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
)
from .graph import ValueGraph


class FunctionSummary:
    """The observable roots of one function in the shared graph."""

    def __init__(self, function: Function, result: Optional[int], memory: int):
        self.function = function
        #: Node id of the (gated) return value, or ``None`` for void functions.
        self.result = result
        #: Node id of the final memory state.
        self.memory = memory

    def roots(self) -> List[int]:
        """The root node ids (result first when present, then memory)."""
        roots = []
        if self.result is not None:
            roots.append(self.result)
        roots.append(self.memory)
        return roots

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionSummary @{self.function.name} result={self.result} memory={self.memory}>"


class GraphBuilder:
    """Builds the value-graph representation of one function."""

    def __init__(self, graph: ValueGraph, function: Function,
                 analyses: Optional[FunctionAnalyses] = None):
        if analyses is None:
            # Raises IrreducibleCFGError / ValidationInternalError exactly
            # as the inline computation used to.
            analyses = compute_function_analyses(function)
        elif analyses.function is not function:
            raise ValidationInternalError(
                f"analysis bundle for @{analyses.function.name} used to build @{function.name}"
            )
        self.graph = graph
        self.function = function
        self.dom = analyses.dom
        self.loops = analyses.loops
        self.gates = analyses.gates
        self.memory_effects = analyses.memory_effects
        self.preds = analyses.preds

        self._value_nodes: Dict[int, int] = {}
        self._mem_entry: Dict[int, int] = {}
        self._mem_after: Dict[int, int] = {}
        self._mem_exit: Dict[int, int] = {}
        self._loop_exit_cond: Dict[int, int] = {}
        self._alloca_names: Dict[int, str] = {}
        self._building_mem: set = set()
        self._name_allocas()

    # -- public entry point -------------------------------------------------
    def build(self) -> FunctionSummary:
        """Symbolically evaluate the function; return its summary."""
        self._precompute_memory()
        ret_blocks = [
            block
            for block in self.dom.reachable_blocks()
            if isinstance(block.terminator, Ret)
        ]
        if not ret_blocks:
            # A function that never returns: its observable state is just the
            # initial memory (nothing the caller can see changes).
            return FunctionSummary(self.function, None, self.graph.make("mem0"))

        entry = self.function.entry
        result_branches: List[Tuple[int, int]] = []
        memory_branches: List[Tuple[int, int]] = []
        for block in ret_blocks:
            terminator = block.terminator
            condition = self._gate_to_node(
                self.gates.path_condition(entry, block), context=block
            )
            condition = self._wrap_loop_exits_for_block(condition, block)
            memory = self._memory_before(terminator)
            memory = self._wrap_loop_exits_for_block(memory, block)
            memory_branches.append((condition, memory))
            if terminator.value is not None:
                value = self._node_for_use(terminator.value, block)
                value = self._wrap_loop_exits_for_block(value, block)
                result_branches.append((condition, value))

        memory_root = self._combine_branches(memory_branches)
        result_root: Optional[int] = None
        if result_branches:
            result_root = self._combine_branches(result_branches)
        return FunctionSummary(self.function, result_root, memory_root)

    # -- naming ----------------------------------------------------------------
    def _name_allocas(self) -> None:
        index = 0
        for inst in self.function.instructions():
            if isinstance(inst, Alloca):
                name = inst.name if inst.name else f"site{index}"
                self._alloca_names[id(inst)] = name
                index += 1

    # -- small helpers ------------------------------------------------------------
    def _combine_branches(self, branches: List[Tuple[int, int]]) -> int:
        """Combine (condition, value) pairs into a single node."""
        if len(branches) == 1:
            return branches[0][1]
        values = {self.graph.resolve(v) for _, v in branches}
        if len(values) == 1:
            return branches[0][1]
        return self.graph.phi(branches)

    def _loop_chain_outside(self, definition_block: BasicBlock, use_block: Optional[BasicBlock]
                            ) -> List[Loop]:
        """Loops containing the definition but not the use, innermost first."""
        loops: List[Loop] = []
        loop = self.loops.loop_for(definition_block)
        while loop is not None:
            if use_block is not None and loop.contains(use_block):
                break
            loops.append(loop)
            loop = loop.parent
        return loops

    def _wrap_loop_exits(self, node: int, definition_block: BasicBlock,
                         use_block: Optional[BasicBlock]) -> int:
        """Wrap ``node`` in an η for every loop left between definition and use."""
        for loop in self._loop_chain_outside(definition_block, use_block):
            node = self.graph.make("eta", None, [self._exit_condition(loop), node])
        return node

    def _wrap_loop_exits_for_block(self, node: int, block: BasicBlock) -> int:
        """Wrap a node computed at ``block`` in η for every loop containing the block.

        Used for return blocks inside loops (early returns): the observable
        value is the one at the iteration where the function actually
        leaves the loop.
        """
        return self._wrap_loop_exits(node, block, None)

    def _exit_condition(self, loop: Loop) -> int:
        key = id(loop.header)
        if key not in self._loop_exit_cond:
            expr = self.gates.loop_exit_condition(loop)
            self._loop_exit_cond[key] = self._gate_to_node(expr, context=loop.header)
        return self._loop_exit_cond[key]

    # -- gate translation -----------------------------------------------------------
    def _gate_to_node(self, gate: GateExpr, context: BasicBlock) -> int:
        """Translate a gate formula into a graph node."""
        if isinstance(gate, TrueGate):
            return self.graph.true()
        if isinstance(gate, FalseGate):
            return self.graph.false()
        if isinstance(gate, CondGate):
            node = self._node_for_use(gate.value, context)
            return self.graph.not_(node) if gate.negated else node
        if isinstance(gate, ReachedGate):
            return self.graph.make("reach", gate.block_name)
        if isinstance(gate, AndGate):
            result = self.graph.true()
            for operand in gate.operands:
                result = self.graph.and_(result, self._gate_to_node(operand, context))
            return result
        if isinstance(gate, OrGate):
            result = self.graph.false()
            for operand in gate.operands:
                result = self.graph.or_(result, self._gate_to_node(operand, context))
            return result
        raise ValidationInternalError(f"unknown gate expression {gate!r}")

    # -- value translation -----------------------------------------------------------
    def _node_for_use(self, value: Value, use_block: Optional[BasicBlock]) -> int:
        """Node for ``value`` as observed from ``use_block`` (adds η wrappers)."""
        node = self._node_of(value)
        if isinstance(value, Instruction) and value.parent is not None:
            node = self._wrap_loop_exits(node, value.parent, use_block)
        return node

    def _node_of(self, value: Value) -> int:
        """Node for ``value`` at its definition site (memoized)."""
        key = id(value)
        if key in self._value_nodes:
            return self._value_nodes[key]
        node = self._translate(value)
        self._value_nodes[key] = node
        return node

    def _translate(self, value: Value) -> int:
        graph = self.graph
        if isinstance(value, ConstantInt):
            return graph.const(value.value, str(value.type))
        if isinstance(value, ConstantFloat):
            return graph.make("const", (value.value, str(value.type)))
        if isinstance(value, ConstantPointerNull):
            return graph.make("const", (0, str(value.type)))
        if isinstance(value, UndefValue):
            return graph.make("undef", str(value.type))
        if isinstance(value, Argument):
            return graph.make("param", value.index)
        if isinstance(value, GlobalVariable):
            return graph.make("global", value.name)
        if isinstance(value, Function):
            return graph.make("global", value.name)
        if isinstance(value, Instruction):
            return self._translate_instruction(value)
        raise ValidationInternalError(f"cannot translate value {value!r}")

    def _translate_instruction(self, inst: Instruction) -> int:
        graph = self.graph
        block = inst.parent
        if isinstance(inst, Phi):
            return self._translate_phi(inst)
        if isinstance(inst, BinaryOperator):
            return graph.make(
                "binop",
                inst.opcode,
                [self._node_for_use(inst.lhs, block), self._node_for_use(inst.rhs, block)],
            )
        if isinstance(inst, ICmp):
            return graph.make(
                "icmp",
                inst.predicate,
                [self._node_for_use(inst.lhs, block), self._node_for_use(inst.rhs, block)],
            )
        if isinstance(inst, Select):
            condition = self._node_for_use(inst.condition, block)
            return graph.phi(
                [
                    (condition, self._node_for_use(inst.if_true, block)),
                    (graph.not_(condition), self._node_for_use(inst.if_false, block)),
                ]
            )
        if isinstance(inst, Cast):
            return graph.make(
                "cast", (inst.opcode, str(inst.type)), [self._node_for_use(inst.value, block)]
            )
        if isinstance(inst, GetElementPtr):
            args = [self._node_for_use(inst.pointer, block)]
            args.extend(self._node_for_use(index, block) for index in inst.indices)
            return graph.make("gep", None, args)
        if isinstance(inst, Alloca):
            return graph.make("alloca", self._alloca_names[id(inst)])
        if isinstance(inst, Load):
            return graph.make(
                "load",
                None,
                [self._node_for_use(inst.pointer, block), self._memory_before(inst)],
            )
        if isinstance(inst, Call):
            return self._translate_call(inst)
        raise ValidationInternalError(f"cannot translate instruction {inst!r}")

    def _translate_call(self, call: Call) -> int:
        block = call.parent
        callee_name = call.callee.name if hasattr(call.callee, "name") else "<indirect>"
        reads = call.may_read_memory()
        writes = call.may_write_memory()
        args = [self._node_for_use(arg, block) for arg in call.args]
        if reads or writes:
            args.append(self._memory_before(call))
        return self.graph.make("call", (callee_name, reads, writes), args)

    def _translate_phi(self, phi: Phi) -> int:
        block = phi.parent
        loop = self.loops.loop_for(block)
        if loop is not None and loop.header is block:
            return self._translate_mu(phi, loop)

        gates = dict()
        for pred, gate in self.gates.phi_gates(block):
            gates[id(pred)] = gate
        branches: List[Tuple[int, int]] = []
        for value, pred in phi.incoming:
            gate = gates.get(id(pred))
            if gate is None:
                gate = ReachedGate(pred.name)
            condition = self._gate_to_node(gate, context=block)
            node = self._node_for_use(value, block)
            branches.append((condition, node))
        return self._combine_branches(branches) if branches else self.graph.make("undef", "phi")

    def _translate_mu(self, phi: Phi, loop: Loop) -> int:
        graph = self.graph
        block = phi.parent
        mu = graph.make_mu()
        self._value_nodes[id(phi)] = mu

        initial_branches: List[Tuple[int, int]] = []
        iteration_branches: List[Tuple[int, int]] = []
        entry_gates = {id(pred): gate for pred, gate in self.gates.phi_gates(block)}
        for value, pred in phi.incoming:
            node = self._node_for_use(value, block)
            if loop.contains(pred):
                condition = self._gate_to_node(
                    self.gates.path_condition(loop.header, pred), context=block
                )
                iteration_branches.append((condition, node))
            else:
                gate = entry_gates.get(id(pred), ReachedGate(pred.name))
                condition = self._gate_to_node(gate, context=block)
                initial_branches.append((condition, node))

        if not initial_branches or not iteration_branches:
            # Degenerate "loop" (e.g. unreachable back edge); fall back to a
            # plain gated φ so construction stays total.
            branches = initial_branches + iteration_branches
            node = self._combine_branches(branches) if branches else graph.make("undef", "phi")
            self._value_nodes[id(phi)] = node
            return node

        initial = self._combine_branches(initial_branches)
        iteration = self._combine_branches(iteration_branches)
        graph.set_args(mu, [initial, iteration])
        return mu

    # -- memory threading ---------------------------------------------------------
    def _precompute_memory(self) -> None:
        """Materialise memory states block-by-block in reverse postorder.

        Every block's entry state only depends on forward predecessors
        (already processed) and on loop-header μ placeholders (created the
        moment the header is reached), so the recursion during symbolic
        evaluation always finds memory states memoized and cycles are
        broken at headers.  The μ iteration arguments — which depend on the
        loop bodies' exits — are filled in afterwards.
        """
        from ..analysis.cfg import reverse_postorder

        pending: List[Tuple[Loop, int]] = []
        for block in reverse_postorder(self.function):
            loop = self.loops.loop_for(block)
            if (loop is not None and loop.header is block
                    and self._loop_writes_memory(loop)
                    and id(block) not in self._mem_entry):
                mu = self.graph.make_mu()
                self._mem_entry[id(block)] = mu
                pending.append((loop, mu))
            self._memory_entry(block)
            self._memory_exit(block)
        for loop, mu in pending:
            initial = self._memory_from_edges(loop.header, inside_loop=None, restrict_outside=loop)
            iteration = self._memory_from_edges(loop.header, inside_loop=loop, restrict_outside=None)
            self.graph.set_args(mu, [initial, iteration])

    def _memory_before(self, inst: Instruction) -> int:
        """The abstract memory state just before ``inst`` executes."""
        block = inst.parent
        current = self._memory_entry(block)
        for other in block.instructions:
            if other is inst:
                return current
            if defines_memory(other):
                current = self._memory_after(other, current)
        return current

    def _memory_after(self, inst: Instruction, memory_in: int) -> int:
        key = id(inst)
        if key in self._mem_after:
            return self._mem_after[key]
        graph = self.graph
        block = inst.parent
        if isinstance(inst, Store):
            node = graph.make(
                "store",
                None,
                [
                    self._node_for_use(inst.value, block),
                    self._node_for_use(inst.pointer, block),
                    memory_in,
                ],
            )
        elif isinstance(inst, Call):
            call_node = self._node_of(inst)
            node = graph.make("callmem", None, [call_node])
        else:  # pragma: no cover - defensive
            raise ValidationInternalError(f"{inst!r} does not define memory")
        self._mem_after[key] = node
        return node

    def _memory_entry(self, block: BasicBlock) -> int:
        key = id(block)
        if key in self._mem_entry:
            return self._mem_entry[key]
        graph = self.graph

        if block is self.function.entry:
            node = graph.make("mem0")
            self._mem_entry[key] = node
            return node

        loop = self.loops.loop_for(block)
        if loop is not None and loop.header is block and self._loop_writes_memory(loop):
            mu = graph.make_mu()
            self._mem_entry[key] = mu
            initial = self._memory_from_edges(block, inside_loop=None, restrict_outside=loop)
            iteration = self._memory_from_edges(block, inside_loop=loop, restrict_outside=None)
            graph.set_args(mu, [initial, iteration])
            return mu

        if loop is not None and loop.header is block:
            # Loop does not write memory: the state is whatever flowed in
            # from outside the loop.
            node = self._memory_from_edges(block, inside_loop=None, restrict_outside=loop)
            self._mem_entry[key] = node
            return node

        node = self._memory_from_edges(block, inside_loop=None, restrict_outside=None)
        self._mem_entry[key] = node
        return node

    def _memory_from_edges(self, block: BasicBlock, inside_loop: Optional[Loop],
                           restrict_outside: Optional[Loop]) -> int:
        """Combine predecessors' outgoing memory along the edges into ``block``.

        ``inside_loop`` selects only predecessors inside the given loop (for
        the μ iteration argument); ``restrict_outside`` selects only
        predecessors outside the given loop (for the μ initial argument).
        """
        predecessors = self.preds.get(block, [])
        selected: List[BasicBlock] = []
        for pred in predecessors:
            if inside_loop is not None and not inside_loop.contains(pred):
                continue
            if restrict_outside is not None and restrict_outside.contains(pred):
                continue
            selected.append(pred)
        if not selected:
            return self.graph.make("mem0")

        if inside_loop is not None:
            start = inside_loop.header
        else:
            start = self.dom.idom(block) or self.function.entry

        branches: List[Tuple[int, int]] = []
        for pred in selected:
            memory = self._memory_exit(pred)
            # Loop-exit edges: the memory leaving the loop is the state at
            # the iteration where the loop exits, so wrap in η for every
            # loop that contains the predecessor but not this block — but
            # only when the loop actually writes memory (otherwise the state
            # is invariant across iterations and the η would be noise).
            chain_loop = self.loops.loop_for(pred)
            while chain_loop is not None and not chain_loop.contains(block):
                if self._loop_writes_memory(chain_loop):
                    memory = self.graph.make(
                        "eta", None, [self._exit_condition(chain_loop), memory]
                    )
                chain_loop = chain_loop.parent
            condition = self.graph.and_(
                self._gate_to_node(self.gates.path_condition(start, pred), context=block),
                self._gate_to_node(self.gates.edge_condition(pred, block), context=block),
            )
            branches.append((condition, memory))
        return self._combine_branches(branches)

    def _memory_exit(self, block: BasicBlock) -> int:
        key = id(block)
        if key in self._mem_exit:
            return self._mem_exit[key]
        if key in self._building_mem:
            # A memory cycle not broken by a μ (should not happen for
            # reducible CFGs); fall back to an opaque state.
            return self.graph.make("reach", f"mem:{block.name}")
        self._building_mem.add(key)
        current = self._memory_entry(block)
        for inst in block.instructions:
            if defines_memory(inst):
                current = self._memory_after(inst, current)
        self._building_mem.discard(key)
        self._mem_exit[key] = current
        return current

    def _loop_writes_memory(self, loop: Loop) -> bool:
        return any(self.memory_effects.block_writes(b) for b in loop.blocks)


def build_function_graph(graph: ValueGraph, function: Function,
                         manager: Optional[AnalysisManager] = None) -> FunctionSummary:
    """Convenience wrapper: build ``function`` into ``graph``."""
    analyses = manager.analyses_for(function) if manager is not None else None
    return GraphBuilder(graph, function, analyses).build()


def build_shared_graph(before: Function, after: Function,
                       manager: Optional[AnalysisManager] = None,
                       ) -> Tuple[ValueGraph, FunctionSummary, FunctionSummary]:
    """Build both functions into one shared graph (the paper's Figure 1).

    When an :class:`AnalysisManager` is given, the per-function analyses
    (CFG predecessors, dominators, loops, gates, memory effects) are
    fetched from — and cached in — it, so a function version appearing in
    several queries (the interior versions of a stepwise pipeline walk)
    is analysed only once.
    """
    graph = ValueGraph()
    summary_before = build_function_graph(graph, before, manager)
    summary_after = build_function_graph(graph, after, manager)
    return graph, summary_before, summary_after


def build_chain_graph(versions: List[Function],
                      manager: Optional[AnalysisManager] = None,
                      ) -> Tuple[ValueGraph, List[FunctionSummary]]:
    """Build a whole checkpoint chain into ONE shared graph.

    This generalizes :func:`build_shared_graph` from 2 versions to the
    k versions of a stepwise pipeline walk: every version is translated
    into the *same* :class:`ValueGraph`, so a sub-term left untouched by
    the pipeline exists **once** no matter how many checkpoints contain
    it — where the per-pair strategy re-translates every interior
    checkpoint twice (as the "after" of step *i* and the "before" of step
    *i + 1*) and re-normalizes the largely identical shared structure
    once per pair.

    Returns ``(graph, summaries)`` with one :class:`FunctionSummary` per
    version, in chain order; ``summaries[i]``/``summaries[i + 1]`` hold
    the goal roots of the adjacent pair validating step *i*.
    """
    graph = ValueGraph()
    summaries = [build_function_graph(graph, version, manager)
                 for version in versions]
    return graph, summaries


def extend_chain_graph(graph: ValueGraph,
                       old_summaries: Dict[str, FunctionSummary],
                       new_versions: List[Function],
                       manager: Optional[AnalysisManager] = None,
                       fingerprints: Optional[List[str]] = None,
                       ) -> Tuple[List[FunctionSummary], int, int]:
    """Extend a retained chain graph with only the *changed* versions.

    The incremental counterpart of :func:`build_chain_graph`: ``graph``
    is a previously constructed (never normalized) chain graph and
    ``old_summaries`` maps the content fingerprint of every version it
    already contains to that version's :class:`FunctionSummary`.  Each
    new version whose fingerprint is known reuses the retained roots
    outright — identical IR translates to the identical gated term, and
    μ placeholders are not hash-consed, so reusing the summary (rather
    than re-translating and praying for consing) is what keeps unchanged
    checkpoints free.  Only fingerprint-misses are symbolically evaluated
    into the graph, where hash-consing shares every sub-term they have in
    common with the retained population.

    Returns ``(summaries, nodes_reused, nodes_built)``: one summary per
    element of ``new_versions`` (reused summaries are rebound to the new
    version object), the number of *pre-existing* nodes the freshly
    built versions reached (the ``subgraph_nodes_reused`` telemetry — 0
    when nothing needed building), and the number of nodes construction
    actually created.
    """
    if fingerprints is None:
        from ..analysis.manager import CHECKPOINT_FINGERPRINTS
        fingerprints = [CHECKPOINT_FINGERPRINTS.fingerprint(version)
                        for version in new_versions]
    watermark = graph.next_id
    summaries: List[FunctionSummary] = []
    fresh_roots: List[int] = []
    for version, fingerprint in zip(new_versions, fingerprints):
        retained = old_summaries.get(fingerprint)
        if retained is not None:
            summaries.append(FunctionSummary(version, retained.result,
                                             retained.memory))
        else:
            summary = build_function_graph(graph, version, manager)
            summaries.append(summary)
            fresh_roots.extend(summary.roots())
    nodes_built = graph.next_id - watermark
    nodes_reused = 0
    if fresh_roots:
        nodes_reused = sum(1 for node_id in graph.reachable(fresh_roots)
                           if node_id < watermark)
    return summaries, nodes_reused, nodes_built


__all__ = [
    "GraphBuilder",
    "FunctionSummary",
    "build_function_graph",
    "build_shared_graph",
    "build_chain_graph",
    "extend_chain_graph",
]
