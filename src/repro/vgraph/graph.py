"""The shared, hash-consed value graph.

One :class:`ValueGraph` holds the nodes of *both* functions being
compared, so that identical sub-terms (arguments, constants, common
sub-expressions) are literally the same node — the paper's key trick for
making the equality check O(1) in the best case.

The graph supports:

* **hash-consing** — :meth:`make` returns an existing node when an
  identical one (same kind, data and resolved arguments) already exists;
* **redirection** — normalization rules replace a node by another via
  :meth:`redirect`; a union-find style forwarding table with path
  compression keeps lookups cheap;
* **cycle support** — μ-nodes are created as placeholders with
  :meth:`make_mu` and patched with :meth:`set_args` once the loop body has
  been translated;
* **structural signatures** — an iterated (Weisfeiler–Lehman style) hash
  that is stable across graphs and tolerant of cycles, used to order φ
  branches canonically and to seed cycle matching;
* **sharing maximization** — re-hash-consing to a fixpoint after rewrites
  (:meth:`maximize_sharing`), used together with the μ-cycle unification
  in :mod:`repro.vgraph.sharing`;
* **reverse use-edges** — every node knows which nodes use it as an
  argument (:meth:`parents`), so a redirect can enumerate exactly the
  nodes whose hash-consing keys became stale;
* **change notification** — listeners registered with
  :meth:`add_listener` observe every merge as ``(old, new, stale_parents)``,
  which is what feeds the worklist of the incremental normalization
  engine (:class:`repro.vgraph.normalize.Normalizer`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .nodes import CYCLIC_KINDS, VNode

#: Signature of a merge listener: ``(old_root, new_root, stale_parents)``.
#: ``stale_parents`` are the (registration-time canonical) ids of nodes
#: that used ``old_root`` as an argument — exactly the nodes whose
#: hash-consing keys were invalidated by the merge.
MergeListener = Callable[[int, int, Set[int]], None]


class ValueGraph:
    """A mutable, hash-consed term graph (possibly cyclic)."""

    def __init__(self) -> None:
        self._nodes: Dict[int, VNode] = {}
        self._forward: Dict[int, int] = {}
        self._table: Dict[Tuple, int] = {}
        self._next_id = 0
        self._parents: Dict[int, Set[int]] = {}
        self._listeners: List[MergeListener] = []

    # -- identity --------------------------------------------------------
    def resolve(self, node_id: int) -> int:
        """Follow redirections to the canonical id (with path compression)."""
        root = node_id
        while root in self._forward:
            root = self._forward[root]
        while node_id in self._forward and self._forward[node_id] is not root:
            next_id = self._forward[node_id]
            self._forward[node_id] = root
            node_id = next_id
        return root

    def node(self, node_id: int) -> VNode:
        """The canonical :class:`VNode` for ``node_id``."""
        return self._nodes[self.resolve(node_id)]

    def same(self, a: int, b: int) -> bool:
        """Do two ids denote the same canonical node?"""
        return self.resolve(a) == self.resolve(b)

    def __len__(self) -> int:
        return len(self._nodes)

    def live_node_count(self) -> int:
        """Number of canonical (non-redirected) nodes."""
        return sum(1 for node_id in self._nodes if node_id not in self._forward)

    @property
    def next_id(self) -> int:
        """The id the next created node will receive (a creation watermark).

        The incremental engine snapshots this before applying a rule and
        afterwards knows exactly which nodes the rule manufactured.
        """
        return self._next_id

    # -- reverse use-edges and change notification ------------------------
    def parents(self, node_id: int) -> Set[int]:
        """Canonical ids of the nodes that use ``node_id`` as an argument.

        The result may include nodes that are no longer reachable from any
        root (parent sets are never pruned); consumers treat it as an
        over-approximation.
        """
        registered = self._parents.get(self.resolve(node_id))
        if not registered:
            return set()
        return {self.resolve(parent) for parent in registered}

    def add_listener(self, listener: MergeListener) -> None:
        """Register a callback observing every merge (redirect or sharing)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: MergeListener) -> None:
        """Unregister a callback added with :meth:`add_listener`."""
        self._listeners.remove(listener)

    def _register_args(self, node_id: int, args: Iterable[int]) -> None:
        for arg in args:
            self._parents.setdefault(arg, set()).add(node_id)

    def _merge(self, old_root: int, new_root: int) -> None:
        """Forward ``old_root`` to ``new_root``, migrating parent edges.

        Every merge in the graph funnels through here so listeners see a
        complete change feed: the stale parents handed to them are the
        nodes whose hash-consing keys the merge invalidated.
        """
        self._forward[old_root] = new_root
        stale = self._parents.pop(old_root, None)
        if stale:
            self._parents.setdefault(new_root, set()).update(stale)
        if self._listeners:
            notified = set(stale) if stale else set()
            for listener in self._listeners:
                listener(old_root, new_root, notified)

    # -- construction ------------------------------------------------------
    def make(self, kind: str, data=None, args: Sequence[int] = ()) -> int:
        """Create (or reuse) a node.  Returns its id."""
        resolved = tuple(self.resolve(a) for a in args)
        key = (kind, data, resolved)
        existing = self._table.get(key)
        if existing is not None:
            return self.resolve(existing)
        node_id = self._next_id
        self._next_id += 1
        node = VNode(node_id, kind, data, list(resolved))
        self._nodes[node_id] = node
        self._table[key] = node_id
        self._register_args(node_id, resolved)
        return node_id

    def make_mu(self) -> int:
        """Create a fresh (non-hash-consed) μ placeholder node."""
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = VNode(node_id, "mu", None, [])
        return node_id

    def set_args(self, node_id: int, args: Sequence[int]) -> None:
        """Patch the arguments of a placeholder node (μ construction)."""
        canonical = self.resolve(node_id)
        node = self._nodes[canonical]
        if node.kind not in CYCLIC_KINDS:
            raise ValueError(f"set_args is only for cyclic nodes, not {node.kind!r}")
        node.args = [self.resolve(a) for a in args]
        self._register_args(canonical, node.args)

    # -- convenience constructors ----------------------------------------------
    def const(self, value: int, type_str: str = "i32") -> int:
        """An integer constant node."""
        return self.make("const", (value, type_str))

    def true(self) -> int:
        """The boolean constant ``true``."""
        return self.make("const", (1, "i1"))

    def false(self) -> int:
        """The boolean constant ``false``."""
        return self.make("const", (0, "i1"))

    def not_(self, condition: int) -> int:
        """Boolean negation with the obvious simplifications."""
        node = self.node(condition)
        if node.is_true():
            return self.false()
        if node.is_false():
            return self.true()
        if node.kind == "not":
            return self.resolve(node.args[0])
        return self.make("not", None, [condition])

    def and_(self, a: int, b: int) -> int:
        """Boolean conjunction with the obvious simplifications."""
        node_a, node_b = self.node(a), self.node(b)
        if node_a.is_true():
            return self.resolve(b)
        if node_b.is_true():
            return self.resolve(a)
        if node_a.is_false() or node_b.is_false():
            return self.false()
        if self.same(a, b):
            return self.resolve(a)
        return self.make("binop", "and", [a, b])

    def or_(self, a: int, b: int) -> int:
        """Boolean disjunction with the obvious simplifications."""
        node_a, node_b = self.node(a), self.node(b)
        if node_a.is_false():
            return self.resolve(b)
        if node_b.is_false():
            return self.resolve(a)
        if node_a.is_true() or node_b.is_true():
            return self.true()
        if self.same(a, b):
            return self.resolve(a)
        return self.make("binop", "or", [a, b])

    def phi(self, branches: Sequence[Tuple[int, int]]) -> int:
        """A gated φ-node from (condition, value) pairs."""
        args: List[int] = []
        for condition, value in branches:
            args.extend([condition, value])
        return self.make("phi", None, args)

    # -- rewriting ------------------------------------------------------------
    def redirect(self, old: int, new: int) -> bool:
        """Make every reference to ``old`` mean ``new``.  Returns ``True`` if effective."""
        old_root, new_root = self.resolve(old), self.resolve(new)
        if old_root == new_root:
            return False
        self._merge(old_root, new_root)
        return True

    def resolve_args(self, node: VNode) -> List[int]:
        """The node's arguments, each resolved to its canonical id."""
        return [self.resolve(a) for a in node.args]

    def canonicalize_args(self) -> None:
        """Rewrite every live node's argument list to canonical ids."""
        for node_id, node in self._nodes.items():
            if node_id in self._forward:
                continue
            node.args = [self.resolve(a) for a in node.args]

    def maximize_sharing(self, max_rounds: int = 50) -> int:
        """Merge structurally identical nodes until a fixpoint.

        Returns the number of merges performed.  Cyclic structures that
        are equivalent but not syntactically identical are *not* merged
        here; that is the job of :func:`repro.vgraph.sharing.merge_cycles`.
        """
        merges = 0
        for _ in range(max_rounds):
            self.canonicalize_args()
            table: Dict[Tuple, int] = {}
            changed = False
            for node_id in sorted(self._nodes):
                if node_id in self._forward:
                    continue
                node = self._nodes[node_id]
                if node.kind in CYCLIC_KINDS:
                    # μ-nodes may be self-referential; only merge when the
                    # key (with self-references normalized) matches.
                    key = self._mu_key(node)
                else:
                    key = node.key(tuple(node.args))
                other = table.get(key)
                if other is None:
                    table[key] = node_id
                elif other != node_id:
                    self._merge(node_id, other)
                    merges += 1
                    changed = True
            if not changed:
                break
        self._rebuild_table()
        return merges

    def maximize_sharing_incremental(self, seeds: Iterable[int]) -> int:
        """Congruence-closure sharing restricted to a dirty set.

        ``seeds`` are nodes whose hash-consing keys may have changed (the
        stale parents of recent merges).  Each is re-keyed against the
        persistent cons table; duplicates are merged and the merge's own
        stale parents are queued in turn, so the pass runs to the same
        fixpoint a full :meth:`maximize_sharing` scan would reach on the
        affected region — in time proportional to the change, not the
        graph.  μ-nodes are left to the cycle matchers, exactly as
        :meth:`_rebuild_table` excludes them from the cons table.
        """
        merges = 0
        queue = deque(seeds)
        while queue:
            node_id = self.resolve(queue.popleft())
            node = self._nodes[node_id]
            if node.kind in CYCLIC_KINDS:
                continue
            node.args = [self.resolve(a) for a in node.args]
            key = node.key(tuple(node.args))
            existing = self._table.get(key)
            if existing is None:
                self._table[key] = node_id
                continue
            existing = self.resolve(existing)
            if existing == node_id:
                continue
            stale = self._parents.get(node_id)
            follow_up = list(stale) if stale else []
            self._merge(node_id, existing)
            merges += 1
            queue.extend(follow_up)
            queue.append(existing)
        return merges

    def _mu_key(self, node: VNode) -> Tuple:
        args = []
        for arg in node.args:
            resolved = self.resolve(arg)
            args.append("self" if resolved == node.id else resolved)
        return (node.kind, node.data, tuple(args))

    def _rebuild_table(self) -> None:
        self.canonicalize_args()
        self._table = {}
        for node_id, node in self._nodes.items():
            if node_id in self._forward:
                continue
            if node.kind in CYCLIC_KINDS:
                continue
            self._table.setdefault(node.key(tuple(node.args)), node_id)

    # -- copying ------------------------------------------------------------
    def clone(self, roots: Optional[Iterable[int]] = None) -> "ValueGraph":
        """An independent copy of this graph (optionally root-restricted).

        With ``roots`` the copy keeps only the nodes reachable from them
        — the incremental revalidator clones its *pristine* (constructed,
        never normalized) master chain graph down to the current
        checkpoint roots before normalizing, so retired versions' nodes
        neither appear in the work graph nor skew the full
        :meth:`maximize_sharing` scan of the first normalization round.
        Restriction therefore requires a merge-free graph: redirects
        forward arbitrary ids across subgraph boundaries, and slicing a
        forwarded graph could orphan forward targets.

        Node ids are preserved (``_next_id`` carries over, so watermark
        arithmetic against the source stays valid), the cons table keeps
        exactly the entries whose node survived, parent edges are rebuilt
        from the kept argument lists, and listeners are *not* copied —
        they observe the graph they were registered on.
        """
        copy = ValueGraph()
        if roots is None:
            kept = None
        else:
            if self._forward:
                raise ValueError(
                    "root-restricted clone requires a merge-free graph "
                    "(redirects may forward across the kept subgraph)")
            kept = self.reachable(roots)
        for node_id, node in self._nodes.items():
            if kept is not None and node_id not in kept:
                continue
            copy._nodes[node_id] = VNode(node.id, node.kind, node.data,
                                         list(node.args))
            # Parent edges live under canonical ids (merges migrate them),
            # so register resolved arguments, not the raw stored ids.
            copy._register_args(node_id, (self.resolve(a) for a in node.args))
        if kept is None:
            copy._forward = dict(self._forward)
            copy._table = dict(self._table)
        else:
            copy._table = {key: node_id for key, node_id in self._table.items()
                           if node_id in kept}
        copy._next_id = self._next_id
        return copy

    # -- queries ------------------------------------------------------------
    def reachable(self, roots: Iterable[int]) -> Set[int]:
        """Canonical ids reachable from the given roots."""
        seen: Set[int] = set()
        stack = [self.resolve(r) for r in roots]
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            for arg in self._nodes[node_id].args:
                resolved = self.resolve(arg)
                if resolved not in seen:
                    stack.append(resolved)
        return seen

    def live_nodes(self) -> List[VNode]:
        """All canonical nodes."""
        return [node for node_id, node in self._nodes.items() if node_id not in self._forward]

    def depends_on_mu(self, node_id: int, _cache: Optional[Dict[int, bool]] = None) -> bool:
        """Does the sub-graph rooted at ``node_id`` contain a μ-node?

        μ-free sub-graphs denote loop-invariant values; the η rules use
        this to drop η wrappers around invariant values.
        """
        root = self.resolve(node_id)
        seen: Set[int] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            node = self._nodes[current]
            if node.kind == "mu":
                return True
            for arg in node.args:
                resolved = self.resolve(arg)
                if resolved not in seen:
                    stack.append(resolved)
        return False

    # -- structural signatures ---------------------------------------------------
    def signatures(self, rounds: int = 4, roots: Optional[Iterable[int]] = None) -> Dict[int, int]:
        """Iterated structural hashes, stable under node-id renaming.

        Every node starts with a hash of its ``(kind, data, arity)`` and is
        refined ``rounds`` times by hashing in its arguments' signatures.
        Cycles are handled naturally (the refinement just stops improving).
        The result is used to order φ branches canonically and to pick
        candidate pairs for μ-cycle unification.
        """
        if roots is None:
            node_ids = [n.id for n in self.live_nodes()]
        else:
            node_ids = list(self.reachable(roots))
        signature: Dict[int, int] = {}
        for node_id in node_ids:
            node = self._nodes[node_id]
            signature[node_id] = hash((node.kind, node.data, len(node.args)))
        for _ in range(rounds):
            updated: Dict[int, int] = {}
            for node_id in node_ids:
                node = self._nodes[node_id]
                arg_signatures = tuple(
                    signature.get(self.resolve(a), 0) for a in node.args
                )
                updated[node_id] = hash((node.kind, node.data, arg_signatures))
            signature = updated
        return signature

    # -- debugging -----------------------------------------------------------------
    def format_node(self, node_id: int, max_depth: int = 6) -> str:
        """A bounded-depth textual rendering of a sub-graph (for messages/tests)."""
        seen: Set[int] = set()

        def render(current: int, depth: int) -> str:
            current = self.resolve(current)
            node = self._nodes[current]
            if depth <= 0 or current in seen:
                return f"#{current}"
            seen.add(current)
            label = node.kind if node.data is None else f"{node.kind}[{node.data}]"
            if not node.args:
                return label
            rendered_args = ", ".join(render(a, depth - 1) for a in node.args)
            return f"{label}({rendered_args})"

        return render(node_id, max_depth)


__all__ = ["ValueGraph", "MergeListener"]
