"""Shared value graphs: construction, normalization and sharing maximization."""

from .builder import FunctionSummary, GraphBuilder, build_function_graph, build_shared_graph
from .galias import GraphAliasResult, graph_alias, graph_must_alias, graph_no_alias
from .graph import ValueGraph
from .nodes import VNode
from .normalize import ENGINES, NormalizationStats, Normalizer
from .partition import merge_by_partition, refine_partition
from .rules import ALL_RULE_GROUPS, RULE_GROUPS, build_rule_index, rule, rules_for
from .sharing import merge_cycles, unify

__all__ = [
    "ValueGraph",
    "VNode",
    "GraphBuilder",
    "FunctionSummary",
    "build_function_graph",
    "build_shared_graph",
    "Normalizer",
    "NormalizationStats",
    "ENGINES",
    "RULE_GROUPS",
    "ALL_RULE_GROUPS",
    "rule",
    "rules_for",
    "build_rule_index",
    "merge_cycles",
    "unify",
    "refine_partition",
    "merge_by_partition",
    "graph_alias",
    "graph_no_alias",
    "graph_must_alias",
    "GraphAliasResult",
]
