"""Sharing maximization across cycles: μ-node unification.

Plain hash-consing (``ValueGraph.maximize_sharing``) merges equal acyclic
terms, but two structurally equivalent loops are distinct cycles in the
graph and will never hash to the same node.  The paper's solution (§5.4)
is a simple unification procedure: pick pairs of μ-nodes, walk their
sub-graphs in parallel, optimistically assuming the pair equal, and if the
walk finds no structural disagreement merge every pair of nodes visited.
This is a coinductive (bisimulation-style) equality check, which is the
right notion of equality for the recursive stream equations μ-nodes
denote.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .graph import ValueGraph
from .nodes import VNode


def unify(graph: ValueGraph, a: int, b: int,
          assumptions: Optional[Dict[Tuple[int, int], bool]] = None) -> Optional[Dict[int, int]]:
    """Try to prove two nodes equal up to cycle unrolling.

    Returns a substitution mapping node ids of ``b``'s side onto ``a``'s
    (for every pair visited), or ``None`` if the nodes differ.  The check
    assumes pairs already on the visit stack are equal, which is what
    makes equivalent cycles unify.
    """
    pending: Dict[Tuple[int, int], bool] = {} if assumptions is None else assumptions
    mapping: Dict[int, int] = {}

    def walk(x: int, y: int) -> bool:
        x, y = graph.resolve(x), graph.resolve(y)
        if x == y:
            return True
        key = (x, y)
        if key in pending:
            return True
        node_x, node_y = graph.node(x), graph.node(y)
        if node_x.kind != node_y.kind or node_x.data != node_y.data:
            return False
        if len(node_x.args) != len(node_y.args):
            return False
        pending[key] = True
        for arg_x, arg_y in zip(node_x.args, node_y.args):
            if not walk(arg_x, arg_y):
                return False
        mapping[y] = x
        return True

    if walk(a, b):
        return mapping
    return None


def merge_cycles(graph: ValueGraph, roots: Optional[List[int]] = None,
                 max_pairs: int = 4000,
                 candidates: Optional[Set[int]] = None) -> int:
    """Merge equivalent μ-cycles.  Returns the number of nodes redirected.

    The procedure repeatedly picks two distinct μ-nodes with the same
    coarse structural signature, attempts :func:`unify`, and on success
    redirects one cycle onto the other.  ``max_pairs`` bounds the number
    of attempted unifications per call so pathological graphs cannot make
    validation quadratic-explosive.

    ``candidates``, when given, restricts the *initial* pair selection to
    pairs containing at least one candidate node — the incremental
    engine passes its dirty set here, since a unification that failed
    before can only succeed once something inside one of the cycles has
    changed.  As soon as a round merges anything the restriction is
    lifted, because merges reshape the graph around every μ.
    """
    merged = 0
    for _ in range(8):
        if candidates is not None:
            # A pair is only attempted when one side is a candidate, so
            # without any candidate μ there is nothing to do — checked
            # before the (linear) reachability walk below.
            candidates = {graph.resolve(c) for c in candidates}
            if not any(graph.node(c).kind == "mu" for c in candidates):
                return merged
        if roots is not None:
            reachable = graph.reachable(roots)
            mus = [graph.node(n) for n in reachable if graph.node(n).kind == "mu"]
        else:
            mus = [node for node in graph.live_nodes() if node.kind == "mu"]
        if len(mus) < 2:
            return merged
        signatures = graph.signatures(rounds=3, roots=roots)
        by_signature: Dict[int, List[VNode]] = {}
        for node in mus:
            by_signature.setdefault(signatures.get(graph.resolve(node.id), 0), []).append(node)

        attempts = 0
        round_merged = 0
        for group in by_signature.values():
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    if attempts >= max_pairs:
                        break
                    a, b = graph.resolve(group[i].id), graph.resolve(group[j].id)
                    if a == b:
                        continue
                    if candidates is not None and a not in candidates and b not in candidates:
                        continue
                    attempts += 1
                    mapping = unify(graph, a, b)
                    if mapping is None:
                        continue
                    for source, target in mapping.items():
                        if graph.redirect(source, target):
                            round_merged += 1
        if round_merged == 0:
            return merged
        merged += round_merged
        candidates = None
        graph.maximize_sharing()
    return merged


__all__ = ["unify", "merge_cycles"]
