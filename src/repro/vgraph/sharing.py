"""Sharing maximization across cycles: μ-node unification.

Plain hash-consing (``ValueGraph.maximize_sharing``) merges equal acyclic
terms, but two structurally equivalent loops are distinct cycles in the
graph and will never hash to the same node.  The paper's solution (§5.4)
is a simple unification procedure: pick pairs of μ-nodes, walk their
sub-graphs in parallel, optimistically assuming the pair equal, and if the
walk finds no structural disagreement merge every pair of nodes visited.
This is a coinductive (bisimulation-style) equality check, which is the
right notion of equality for the recursive stream equations μ-nodes
denote.

The walk is iterative (an explicit DFS stack): value graphs are as deep
as the SSA def-use chains that produced them, and unification runs inside
the normalization fixpoint, which must not depend on the Python recursion
limit.  Graph *construction* is the only remaining recursive consumer of
the configured recursion headroom.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .graph import ValueGraph


def unify(graph: ValueGraph, a: int, b: int,
          assumptions: Optional[Dict[Tuple[int, int], bool]] = None) -> Optional[Dict[int, int]]:
    """Try to prove two nodes equal up to cycle unrolling.

    Returns a substitution mapping node ids of ``b``'s side onto ``a``'s
    (for every pair visited), or ``None`` if the nodes differ.  The check
    assumes pairs already on the visit stack are equal, which is what
    makes equivalent cycles unify.

    The traversal is an explicit-stack DFS that visits argument pairs in
    order and records each mapping entry after its children (the same
    postorder the recursive formulation produced), so merge order — and
    with it which canonical node survives — is unchanged.
    """
    pending: Dict[Tuple[int, int], bool] = {} if assumptions is None else assumptions
    mapping: Dict[int, int] = {}

    # Stack entries: (x, y, post).  A pre-visit entry (post=False) checks
    # the pair and schedules its children; the matching post-visit entry
    # (post=True, already resolved) records the mapping once every child
    # pair has been proved equal.
    stack: List[Tuple[int, int, bool]] = [(a, b, False)]
    while stack:
        x, y, post = stack.pop()
        if post:
            mapping[y] = x
            continue
        x, y = graph.resolve(x), graph.resolve(y)
        if x == y:
            continue
        key = (x, y)
        if key in pending:
            continue
        node_x, node_y = graph.node(x), graph.node(y)
        if node_x.kind != node_y.kind or node_x.data != node_y.data:
            return None
        if len(node_x.args) != len(node_y.args):
            return None
        pending[key] = True
        stack.append((x, y, True))
        for arg_x, arg_y in zip(reversed(node_x.args), reversed(node_y.args)):
            stack.append((arg_x, arg_y, False))
    return mapping


def merge_cycles(graph: ValueGraph, roots: Optional[List[int]] = None,
                 max_pairs: int = 4000,
                 candidates: Optional[Set[int]] = None) -> int:
    """Merge equivalent μ-cycles.  Returns the number of nodes redirected.

    The procedure repeatedly picks two distinct μ-nodes with the same
    coarse structural signature, attempts :func:`unify`, and on success
    redirects one cycle onto the other.  ``max_pairs`` bounds the number
    of attempted unifications per call so pathological graphs cannot make
    validation quadratic-explosive.

    ``candidates``, when given, restricts the *initial* pair selection to
    pairs containing at least one candidate node — the incremental
    engine passes its dirty set here, since a unification that failed
    before can only succeed once something inside one of the cycles has
    changed.  As soon as a round merges anything the restriction is
    lifted, because merges reshape the graph around every μ.

    Two hot spots the profile exposed are avoided: the μ population is
    collected from one reachability walk and carried across rounds
    (merging can only *shrink* it, so later rounds just re-resolve the
    survivors instead of re-walking the graph), and the structural
    signatures used for candidate grouping are seeded from the μ-nodes
    themselves — a node's signature depends only on its descendants, so
    the values agree exactly with a whole-graph computation while walking
    only the μ sub-graphs.
    """
    merged = 0
    mu_ids: Optional[List[int]] = None
    for _ in range(8):
        if candidates is not None:
            # A pair is only attempted when one side is a candidate, so
            # without any candidate μ there is nothing to do — checked
            # before the (linear) reachability walk below.
            candidates = {graph.resolve(c) for c in candidates}
            if not any(graph.node(c).kind == "mu" for c in candidates):
                return merged
        if mu_ids is None:
            if roots is not None:
                reachable = graph.reachable(roots)
                mu_ids = [n for n in reachable if graph.node(n).kind == "mu"]
            else:
                mu_ids = [node.id for node in graph.live_nodes() if node.kind == "mu"]
        else:
            # Rounds after the first: merging never creates μ-nodes, so
            # the surviving population is the previous one re-resolved.
            seen: Set[int] = set()
            survivors: List[int] = []
            for mu_id in mu_ids:
                resolved = graph.resolve(mu_id)
                if resolved in seen:
                    continue
                seen.add(resolved)
                if graph.node(resolved).kind == "mu":
                    survivors.append(resolved)
            mu_ids = survivors
        if len(mu_ids) < 2:
            return merged
        signatures = graph.signatures(rounds=3, roots=mu_ids)
        by_signature: Dict[int, List[int]] = {}
        for mu_id in mu_ids:
            resolved = graph.resolve(mu_id)
            by_signature.setdefault(signatures.get(resolved, 0), []).append(resolved)

        attempts = 0
        round_merged = 0
        for group in by_signature.values():
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    if attempts >= max_pairs:
                        break
                    a, b = graph.resolve(group[i]), graph.resolve(group[j])
                    if a == b:
                        continue
                    if candidates is not None and a not in candidates and b not in candidates:
                        continue
                    attempts += 1
                    mapping = unify(graph, a, b)
                    if mapping is None:
                        continue
                    for source, target in mapping.items():
                        if graph.redirect(source, target):
                            round_merged += 1
        if round_merged == 0:
            return merged
        merged += round_merged
        candidates = None
        graph.maximize_sharing()
    return merged


__all__ = ["unify", "merge_cycles"]
