"""Alias queries over value-graph pointer nodes.

The validator's load/store rewrite rules need the same "simple
non-aliasing rules" (§4) the optimizer's alias analysis uses, but phrased
over graph nodes instead of IR values:

* two distinct ``alloca`` nodes never alias;
* an ``alloca`` never aliases a ``global`` or a ``param`` pointer (fresh
  stack memory cannot have escaped into either);
* two distinct ``global`` nodes never alias;
* two ``gep`` nodes with the same base and different constant offsets
  never alias; with identical arguments they are the same node anyway;
* a node must-aliases itself.

Everything else is *may alias*, and the memory rules then refuse to fire.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from .graph import ValueGraph


class GraphAliasResult(enum.Enum):
    """Outcome of a graph-level alias query."""

    NO_ALIAS = "no"
    MAY_ALIAS = "may"
    MUST_ALIAS = "must"


_IDENTIFIED_KINDS = ("alloca", "global")
_POINTER_SOURCE_KINDS = ("alloca", "global", "param")


def _strip_gep(graph: ValueGraph, node_id: int) -> Tuple[int, Optional[int]]:
    """Peel constant-offset GEPs; returns (base id, total offset or None)."""
    offset: Optional[int] = 0
    current = graph.resolve(node_id)
    while True:
        node = graph.node(current)
        if node.kind != "gep" or len(node.args) < 1:
            return current, offset
        indices = node.args[1:]
        if offset is not None and len(indices) == 1:
            index_node = graph.node(indices[0])
            if index_node.kind == "const":
                offset += index_node.data[0]
            else:
                offset = None
        else:
            offset = None
        current = graph.resolve(node.args[0])


def graph_alias(graph: ValueGraph, a: int, b: int) -> GraphAliasResult:
    """Classify the aliasing relationship of two pointer-valued nodes."""
    a, b = graph.resolve(a), graph.resolve(b)
    if a == b:
        return GraphAliasResult.MUST_ALIAS

    base_a, offset_a = _strip_gep(graph, a)
    base_b, offset_b = _strip_gep(graph, b)
    node_a, node_b = graph.node(base_a), graph.node(base_b)

    if base_a == base_b:
        if offset_a is not None and offset_b is not None:
            return (
                GraphAliasResult.MUST_ALIAS
                if offset_a == offset_b
                else GraphAliasResult.NO_ALIAS
            )
        return GraphAliasResult.MAY_ALIAS

    if node_a.kind in _IDENTIFIED_KINDS and node_b.kind in _IDENTIFIED_KINDS:
        return GraphAliasResult.NO_ALIAS
    if node_a.kind == "alloca" and node_b.kind in _POINTER_SOURCE_KINDS:
        return GraphAliasResult.NO_ALIAS
    if node_b.kind == "alloca" and node_a.kind in _POINTER_SOURCE_KINDS:
        return GraphAliasResult.NO_ALIAS
    return GraphAliasResult.MAY_ALIAS


def graph_no_alias(graph: ValueGraph, a: int, b: int) -> bool:
    """Shorthand: definitely disjoint addresses."""
    return graph_alias(graph, a, b) is GraphAliasResult.NO_ALIAS


def graph_must_alias(graph: ValueGraph, a: int, b: int) -> bool:
    """Shorthand: definitely the same address."""
    return graph_alias(graph, a, b) is GraphAliasResult.MUST_ALIAS


__all__ = ["GraphAliasResult", "graph_alias", "graph_no_alias", "graph_must_alias"]
