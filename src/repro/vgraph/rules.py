"""Normalization rewrite rules.

The rules mirror the transformations the LLVM optimizer applies, so that
normalizing both value graphs drives them towards the same normal form
(§4 of the paper).  They are organised into named *groups* matching the
rule sets of the paper's ablation experiments (Figures 6–8):

``boolean``
    General simplification rules (1)–(4): comparisons of a value with
    itself and with boolean literals.
``phi``
    φ-node rules (5)–(6): drop statically-false branches, select the
    branch whose condition is true, collapse φ-nodes whose branches all
    carry the same value.
``constfold``
    Optimization-specific constant folding plus LLVM's canonicalizations
    (``a+a → a<<1``, ``mul a, 2^k → shl a, k``, ``add x, -k → sub x, k``,
    constants to the right, ``icmp`` constant-swap) and the usual
    algebraic identities.
``loadstore``
    Memory rules (10)–(11): loads jump over non-aliasing stores and read
    through must-aliasing ones; overwritten stores disappear.
``eta``
    Loop rules (7)–(9): loops that never execute, loop-invariant μ-nodes,
    plus dropping η around values that do not depend on any μ.
``commuting``
    Rules that rearrange the graph to enable the others: distributing η
    over pure operators ("push η-nodes down towards their μ-nodes") and
    commuting independent stores into a canonical order.

Every rule is a function ``rule(graph, node) -> Optional[int]`` returning
the id of a replacement node, or ``None`` when it does not apply.  Rules
are registered with the :func:`rule` decorator, which declares the node
*kinds* a rule can possibly fire on and the *group* it belongs to; the
engine dispatches through the kind index built by
:func:`build_rule_index` instead of walking a flat rule list, so a node
is only ever handed to the rules that could match its root kind.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..transforms.constfold import (
    fold_cast,
    fold_icmp,
    fold_int_binary,
    is_power_of_two,
    log2_exact,
)
from .galias import graph_must_alias, graph_no_alias
from .graph import ValueGraph
from .nodes import VNode

Rule = Callable[[ValueGraph, VNode], Optional[int]]

#: Every decorated rule, in registration (definition) order.  Within one
#: group this order is the order the engine tries rules on a node.
RULE_REGISTRY: List[Rule] = []


def rule(*, kinds: Sequence[str], group: str) -> Callable[[Rule], Rule]:
    """Register a rewrite rule for the given root node kinds.

    ``kinds`` is the complete set of node kinds the rule can fire on (its
    first ``node.kind != ...`` guard); ``group`` is the ablation group the
    rule belongs to.  The decorator records both on the function
    (``fn.kinds`` / ``fn.group``) and appends it to :data:`RULE_REGISTRY`,
    from which :data:`RULE_GROUPS` and the kind-dispatch index are built.
    """

    def decorate(fn: Rule) -> Rule:
        fn.kinds = tuple(kinds)  # type: ignore[attr-defined]
        fn.group = group  # type: ignore[attr-defined]
        RULE_REGISTRY.append(fn)
        return fn

    return decorate

_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "xor"})
_SWAPPED_PREDICATE = {
    "eq": "eq", "ne": "ne",
    "slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
    "ult": "ugt", "ule": "uge", "ugt": "ult", "uge": "ule",
}
_REFLEXIVE_TRUE = frozenset({"eq", "sle", "sge", "ule", "uge"})


def _int_bits(type_str: str) -> Optional[int]:
    if type_str.startswith("i") and type_str[1:].isdigit():
        return int(type_str[1:])
    return None


def _const_of(graph: ValueGraph, node_id: int) -> Optional[Tuple[int, str]]:
    node = graph.node(node_id)
    if node.kind == "const" and isinstance(node.data[0], int):
        return node.data
    return None


# ---------------------------------------------------------------------------
# boolean group — general simplification rules (1)–(4)
# ---------------------------------------------------------------------------

@rule(kinds=("icmp",), group="boolean")
def rule_cmp_identical(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``a == a ↓ true`` and ``a != a ↓ false`` (and the other reflexive predicates)."""
    if node.kind != "icmp":
        return None
    lhs, rhs = graph.resolve(node.args[0]), graph.resolve(node.args[1])
    if lhs != rhs:
        return None
    return graph.true() if node.data in _REFLEXIVE_TRUE else graph.false()


@rule(kinds=("icmp",), group="boolean")
def rule_cmp_with_bool_literal(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``a == true ↓ a``, ``a != false ↓ a``, ``a == false ↓ !a``, ``a != true ↓ !a``."""
    if node.kind != "icmp" or node.data not in ("eq", "ne"):
        return None
    lhs, rhs = graph.node(node.args[0]), graph.node(node.args[1])
    memo: Dict[int, bool] = {}
    for value_id, literal in ((node.args[0], rhs), (node.args[1], lhs)):
        if literal.kind == "const" and literal.data[1] == "i1":
            other = graph.node(value_id)
            # Only sound when the compared value itself is an i1.
            if not _is_boolean_node(graph, value_id, memo):
                continue
            is_true_literal = literal.data[0] == 1
            keep = (node.data == "eq") == is_true_literal
            return graph.resolve(value_id) if keep else graph.not_(value_id)
    return None


def _is_boolean_node(graph: ValueGraph, node_id: int,
                     memo: Optional[Dict[int, bool]] = None) -> bool:
    # The memo lives for one top-level query only: gate formulas are deep,
    # heavily shared DAGs, and without it the walk revisits shared
    # sub-terms exponentially often.  Only μ-nodes can be cyclic and they
    # are classified as non-boolean without descending, so memoizing on
    # the canonical id is exact.  The walk uses an explicit stack: rules
    # run during *normalization*, which gets no recursion-limit headroom
    # (only graph construction does), and and/or/xor operand chains can
    # be as deep as the gate formulas they encode.
    if memo is None:
        memo = {}
    root = graph.resolve(node_id)
    stack = [root]
    while stack:
        current = stack.pop()
        if current in memo:
            continue
        node = graph.node(current)
        if node.kind in ("icmp", "not"):
            memo[current] = True
        elif node.kind == "const":
            memo[current] = node.data[1] == "i1"
        elif node.kind == "binop" and node.data in ("and", "or", "xor"):
            operands = [graph.resolve(arg) for arg in node.args]
            pending = [op for op in operands if op not in memo]
            if pending:
                # Classify the operands first, then revisit this node.
                stack.append(current)
                stack.extend(pending)
            else:
                memo[current] = all(memo[op] for op in operands)
        else:
            memo[current] = False
    return memo[root]


@rule(kinds=("not",), group="boolean")
def rule_not_not(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``!!a ↓ a`` and negation of boolean literals."""
    if node.kind != "not":
        return None
    inner = graph.node(node.args[0])
    if inner.kind == "not":
        return graph.resolve(inner.args[0])
    if inner.is_true():
        return graph.false()
    if inner.is_false():
        return graph.true()
    if inner.kind == "icmp":
        negated = {
            "eq": "ne", "ne": "eq", "slt": "sge", "sle": "sgt", "sgt": "sle",
            "sge": "slt", "ult": "uge", "ule": "ugt", "ugt": "ule", "uge": "ult",
        }[inner.data]
        return graph.make("icmp", negated, list(inner.args))
    return None


@rule(kinds=("binop",), group="boolean")
def rule_bool_connectives(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``and``/``or`` with literal or duplicate operands."""
    if node.kind != "binop" or node.data not in ("and", "or"):
        return None
    memo: Dict[int, bool] = {}
    if not all(_is_boolean_node(graph, a, memo) for a in node.args):
        return None
    lhs, rhs = graph.resolve(node.args[0]), graph.resolve(node.args[1])
    lhs_node, rhs_node = graph.node(lhs), graph.node(rhs)
    if node.data == "and":
        if lhs_node.is_true():
            return rhs
        if rhs_node.is_true():
            return lhs
        if lhs_node.is_false() or rhs_node.is_false():
            return graph.false()
    else:
        if lhs_node.is_false():
            return rhs
        if rhs_node.is_false():
            return lhs
        if lhs_node.is_true() or rhs_node.is_true():
            return graph.true()
    if lhs == rhs:
        return lhs
    return None


# ---------------------------------------------------------------------------
# phi group — rules (5)–(6)
# ---------------------------------------------------------------------------

@rule(kinds=("phi",), group="phi")
def rule_phi_simplify(graph: ValueGraph, node: VNode) -> Optional[int]:
    """Drop false branches, pick true branches, collapse single-valued φ."""
    if node.kind != "phi":
        return None
    branches = node.phi_branches()
    if not branches:
        return None

    # Rule (5): a branch whose condition is literally true wins.
    for condition, value in branches:
        if graph.node(condition).is_true():
            return graph.resolve(value)

    # Drop branches whose condition is literally false, and duplicates.
    kept: List[Tuple[int, int]] = []
    seen = set()
    changed = False
    for condition, value in branches:
        condition, value = graph.resolve(condition), graph.resolve(value)
        if graph.node(condition).is_false():
            changed = True
            continue
        if (condition, value) in seen:
            changed = True
            continue
        seen.add((condition, value))
        kept.append((condition, value))

    if not kept:
        return None

    # Rule (6): all branches carry the same value.
    first_value = kept[0][1]
    if all(value == first_value for _, value in kept):
        return first_value

    if changed:
        return graph.phi(kept)
    return None


@rule(kinds=("phi",), group="phi")
def rule_phi_merge_same_value(graph: ValueGraph, node: VNode) -> Optional[int]:
    """Merge branches that carry the same value by or-ing their conditions."""
    if node.kind != "phi":
        return None
    branches = node.phi_branches()
    by_value: Dict[int, List[int]] = {}
    order: List[int] = []
    for condition, value in branches:
        condition, value = graph.resolve(condition), graph.resolve(value)
        if value not in by_value:
            by_value[value] = []
            order.append(value)
        by_value[value].append(condition)
    if all(len(conditions) == 1 for conditions in by_value.values()):
        return None
    merged: List[Tuple[int, int]] = []
    for value in order:
        conditions = by_value[value]
        combined = conditions[0]
        for condition in conditions[1:]:
            combined = graph.or_(combined, condition)
        merged.append((combined, value))
    return graph.phi(merged)


# ---------------------------------------------------------------------------
# constfold group — optimization-specific rules
# ---------------------------------------------------------------------------

@rule(kinds=("binop",), group="constfold")
def rule_fold_binop(graph: ValueGraph, node: VNode) -> Optional[int]:
    """Fold binary operations over two integer constants."""
    if node.kind != "binop":
        return None
    lhs = _const_of(graph, node.args[0])
    rhs = _const_of(graph, node.args[1])
    if lhs is None or rhs is None:
        return None
    bits = _int_bits(lhs[1])
    if bits is None:
        return None
    folded = fold_int_binary(node.data, lhs[0], rhs[0], bits)
    if folded is None:
        return None
    return graph.const(folded, lhs[1])


@rule(kinds=("icmp",), group="constfold")
def rule_fold_icmp(graph: ValueGraph, node: VNode) -> Optional[int]:
    """Fold comparisons over two integer constants."""
    if node.kind != "icmp":
        return None
    lhs = _const_of(graph, node.args[0])
    rhs = _const_of(graph, node.args[1])
    if lhs is None or rhs is None:
        return None
    bits = _int_bits(lhs[1]) or 64
    folded = fold_icmp(node.data, lhs[0], rhs[0], bits)
    if folded is None:
        return None
    return graph.true() if folded else graph.false()


@rule(kinds=("cast",), group="constfold")
def rule_fold_cast(graph: ValueGraph, node: VNode) -> Optional[int]:
    """Fold casts of integer constants."""
    if node.kind != "cast":
        return None
    value = _const_of(graph, node.args[0])
    if value is None:
        return None
    opcode, to_type = node.data
    from_bits = _int_bits(value[1])
    to_bits = _int_bits(to_type)
    if from_bits is None or to_bits is None:
        return None
    folded = fold_cast(opcode, value[0], from_bits, to_bits)
    if folded is None:
        return None
    return graph.const(folded, to_type)


@rule(kinds=("binop",), group="constfold")
def rule_algebraic_identity(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``x+0``, ``x*1``, ``x*0``, ``x-x``, ``x^x``, ``x&x``, ``x|x``, shifts by 0."""
    if node.kind != "binop":
        return None
    opcode = node.data
    lhs, rhs = graph.resolve(node.args[0]), graph.resolve(node.args[1])
    lhs_const, rhs_const = _const_of(graph, lhs), _const_of(graph, rhs)

    def zero_like(type_hint: Optional[str]) -> int:
        return graph.const(0, type_hint or "i32")

    if rhs_const is not None:
        value, type_str = rhs_const
        if value == 0 and opcode in ("add", "sub", "or", "xor", "shl", "lshr", "ashr"):
            return lhs
        if value == 0 and opcode in ("mul", "and"):
            return zero_like(type_str)
        if value == 1 and opcode in ("mul", "sdiv", "udiv"):
            return lhs
    if lhs_const is not None:
        value, type_str = lhs_const
        if value == 0 and opcode == "add":
            return rhs
        if value == 0 and opcode in ("mul", "and", "sdiv", "udiv", "shl", "lshr", "ashr"):
            return zero_like(type_str)
        if value == 1 and opcode == "mul":
            return rhs
    if lhs == rhs:
        if opcode in ("sub", "xor"):
            rhs_node = graph.node(rhs)
            type_str = None
            if rhs_node.kind == "const":
                type_str = rhs_node.data[1]
            return zero_like(type_str)
        if opcode in ("and", "or"):
            return lhs
    return None


@rule(kinds=("binop",), group="constfold")
def rule_canonical_shape(graph: ValueGraph, node: VNode) -> Optional[int]:
    """LLVM's preferred shapes: ``a+a → a<<1``, ``mul a,2^k → shl a,k``, ``add x,-k → sub x,k``."""
    if node.kind != "binop":
        return None
    opcode = node.data
    lhs, rhs = graph.resolve(node.args[0]), graph.resolve(node.args[1])
    rhs_const = _const_of(graph, rhs)
    lhs_const = _const_of(graph, lhs)

    # Constants to the right for commutative operators.
    if opcode in _COMMUTATIVE and lhs_const is not None and rhs_const is None:
        return graph.make("binop", opcode, [rhs, lhs])

    if opcode == "add" and lhs == rhs:
        one = graph.const(1, _infer_type(graph, lhs))
        return graph.make("binop", "shl", [lhs, one])
    if opcode == "mul" and rhs_const is not None and is_power_of_two(rhs_const[0]):
        shift = graph.const(log2_exact(rhs_const[0]), rhs_const[1])
        return graph.make("binop", "shl", [lhs, shift])
    if opcode == "add" and rhs_const is not None and rhs_const[0] < 0:
        positive = graph.const(-rhs_const[0], rhs_const[1])
        return graph.make("binop", "sub", [lhs, positive])
    if opcode == "sub" and rhs_const is not None and rhs_const[0] < 0:
        positive = graph.const(-rhs_const[0], rhs_const[1])
        return graph.make("binop", "add", [lhs, positive])
    return None


@rule(kinds=("icmp",), group="constfold")
def rule_icmp_constant_right(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``gt 10 a ↓ lt a 10`` — move the constant to the right of comparisons."""
    if node.kind != "icmp":
        return None
    lhs, rhs = graph.resolve(node.args[0]), graph.resolve(node.args[1])
    if _const_of(graph, lhs) is not None and _const_of(graph, rhs) is None:
        return graph.make("icmp", _SWAPPED_PREDICATE[node.data], [rhs, lhs])
    return None


def _infer_type(graph: ValueGraph, node_id: int) -> str:
    """Best-effort integer type of a node (for manufactured constants)."""
    seen = set()
    stack = [node_id]
    while stack:
        current = graph.resolve(stack.pop())
        if current in seen:
            continue
        seen.add(current)
        node = graph.node(current)
        if node.kind == "const":
            return node.data[1]
        if node.kind == "cast":
            return node.data[1]
        stack.extend(node.args)
    return "i32"


# ---------------------------------------------------------------------------
# loadstore group — memory rules (10)–(11)
# ---------------------------------------------------------------------------

@rule(kinds=("load",), group="loadstore")
def rule_load_over_store(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``load(p, store(x,q,m)) ↓ load(p,m)`` (no alias) and ``↓ x`` (must alias)."""
    if node.kind != "load":
        return None
    pointer, memory = graph.resolve(node.args[0]), graph.resolve(node.args[1])
    memory_node = graph.node(memory)
    if memory_node.kind != "store":
        return None
    stored_value, stored_pointer, earlier_memory = (
        graph.resolve(memory_node.args[0]),
        graph.resolve(memory_node.args[1]),
        graph.resolve(memory_node.args[2]),
    )
    if graph_must_alias(graph, pointer, stored_pointer):
        return stored_value
    if graph_no_alias(graph, pointer, stored_pointer):
        return graph.make("load", None, [pointer, earlier_memory])
    return None


@rule(kinds=("store",), group="loadstore")
def rule_store_overwrite(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``store(x, p, store(y, p, m)) ↓ store(x, p, m)`` — the earlier store dies."""
    if node.kind != "store":
        return None
    value, pointer, memory = (
        graph.resolve(node.args[0]),
        graph.resolve(node.args[1]),
        graph.resolve(node.args[2]),
    )
    memory_node = graph.node(memory)
    if memory_node.kind != "store":
        return None
    earlier_pointer = graph.resolve(memory_node.args[1])
    earlier_memory = graph.resolve(memory_node.args[2])
    if graph_must_alias(graph, pointer, earlier_pointer):
        return graph.make("store", None, [value, pointer, earlier_memory])
    return None


def _memory_cycle_clobbers(graph: ValueGraph, mu_id: int, pointer: int,
                           max_nodes: int = 400) -> bool:
    """Could any write on the μ-cycle of a memory μ-node alias ``pointer``?

    Walks the iteration argument of the μ through memory-shaped nodes
    (stores, φ/η over memory) back to the μ itself.  Returns ``True`` —
    "assume clobbered" — for anything it cannot account for (calls,
    foreign μ-nodes, excessive size).
    """
    mu_id = graph.resolve(mu_id)
    mu = graph.node(mu_id)
    if mu.kind != "mu" or len(mu.args) != 2:
        return True
    seen = set()
    stack = [graph.resolve(mu.args[1])]
    visited = 0
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        visited += 1
        if visited > max_nodes:
            return True
        node = graph.node(current)
        if current == mu_id or node.kind == "mem0":
            continue
        if node.kind == "store":
            if not graph_no_alias(graph, pointer, graph.resolve(node.args[1])):
                return True
            stack.append(graph.resolve(node.args[2]))
        elif node.kind == "phi":
            for _, value in node.phi_branches():
                stack.append(graph.resolve(value))
        elif node.kind == "eta":
            stack.append(graph.resolve(node.args[1]))
        elif node.kind == "mu":
            # A different loop's memory μ: recurse into both of its arguments.
            stack.append(graph.resolve(node.args[0]))
            stack.append(graph.resolve(node.args[1]))
        else:
            # callmem, reach, or anything unexpected: assume it clobbers.
            return True
    return False


@rule(kinds=("load",), group="loadstore")
def rule_load_over_mu(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``load(p, μ(m, it)) ↓ load(p, m)`` when no write in the loop may alias ``p``.

    This is the graph-level counterpart of LICM hoisting a load out of a
    loop that never clobbers it (the optimizer justifies the motion with
    the same alias facts).
    """
    if node.kind != "load":
        return None
    pointer = graph.resolve(node.args[0])
    memory = graph.resolve(node.args[1])
    memory_node = graph.node(memory)
    if memory_node.kind != "mu" or len(memory_node.args) != 2:
        return None
    if _memory_cycle_clobbers(graph, memory, pointer):
        return None
    return graph.make("load", None, [pointer, graph.resolve(memory_node.args[0])])


@rule(kinds=("load",), group="loadstore")
def rule_load_over_eta(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``load(p, η(c, m)) ↓ η(c, load(p, m))`` — read the exit-iteration memory.

    Combined with :func:`rule_load_over_mu` and the η-invariance rules this
    lets loads placed after a loop match loads hoisted before it.
    """
    if node.kind != "load":
        return None
    pointer = graph.resolve(node.args[0])
    memory = graph.resolve(node.args[1])
    memory_node = graph.node(memory)
    if memory_node.kind != "eta":
        return None
    inner = graph.make("load", None, [pointer, graph.resolve(memory_node.args[1])])
    return graph.make("eta", None, [graph.resolve(memory_node.args[0]), inner])


@rule(kinds=("store",), group="loadstore")
def rule_store_same_value(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``store(load(p, m), p, m) ↓ m`` — storing back what is already there."""
    if node.kind != "store":
        return None
    value, pointer, memory = (
        graph.resolve(node.args[0]),
        graph.resolve(node.args[1]),
        graph.resolve(node.args[2]),
    )
    value_node = graph.node(value)
    if value_node.kind != "load":
        return None
    if graph.resolve(value_node.args[0]) == pointer and graph.resolve(value_node.args[1]) == memory:
        return memory
    return None


# ---------------------------------------------------------------------------
# eta group — loop rules (7)–(9)
# ---------------------------------------------------------------------------

@rule(kinds=("eta",), group="eta")
def rule_eta_never_executes(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``η(false, μ(x, y)) ↓ x`` — the loop never runs (rule 7)."""
    if node.kind != "eta":
        return None
    condition = graph.node(node.args[0])
    value = graph.node(node.args[1])
    if condition.is_false() and value.kind == "mu" and value.args:
        return graph.resolve(value.args[0])
    return None


@rule(kinds=("eta",), group="eta")
def rule_eta_invariant_mu(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``η(c, μ(x, x)) ↓ x`` and ``η(c, y ↦ μ(x, y)) ↓ x`` (rules 8 and 9)."""
    if node.kind != "eta":
        return None
    value_id = graph.resolve(node.args[1])
    value = graph.node(value_id)
    if value.kind != "mu" or len(value.args) != 2:
        return None
    initial, iteration = graph.resolve(value.args[0]), graph.resolve(value.args[1])
    if iteration == initial or iteration == value_id:
        return initial
    return None


@rule(kinds=("mu",), group="eta")
def rule_mu_invariant(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``μ(x, x) ↓ x`` and ``μ(x, self) ↓ x`` — a loop variable that never varies."""
    if node.kind != "mu" or len(node.args) != 2:
        return None
    initial, iteration = graph.resolve(node.args[0]), graph.resolve(node.args[1])
    if iteration == initial or iteration == graph.resolve(node.id):
        return initial
    return None


@rule(kinds=("eta",), group="eta")
def rule_eta_invariant_value(graph: ValueGraph, node: VNode) -> Optional[int]:
    """``η(c, v) ↓ v`` when ``v`` does not depend on any μ (loop-invariant)."""
    if node.kind != "eta":
        return None
    value = graph.resolve(node.args[1])
    if graph.depends_on_mu(value):
        return None
    return value


# ---------------------------------------------------------------------------
# commuting group
# ---------------------------------------------------------------------------

_ETA_DISTRIBUTE_KINDS = frozenset({"binop", "icmp", "cast", "gep", "not"})


@rule(kinds=("eta",), group="commuting")
def rule_eta_distribute(graph: ValueGraph, node: VNode) -> Optional[int]:
    """Push η through pure operators: ``η(c, f(a, b)) ↓ f(η(c,a), η(c,b))``.

    This moves η-nodes down towards the μ-nodes they select from, which is
    what lets them meet rules (7)–(9).  To avoid exploding the graph the
    rule only fires when at least one operand actually depends on a μ.
    """
    if node.kind != "eta":
        return None
    condition = graph.resolve(node.args[0])
    value_id = graph.resolve(node.args[1])
    value = graph.node(value_id)
    if value.kind not in _ETA_DISTRIBUTE_KINDS:
        return None
    if not graph.depends_on_mu(value_id):
        return None
    new_args = [
        graph.make("eta", None, [condition, graph.resolve(arg)]) for arg in value.args
    ]
    return graph.make(value.kind, value.data, new_args)


@rule(kinds=("store",), group="commuting")
def rule_store_commute(graph: ValueGraph, node: VNode) -> Optional[int]:
    """Order independent adjacent stores canonically.

    ``store(x, p, store(y, q, m))`` with ``p``/``q`` provably disjoint can
    be written in either order; pick the one whose pointer has the smaller
    structural rendering so both functions agree.
    """
    if node.kind != "store":
        return None
    value, pointer, memory = (
        graph.resolve(node.args[0]),
        graph.resolve(node.args[1]),
        graph.resolve(node.args[2]),
    )
    memory_node = graph.node(memory)
    if memory_node.kind != "store":
        return None
    inner_value = graph.resolve(memory_node.args[0])
    inner_pointer = graph.resolve(memory_node.args[1])
    inner_memory = graph.resolve(memory_node.args[2])
    if not graph_no_alias(graph, pointer, inner_pointer):
        return None
    outer_key = graph.format_node(pointer, max_depth=4)
    inner_key = graph.format_node(inner_pointer, max_depth=4)
    if outer_key >= inner_key:
        return None
    swapped_inner = graph.make("store", None, [value, pointer, inner_memory])
    return graph.make("store", None, [inner_value, inner_pointer, swapped_inner])


# ---------------------------------------------------------------------------
# groups
# ---------------------------------------------------------------------------

def _groups_from_registry() -> Dict[str, List[Rule]]:
    groups: Dict[str, List[Rule]] = {}
    for registered in RULE_REGISTRY:
        groups.setdefault(registered.group, []).append(registered)
    return groups


#: Rule groups in the order used by the paper's ablations, derived from
#: the :func:`rule` decorator registry (definition order within a group).
RULE_GROUPS: Dict[str, List[Rule]] = _groups_from_registry()

#: Every group name, in presentation order.
ALL_RULE_GROUPS: Tuple[str, ...] = tuple(RULE_GROUPS)


def rules_for(groups) -> List[Rule]:
    """The concatenated rule list for an iterable of group names."""
    selected: List[Rule] = []
    for group in groups:
        if group not in RULE_GROUPS:
            raise KeyError(f"unknown rule group {group!r} (known: {sorted(RULE_GROUPS)})")
        selected.extend(RULE_GROUPS[group])
    return selected


def build_rule_index(groups) -> Dict[str, Tuple[Rule, ...]]:
    """A kind → rules dispatch index for an iterable of group names.

    The index maps each node kind to the rules (from the enabled groups)
    whose declared ``kinds`` include it, preserving the order
    :func:`rules_for` would try them in — so dispatching through the index
    applies exactly the same rule, just without invoking every rule whose
    kind guard would reject the node.
    """
    index: Dict[str, List[Rule]] = {}
    for selected in rules_for(groups):
        for kind in selected.kinds:
            index.setdefault(kind, []).append(selected)
    return {kind: tuple(rules) for kind, rules in index.items()}


__all__ = ["Rule", "RULE_GROUPS", "ALL_RULE_GROUPS", "RULE_REGISTRY",
           "rule", "rules_for", "build_rule_index"]
