"""The LLVM-MD translation validator: per-function validation and the driver."""

from .cache import (
    CACHE_BACKENDS,
    CACHE_FILE_NAME,
    CACHE_SCHEMA,
    SQLITE_FILE_NAME,
    SQLITE_SCHEMA,
    CacheKey,
    JsonStore,
    SqliteStore,
    migrate_json_to_sqlite,
)
from .config import (
    DEFAULT_CONFIG,
    EXECUTORS,
    GVN_ABLATION_STEPS,
    LICM_ABLATION_STEPS,
    SCCP_ABLATION_STEPS,
    ValidatorConfig,
)
from .driver import (
    STRATEGIES,
    ValidationCache,
    function_fingerprint,
    llvm_md,
    validate_function_pipeline,
    validate_module_batch,
)
from .scheduler import (
    BUDGET_EXHAUSTED,
    Executor,
    PipelineDiff,
    PoolExecutor,
    RequestBudget,
    SerialExecutor,
    StealExecutor,
    WaveExecutor,
    WorkPlan,
    build_plan,
    create_executor,
    diff_plan,
    is_budget_result,
    resolved_executor,
    settle_plan,
)
from .report import FunctionRecord, ValidationReport
from .validate import (
    ChainOutcome,
    ValidationResult,
    validate,
    validate_chain,
    validate_chain_delta,
    validate_or_raise,
)
# The watch-mode driver is exported lazily (PEP 562): importing it here
# eagerly would make ``python -m repro.validator.watch`` re-execute the
# module runpy already found in sys.modules.
_WATCH_EXPORTS = ("Revalidator", "shared_revalidator",
                  "reset_shared_revalidators", "watch_source")


def __getattr__(name):
    if name in _WATCH_EXPORTS:
        from . import watch
        return getattr(watch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "validate",
    "validate_chain",
    "validate_or_raise",
    "ValidationResult",
    "ChainOutcome",
    "ValidatorConfig",
    "DEFAULT_CONFIG",
    "GVN_ABLATION_STEPS",
    "SCCP_ABLATION_STEPS",
    "LICM_ABLATION_STEPS",
    "STRATEGIES",
    "EXECUTORS",
    "CACHE_BACKENDS",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "WaveExecutor",
    "StealExecutor",
    "WorkPlan",
    "PipelineDiff",
    "build_plan",
    "diff_plan",
    "create_executor",
    "resolved_executor",
    "settle_plan",
    "BUDGET_EXHAUSTED",
    "RequestBudget",
    "is_budget_result",
    "Revalidator",
    "shared_revalidator",
    "reset_shared_revalidators",
    "watch_source",
    "validate_chain_delta",
    "llvm_md",
    "validate_function_pipeline",
    "validate_module_batch",
    "ValidationCache",
    "CacheKey",
    "CACHE_SCHEMA",
    "CACHE_FILE_NAME",
    "SQLITE_SCHEMA",
    "SQLITE_FILE_NAME",
    "JsonStore",
    "SqliteStore",
    "migrate_json_to_sqlite",
    "function_fingerprint",
    "FunctionRecord",
    "ValidationReport",
]
