"""The LLVM-MD translation validator: per-function validation and the driver."""

from .cache import CACHE_FILE_NAME, CACHE_SCHEMA, CacheKey
from .config import (
    DEFAULT_CONFIG,
    EXECUTORS,
    GVN_ABLATION_STEPS,
    LICM_ABLATION_STEPS,
    SCCP_ABLATION_STEPS,
    ValidatorConfig,
)
from .driver import (
    STRATEGIES,
    ValidationCache,
    function_fingerprint,
    llvm_md,
    validate_function_pipeline,
    validate_module_batch,
)
from .scheduler import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    WaveExecutor,
    WorkPlan,
    build_plan,
    create_executor,
    resolved_executor,
    settle_plan,
)
from .report import FunctionRecord, ValidationReport
from .validate import (
    ChainOutcome,
    ValidationResult,
    validate,
    validate_chain,
    validate_or_raise,
)

__all__ = [
    "validate",
    "validate_chain",
    "validate_or_raise",
    "ValidationResult",
    "ChainOutcome",
    "ValidatorConfig",
    "DEFAULT_CONFIG",
    "GVN_ABLATION_STEPS",
    "SCCP_ABLATION_STEPS",
    "LICM_ABLATION_STEPS",
    "STRATEGIES",
    "EXECUTORS",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "WaveExecutor",
    "WorkPlan",
    "build_plan",
    "create_executor",
    "resolved_executor",
    "settle_plan",
    "llvm_md",
    "validate_function_pipeline",
    "validate_module_batch",
    "ValidationCache",
    "CacheKey",
    "CACHE_SCHEMA",
    "CACHE_FILE_NAME",
    "function_fingerprint",
    "FunctionRecord",
    "ValidationReport",
]
