"""Incremental revalidation: the watch-mode driver.

The dominant real workload for a translation validator is not a cold
corpus sweep but a *re*-validation after a small change — a pipeline
suffix tweak, a source edit — where almost everything is unchanged.  The
:class:`Revalidator` here is the long-lived driver for that workload: it
holds one :class:`~repro.validator.scheduler.executors.Executor`, one
:class:`~repro.validator.cache.ValidationCache`, one
:class:`~repro.analysis.manager.AnalysisManager` and, per function, the
last run's checkpoint fingerprints, adjacent-pair cache keys and the
*pristine* (constructed, never normalized) chain-shared value graph.  A
:meth:`Revalidator.revalidate` call then costs only what changed:

* **dirty-suffix planning** — the new checkpoint chain is fingerprinted
  through the shared
  :data:`~repro.analysis.manager.CHECKPOINT_FINGERPRINTS` table and
  diffed against the previous run
  (:func:`~repro.validator.scheduler.plan.diff_plan`); pairs with both
  endpoints unchanged adopt the previous plan's cache keys verbatim and
  settle straight from the cache (counted as
  ``pairs_skipped_unchanged``), never re-keyed, never re-validated;
* **subgraph-diff reuse** — only the dirtied versions are symbolically
  evaluated, into the *retained* chain graph
  (:func:`~repro.vgraph.builder.extend_chain_graph`), where hash-consing
  re-reads every sub-term they share with the unchanged population
  (counted as ``subgraph_nodes_reused``); a root-restricted clone of the
  graph is then normalized against the dirty pairs' goals only
  (:func:`~repro.validator.validate.validate_chain_delta`) and their
  verdicts read off;
* **cold-identical records** — accepts read off the delta are exact,
  every read-off *rejection* is re-checked with an isolated per-pair
  :func:`~repro.validator.validate.validate`, and the whole-query
  fallback is always answered per-pair/cache — so incremental records
  are :meth:`~repro.validator.report.FunctionRecord.signature`-identical
  to cold records (``benchmarks/stepwise_guard.py --incremental-parity``
  enforces it on every corpus).

``llvm_md``/``validate_module_batch`` route through a process-shared
revalidator when ``config.incremental`` is set; ``python -m
repro.validator.watch`` wraps one in a polling CLI loop.
"""

from __future__ import annotations

import sys
import time
from typing import (Callable, Dict, Iterable, List, Optional, Sequence, Set,
                    Tuple)

from ..analysis.manager import AnalysisManager, CHECKPOINT_FINGERPRINTS
from ..errors import ReproError
from ..ir.cloning import clone_function, clone_globals_into
from ..ir.module import Function, Module
from ..transforms.pass_manager import PAPER_PIPELINE, PassManager, checkpoint_chain
from ..vgraph.builder import FunctionSummary, extend_chain_graph
from ..vgraph.graph import ValueGraph
from .cache import CacheKey, ValidationCache
from .config import DEFAULT_CONFIG, ValidatorConfig
from .report import FunctionRecord, ValidationReport
from .scheduler import (
    RequestBudget,
    chain_amortizes,
    create_executor,
    remap_function_refs,
    remap_globals,
    resolved_executor,
    run_stepwise,
)
from .scheduler.plan import PipelineDiff, diff_plan
from .validate import (UNCACHEABLE_REASONS, ValidationResult, validate_bounded,
                       validate_chain_delta)


class _ChainState:
    """One function's retained incremental state between revalidations."""

    __slots__ = ("fingerprints", "pair_keys", "pristine", "summaries")

    def __init__(self, fingerprints: List[str], pair_keys: List[CacheKey],
                 pristine: Optional[ValueGraph],
                 summaries: Dict[str, FunctionSummary]) -> None:
        #: Content fingerprints of the previous run's version chain.
        self.fingerprints = fingerprints
        #: The previous run's adjacent-pair cache keys (adoption source).
        self.pair_keys = pair_keys
        #: The retained chain graph — constructed, *never* normalized
        #: (normalization always runs on a root-restricted clone), so it
        #: stays merge-free and extensible.  ``None`` when the previous
        #: run never amortized a chain build.
        self.pristine = pristine
        #: Fingerprint -> roots of every version the pristine graph holds.
        self.summaries = summaries


class Revalidator:
    """A long-lived incremental validation driver (one per config/service).

    Owns the warm state cold runs lack: the executor backend, the
    (optionally persistent) proof cache, the analysis manager and the
    per-function :class:`_ChainState`.  Under a pooled executor
    (``"pool"``/``"steal"``) the dirty uncached pairs of a revalidation
    are shipped to the workers as isolated pair items first — retained
    graphs cannot cross process boundaries, but dirty-suffix skipping
    still applies — while the serial backend gets the full
    subgraph-diff reuse.  (``executor="wave"`` is rejected at config
    construction: waves cancel exactly the pairs the diff already
    skipped.)
    """

    def __init__(self, config: Optional[ValidatorConfig] = None,
                 cache: Optional[ValidationCache] = None) -> None:
        self.config = config or DEFAULT_CONFIG
        self.cache = cache if cache is not None else ValidationCache(
            self.config.cache_dir, max_bytes=self.config.cache_max_bytes,
            backend=self.config.cache_backend,
            fault_plan=self.config.fault_plan)
        self.manager = AnalysisManager(
            max_entries=self.config.analysis_cache_size or None)
        self.executor = create_executor(self.config)
        self._states: Dict[Tuple[str, str], _ChainState] = {}
        #: Completed :meth:`revalidate` calls.
        self.runs = 0

    def close(self) -> None:
        """Release the executor backend and flush the persistent cache."""
        self.executor.close()
        self.cache.save_if_dirty()

    # -- the driver loop ---------------------------------------------------
    def revalidate(self, module: Module,
                   passes: Sequence[str] = PAPER_PIPELINE,
                   label: str = "",
                   function_names: Optional[Iterable[str]] = None,
                   cache: Optional[ValidationCache] = None,
                   budget: Optional[RequestBudget] = None,
                   on_record: Optional[Callable[[FunctionRecord], None]] = None,
                   ) -> Tuple[Module, ValidationReport]:
        """Optimize and validate ``module``, reusing the previous run.

        Same contract as serial stepwise
        :func:`~repro.validator.driver.llvm_md` — a fresh result module
        sharing no mutable structure with the input, per-function
        records with verdicts/blame/kept prefixes — plus the incremental
        telemetry in ``report.shard_stats``.  An explicit ``cache``
        overrides the revalidator's own for this call (keys are
        content-addressed, so mixing caches never changes verdicts).

        ``budget`` bounds this call's *fresh* work (see
        :mod:`~repro.validator.scheduler.budget`): cache hits and
        adopted unchanged pairs stay free, and once the budget is
        exhausted remaining queries settle as synthetic uncached
        ``"budget-exhausted"`` denials — records keep their validated
        ``kept_prefix`` instead of the call failing.  ``on_record`` is
        invoked with each :class:`~repro.validator.report.FunctionRecord`
        as it settles, letting a streaming host (the validation service)
        emit verdicts before the run completes.
        """
        label = label or module.name
        cache = cache if cache is not None else self.cache
        report = ValidationReport(label=label)
        result_module = Module(module.name)
        global_map = clone_globals_into(module, result_module)
        selected = set(function_names) if function_names is not None else None

        # Phase 1: optimize + diff every selected function, so pooled
        # backends can see the whole revalidation's dirty demand at once.
        contexts = []
        for function in module.functions.values():
            if function.is_declaration or (
                    selected is not None and function.name not in selected):
                result_module.add_function(
                    clone_function(function, value_map=global_map))
                continue
            contexts.append(self._plan_function(function, passes, label, cache))

        # Phase 2 (pooled backends only): ship the dirty uncached pairs to
        # the workers as isolated pair items and pre-fill the cache.
        prefilled = self._prefill_pooled(contexts, cache, budget)
        prefilled_count = len(prefilled)

        # Phase 3: settle every record through the incremental provider.
        run_totals = {"pairs_skipped_unchanged": 0, "subgraph_nodes_reused": 0,
                      "chain_extensions": 0, "chain_fallbacks": 0,
                      "functions_fully_cached": 0}
        for context in contexts:
            kept, record = self._settle_function(context, cache, prefilled,
                                                 run_totals, budget)
            report.add(record)
            if on_record is not None:
                on_record(record)
            function = context["function"]
            if kept is function:
                result_module.add_function(
                    clone_function(function, value_map=global_map))
            else:
                remap_globals(kept, global_map)
                result_module.add_function(kept)
        remap_function_refs(result_module)

        cache.save_if_dirty()
        report.cache_stats = cache.stats()
        report.analysis_stats = self.manager.stats()
        self.runs += 1
        executor_stats = self.executor.stats()
        report.shard_stats = {
            "executor": self.executor.name,
            "incremental": 1,
            "revalidations": self.runs,
            "pool_prefilled_pairs": prefilled_count,
            "workers_respawned": executor_stats.get("workers_respawned", 0),
            "pairs_quarantined": executor_stats.get("pairs_quarantined", 0),
            "item_retries": executor_stats.get("item_retries", 0),
            **run_totals,
        }
        if budget is not None:
            report.shard_stats.update(budget.stats())
        return result_module, report

    # -- planning ---------------------------------------------------------
    def _plan_function(self, function: Function, passes: Sequence[str],
                       label: str, cache: ValidationCache) -> Dict[str, object]:
        record = FunctionRecord(name=function.name, strategy="stepwise")
        snapshots = PassManager(passes).run_with_snapshots(function)
        record.transformed_by = {snap.pass_name: snap.changed
                                 for snap in snapshots}
        context: Dict[str, object] = {"function": function, "record": record,
                                      "state_key": (label, function.name)}
        if not record.transformed:
            return context
        steps, versions = checkpoint_chain(function, snapshots)
        fingerprints = [CHECKPOINT_FINGERPRINTS.fingerprint(function)]
        fingerprints += [snap.fingerprint() for snap in steps]
        previous = self._states.get((label, function.name))
        diff = diff_plan(previous.fingerprints if previous is not None else [],
                         fingerprints, self.config, cache=cache,
                         old_pair_keys=(previous.pair_keys
                                        if previous is not None else None))
        context.update(steps=steps, versions=versions,
                       fingerprints=fingerprints, previous=previous, diff=diff)
        return context

    def _prefill_pooled(self, contexts: List[Dict[str, object]],
                        cache: ValidationCache,
                        budget: Optional[RequestBudget] = None,
                        ) -> Set[CacheKey]:
        """Run dirty uncached pairs on a pooled backend, filling the cache.

        Returns the keys filled this way; the provider counts their first
        consumption as a miss (the verdict is fresh work of this run, it
        merely ran on a worker).  Serial backends skip this entirely and
        keep the retained-graph delta path.  A ``budget`` is charged here
        at admission (one fresh pair per item); work beyond it is simply
        not shipped, and the provider denies it at settlement.
        """
        if resolved_executor(self.config) not in ("pool", "steal"):
            return set()
        items = []
        keys: List[CacheKey] = []
        queued: Set[CacheKey] = set()
        for context in contexts:
            diff = context.get("diff")
            if diff is None:
                continue
            versions = context["versions"]
            for index in diff.dirty_pairs:
                if budget is not None and budget.exhausted:
                    break
                key = diff.pair_keys[index]
                if key in queued or cache.peek(key) is not None:
                    continue
                queued.add(key)
                keys.append(key)
                items.append(("pair", versions[index], versions[index + 1],
                              self.config))
                if budget is not None:
                    budget.charge()
        if not items:
            return set()
        results = self.executor.run_batch(items, self.config)
        prefilled: Set[CacheKey] = set()
        for key, result in zip(keys, results):
            # Synthetic denials (timeouts, quarantines) must not enter the
            # prefilled set: the provider treats prefilled keys as cached
            # verdicts, and the cache refuses them anyway — the provider's
            # own bounded validation re-answers (or re-denies) the pair.
            if (isinstance(result, ValidationResult)
                    and result.reason not in UNCACHEABLE_REASONS):
                cache.put(key, result)
                prefilled.add(key)
        return prefilled

    # -- settlement -------------------------------------------------------
    def _settle_function(self, context: Dict[str, object],
                         cache: ValidationCache, prefilled: Set[CacheKey],
                         run_totals: Dict[str, int],
                         budget: Optional[RequestBudget] = None,
                         ) -> Tuple[Function, FunctionRecord]:
        function: Function = context["function"]
        record: FunctionRecord = context["record"]
        if "diff" not in context:
            # Untransformed: nothing to validate, nothing worth retaining.
            self._states.pop(context["state_key"], None)
            return function, record
        versions: List[Function] = context["versions"]
        steps = context["steps"]
        fingerprints: List[str] = context["fingerprints"]
        previous: Optional[_ChainState] = context["previous"]
        diff: PipelineDiff = context["diff"]

        provider, finish = self._incremental_provider(
            versions, fingerprints, diff, previous, record, cache, prefilled,
            budget)
        kept = run_stepwise(function, versions, steps, provider, record)
        record.analysis_stats = self.manager.stats()
        self._states[context["state_key"]] = finish(run_totals)
        return kept, record

    def _incremental_provider(self, versions: List[Function],
                              fingerprints: List[str], diff: PipelineDiff,
                              previous: Optional[_ChainState],
                              record: FunctionRecord, cache: ValidationCache,
                              prefilled: Set[CacheKey],
                              budget: Optional[RequestBudget] = None):
        """The pair provider settling one function's record incrementally.

        Returns ``(provider, finish)``; ``finish(run_totals)`` folds the
        per-record telemetry into the run totals and returns the
        :class:`_ChainState` to retain for the next revalidation.
        """
        config = self.config
        manager = self.manager
        positions = {(id(before), id(after)): index
                     for index, (before, after)
                     in enumerate(zip(versions, versions[1:]))}
        whole_pair = (id(versions[0]), id(versions[-1]))
        unchanged = set(diff.unchanged_pairs) if previous is not None else set()
        # Mutable provider state: the lazily produced delta verdicts, the
        # extended graph/summaries, and the telemetry counters.
        state: Dict[str, object] = {}
        counters = {"skipped": 0, "reused": 0, "extended": 0, "fallback": 0,
                    "fresh": 0, "denied": 0}

        def delta() -> Optional[Dict[int, ValidationResult]]:
            """Extend the retained graph and read the dirty verdicts off it."""
            if "delta" in state:
                return state["delta"]  # type: ignore[return-value]
            verdicts: Optional[Dict[int, ValidationResult]] = None
            needed = [index for index in diff.dirty_pairs
                      if cache.peek(diff.pair_keys[index]) is None]
            worthwhile = ((previous is not None and previous.pristine is not None)
                          or chain_amortizes(len(needed), len(versions)))
            if needed and worthwhile:
                graph = (previous.pristine if previous is not None
                         and previous.pristine is not None else ValueGraph())
                old_summaries = (previous.summaries if previous is not None
                                 and previous.pristine is not None else {})
                old_limit = sys.getrecursionlimit()
                sys.setrecursionlimit(max(old_limit, config.recursion_limit))
                try:
                    summaries, reused, built = extend_chain_graph(
                        graph, old_summaries, versions, manager, fingerprints)
                except Exception:
                    summaries = None
                finally:
                    sys.setrecursionlimit(old_limit)
                if summaries is not None:
                    outcome = validate_chain_delta(
                        graph, summaries, needed, config,
                        nodes_built=built, nodes_reused=reused)
                    if outcome is not None:
                        verdicts, chain_stats = outcome
                        counters["extended"] = 1
                        counters["reused"] = reused
                        record.chain_stats = chain_stats
                        state["graph"] = graph
                        state["summaries"] = summaries
                if verdicts is None:
                    # Build or normalization failed: validate per-pair
                    # below and drop the retained state (next run is cold).
                    counters["fallback"] = 1
            state["delta"] = verdicts
            return verdicts

        def provider(before: Function, after: Function
                     ) -> Tuple[ValidationResult, bool]:
            position = positions.get((id(before), id(after)))
            is_whole = position is None and (id(before), id(after)) == whole_pair
            if position is None and not is_whole:
                # Not a chain query (cannot happen under run_stepwise, but
                # the provider contract is total): validate through the
                # cache by content key.
                key = cache.key(before, after, config)
                cached = cache.get(key, before.name)
                if cached is not None:
                    return cached, True
                if budget is not None and budget.exhausted:
                    counters["denied"] += 1
                    return budget.result(before.name), False
                result = validate_bounded(before, after, config,
                                          manager=manager)
                if result.reason in UNCACHEABLE_REASONS:
                    counters["denied"] += 1
                    return result, False
                cache.put(key, result)
                counters["fresh"] += 1
                if budget is not None:
                    budget.charge()
                return result, False
            key = (diff.pair_keys[position] if position is not None
                   else cache.key_for(fingerprints[0], fingerprints[-1], config))
            if key in prefilled:
                # Fresh work of this run that a pooled worker performed:
                # consume it as a miss, exactly as the batch settle layer
                # accounts pre-executed items.
                prefilled.discard(key)
                cache.misses += 1
                counters["fresh"] += 1
                return cache.peek(key), False
            cached = cache.get(key, before.name)
            if cached is not None:
                if position in unchanged:
                    counters["skipped"] += 1
                return cached, True
            if budget is not None and budget.exhausted:
                # Everything past this point is fresh work (delta read-off
                # or isolated validation): deny it uncached — the record
                # salvages its validated prefix, the cache stays clean.
                counters["denied"] += 1
                return budget.result(before.name), False
            result: Optional[ValidationResult] = None
            if position is not None and position in set(diff.dirty_pairs):
                verdicts = delta()
                if verdicts is not None:
                    result = verdicts.get(position)
                if result is not None and not result.is_success:
                    # Delta rejections are never authoritative (the dirty
                    # goal union is neither the full-chain nor the
                    # isolated-pair scope): re-check in isolation, always.
                    result = None
            # Unchanged pairs whose cached verdict was evicted, the whole
            # fallback, and everything the delta could not answer are
            # validated in isolation — the same oracle the cold paths use.
            if result is None:
                result = validate_bounded(before, after, config,
                                          manager=manager)
                if result.reason in UNCACHEABLE_REASONS:
                    counters["denied"] += 1
                    return result, False
            cache.put(key, result)
            counters["fresh"] += 1
            if budget is not None:
                budget.charge()
            return result, False

        def finish(run_totals: Dict[str, int]) -> _ChainState:
            if record.chain_stats is not None and counters["extended"]:
                record.chain_stats["chain_pairs_skipped"] = counters["skipped"]
            run_totals["pairs_skipped_unchanged"] += counters["skipped"]
            run_totals["subgraph_nodes_reused"] += counters["reused"]
            run_totals["chain_extensions"] += counters["extended"]
            run_totals["chain_fallbacks"] += counters["fallback"]
            if ("delta" not in state and not counters["fresh"]
                    and not counters["denied"]):
                run_totals["functions_fully_cached"] += 1
            if counters["fallback"]:
                # Broken graph state: retain only the plan (fingerprints
                # and keys still allow adoption), cold-build next time.
                return _ChainState(fingerprints, diff.pair_keys, None, {})
            if counters["extended"]:
                graph: ValueGraph = state["graph"]  # type: ignore[assignment]
                summaries: List[FunctionSummary] = state["summaries"]  # type: ignore[assignment]
                # Prune retired versions' nodes so the retained graph (and
                # the next delta's restricted clone + sharing scan) stays
                # proportional to the live chain.
                roots = [node for summary in summaries
                         for node in summary.roots()]
                pruned = graph.clone(roots=roots)
                return _ChainState(fingerprints, diff.pair_keys, pruned,
                                   dict(zip(fingerprints, summaries)))
            # Fully cached (or answered per-pair without amortizing a
            # build): carry the previous pristine graph forward — its
            # summaries stay valid, keyed by fingerprint — under the new
            # plan.
            pristine = previous.pristine if previous is not None else None
            summaries_map = dict(previous.summaries) if previous is not None else {}
            return _ChainState(fingerprints, diff.pair_keys, pristine,
                               summaries_map)

        return provider, finish


#: Process-shared revalidators, one per configuration — what gives
#: repeated ``llvm_md(..., config.incremental)`` calls their memory.
_SHARED: Dict[ValidatorConfig, Revalidator] = {}


def shared_revalidator(config: Optional[ValidatorConfig] = None) -> Revalidator:
    """The process-shared :class:`Revalidator` for ``config``."""
    config = config or DEFAULT_CONFIG
    revalidator = _SHARED.get(config)
    if revalidator is None:
        revalidator = _SHARED[config] = Revalidator(config)
    return revalidator


def reset_shared_revalidators() -> None:
    """Drop every process-shared revalidator (tests and long-lived hosts)."""
    for revalidator in _SHARED.values():
        revalidator.close()
    _SHARED.clear()


def _load_module(source: str, scale: float) -> Module:
    """Resolve a watch source: ``corpus:NAME`` or a path to an ``.ll`` file."""
    if source.startswith("corpus:"):
        from ..bench.corpus import BENCHMARKS_BY_NAME, build_corpus
        name = source[len("corpus:"):]
        if name not in BENCHMARKS_BY_NAME:
            raise SystemExit(
                f"unknown corpus {name!r} (known: "
                f"{', '.join(sorted(BENCHMARKS_BY_NAME))})")
        return build_corpus(BENCHMARKS_BY_NAME[name], scale)
    from ..ir import parse_module
    from pathlib import Path
    path = Path(source)
    return parse_module(path.read_text(), name=path.stem)


def _source_stamp(path) -> Optional[Tuple[int, int]]:
    """``(st_mtime_ns, st_size)`` of ``path``, or ``None`` when unreadable.

    Nanosecond mtime *and* size: a bare ``st_mtime`` equality check
    misses same-second rewrites on coarse-timestamp filesystems, and a
    deleted file must read as "no stamp", not raise out of the watcher.
    """
    try:
        status = path.stat()
    except OSError:
        return None
    return (status.st_mtime_ns, status.st_size)


def watch_source(path, load: Callable[[], Module],
                 revalidate: Callable[[Module], None],
                 interval: float = 2.0,
                 sleep: Callable[[float], None] = time.sleep,
                 max_polls: Optional[int] = None) -> int:
    """Poll ``path``, calling ``revalidate(load())`` on every content change.

    The loop must outlive editor behavior: the file may briefly not
    exist (atomic-replace saves, deletions) and may be half-written when
    a poll lands (parse errors) — both print a warning and keep polling
    instead of crashing the watcher.  A failed load keeps its stamp, so
    the write that completes the file triggers the retry.  ``sleep`` and
    ``max_polls`` exist for tests; returns the number of completed
    revalidations.
    """
    last_stamp = _source_stamp(path)
    missing_warned = last_stamp is None
    if missing_warned:
        print(f"warning: {path} is missing; waiting for it to appear")
    runs = 0
    polls = 0
    while max_polls is None or polls < max_polls:
        sleep(interval)
        polls += 1
        stamp = _source_stamp(path)
        if stamp is None:
            if not missing_warned:
                print(f"warning: {path} disappeared; watching for it to "
                      f"reappear")
                missing_warned = True
            continue
        missing_warned = False
        if stamp == last_stamp:
            continue
        last_stamp = stamp
        try:
            module = load()
        except (OSError, ReproError) as exc:
            print(f"warning: could not load {path} ({exc}); waiting for the "
                  f"next change")
            continue
        revalidate(module)
        runs += 1
    return runs


def _print_run(label: str, report) -> None:
    shard = report.shard_stats or {}
    print(f"[{label}] {report.summary_line()}")
    print(f"[{label}] pairs_skipped_unchanged={shard.get('pairs_skipped_unchanged', 0)} "
          f"subgraph_nodes_reused={shard.get('subgraph_nodes_reused', 0)} "
          f"chain_extensions={shard.get('chain_extensions', 0)} "
          f"fully_cached={shard.get('functions_fully_cached', 0)}")
    if report.cache_stats:
        hits = report.cache_stats.get("hits", 0)
        misses = report.cache_stats.get("misses", 0)
        total = hits + misses
        rate = hits / total if total else 0.0
        print(f"[{label}] cache: {hits}/{total} hits ({rate:.1%})")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.validator.watch`` — the watch-mode CLI.

    Revalidates ``SOURCE`` (an ``.ll`` file, re-parsed whenever its mtime
    changes, or ``corpus:NAME``) in a polling loop through one long-lived
    :class:`Revalidator`.  ``--once`` runs a single revalidation (plus an
    in-process ``--then-passes`` re-run, the suffix-tweak demo) and
    exits; ``--min-hit-rate`` / ``--min-skipped`` turn the exit status
    into a warm-cache / incremental-reuse smoke check for CI.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.validator.watch",
        description="Watch-mode incremental revalidation driver.")
    parser.add_argument("source",
                        help="path to an .ll module, or corpus:NAME")
    parser.add_argument("--passes", nargs="+", default=list(PAPER_PIPELINE),
                        help="optimization pipeline (default: paper pipeline)")
    parser.add_argument("--then-passes", nargs="+", default=None,
                        help="revalidate again with this pipeline after the "
                             "first run (demonstrates dirty-suffix reuse)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="corpus scale for corpus: sources")
    parser.add_argument("--once", action="store_true",
                        help="run once (plus --then-passes) and exit")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="polling interval in seconds (file sources)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent proof-cache directory")
    parser.add_argument("--cache-backend", default="auto",
                        help="proof-store backend (auto/json/sqlite)")
    parser.add_argument("--min-hit-rate", type=float, default=None,
                        help="exit 1 if the first run's cache hit rate is "
                             "below this fraction")
    parser.add_argument("--min-skipped", type=int, default=None,
                        help="exit 1 if the final run adopted fewer than this "
                             "many unchanged pairs")
    args = parser.parse_args(argv)

    from dataclasses import replace
    config = replace(DEFAULT_CONFIG, incremental=True,
                     cache_dir=args.cache_dir,
                     cache_backend=args.cache_backend)
    revalidator = Revalidator(config)
    status = 0
    # try/finally so the executor backend and the persistent cache are
    # released even when a revalidation raises mid-run.
    try:
        module = _load_module(args.source, args.scale)

        _, report = revalidator.revalidate(module, tuple(args.passes))
        _print_run("run 1", report)
        if args.min_hit_rate is not None:
            stats = report.cache_stats or {}
            total = stats.get("hits", 0) + stats.get("misses", 0)
            rate = stats.get("hits", 0) / total if total else 0.0
            if rate < args.min_hit_rate:
                print(f"FAIL: hit rate {rate:.1%} < {args.min_hit_rate:.1%}")
                status = 1
        last_report = report
        if args.then_passes:
            _, last_report = revalidator.revalidate(module,
                                                    tuple(args.then_passes))
            _print_run("run 2", last_report)

        if not args.once and not args.source.startswith("corpus:"):
            from pathlib import Path
            path = Path(args.source)

            def rerun(changed: Module) -> None:
                nonlocal last_report
                _, last_report = revalidator.revalidate(changed,
                                                        tuple(args.passes))
                _print_run(time.strftime("%H:%M:%S"), last_report)

            print(f"watching {path} (every {args.interval:g}s; "
                  f"Ctrl-C to stop)")
            try:
                watch_source(path,
                             lambda: _load_module(args.source, args.scale),
                             rerun, interval=args.interval)
            except KeyboardInterrupt:
                pass

        if args.min_skipped is not None:
            skipped = (last_report.shard_stats or {}).get(
                "pairs_skipped_unchanged", 0)
            if skipped < args.min_skipped:
                print(f"FAIL: pairs_skipped_unchanged {skipped} < "
                      f"{args.min_skipped}")
                status = 1
    finally:
        revalidator.close()
    return status


__all__ = [
    "Revalidator",
    "shared_revalidator",
    "reset_shared_revalidators",
    "watch_source",
    "main",
]


if __name__ == "__main__":
    raise SystemExit(main())
