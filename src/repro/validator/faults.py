"""Deterministic, seedable fault injection for the validator's recovery paths.

Recovery machinery that only runs when hardware misbehaves is machinery
that never runs in CI.  This module makes failure a *scheduled input*: a
:class:`FaultPlan` names sites in the validation pipeline and attaches
frozen :class:`FaultSpec` schedules to them ("crash the worker on the
3rd matching item", "hang pair ``f`` for 2 seconds", "raise ENOSPC on
the first two cache flushes", "corrupt one result payload"), and the
executor/cache/service layers consult the plan at those sites.  Firing
is a pure function of the plan and a per-process visit counter — no
clocks, no randomness — so a seeded chaos run is exactly reproducible
and its records can be byte-compared against the fault-free run
(``benchmarks/chaos_guard.py`` does exactly that in CI).

Sites wired in today:

``"pair"``
    Inside :func:`~repro.validator.validate.validate_bounded`, before
    one pair validation; detail is the function name.  ``hang`` here is
    how a diverging normalization is simulated — it runs *inside* the
    pair watchdog, so ``config.pair_timeout`` preempts it.
``"worker"``
    Inside a steal-pool worker's main loop, before validating a
    received item; detail is the item's function name.  ``crash`` here
    hard-exits the worker process (``os._exit``), exercising the
    supervisor's respawn/requeue/quarantine path.
``"steal-dispatch"``
    In the parent, right after an item is dispatched to a steal worker
    (``crash`` kills that worker before it can answer).
``"pool-batch"``
    In the parent, at the top of each :class:`ProcessPoolExecutor`
    batch attempt (``crash`` simulates a broken pool / spawn race).
``"payload"``
    In the parent, as a steal result arrives (``corrupt`` replaces it
    with a malformed payload, exercising the per-item retry path).
``"cache-flush"``
    Inside the proof stores' write paths (``raise`` with
    ``error="database is locked"`` or ``"ENOSPC"`` exercises the
    locked-retry and degrade-to-memory paths).
``"conn-drop"``
    In the TCP steal coordinator, right after an item is written to a
    remote worker's connection (any action severs that connection, so
    the leased item surfaces as a worker death → respawn/requeue).
``"conn-delay"``
    In the TCP steal coordinator, as a result frame arrives (``hang``
    delays its delivery by ``seconds``, simulating a congested link;
    ordering and verdicts are unaffected).
``"handshake"``
    In the TCP steal coordinator, while accepting a new worker or
    store connection (any action rejects the handshake, exercising the
    joiner's retry/give-up path).

The plan and its specs are frozen dataclasses of immutables:
:class:`~repro.validator.config.ValidatorConfig` stays hashable (the
watch layer keys shared revalidators by config) and picklable (work
items carry the config into worker processes, where the same plan keeps
firing on that process's own counters).
"""

from __future__ import annotations

import errno
import os
import signal
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Sites the validator consults a plan at (documented above).
SITES = ("pair", "worker", "steal-dispatch", "pool-batch", "payload",
         "cache-flush", "conn-drop", "conn-delay", "handshake")

#: What a firing spec does: ``"crash"`` (kill the worker process, or
#: raise :class:`InjectedCrash` in the parent), ``"hang"`` (sleep for
#: ``seconds``), ``"raise"`` (raise the mapped ``error``) or
#: ``"corrupt"`` (returned to the site, which mangles its payload).
ACTIONS = ("crash", "hang", "raise", "corrupt")

#: Exit code an injected worker crash dies with (distinguishable from a
#: real segfault's negative signal status in the supervisor's logs).
WORKER_CRASH_EXIT = 61


class InjectedFault(RuntimeError):
    """An error manufactured by a fault plan (the generic ``raise`` action)."""


class InjectedCrash(InjectedFault):
    """A parent-side stand-in for a worker/pool death."""


class PairTimeout(BaseException):
    """One pair validation exceeded ``config.pair_timeout``.

    Deliberately *not* an :class:`Exception`: the watchdog raises it
    asynchronously (SIGALRM) inside arbitrary validation code, and no
    ``except Exception`` recovery path deep in graph construction or
    normalization may swallow it — only
    :func:`~repro.validator.validate.validate_bounded` catches it.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: a site, an action, and when it fires.

    The spec keeps its own visit counter (per process): every
    consultation of ``site`` whose detail contains ``match`` counts as
    one visit, and the spec fires on visits ``at .. at + count - 1``
    (``count=0`` fires forever from ``at``).  An empty ``match`` matches
    every detail.
    """

    site: str
    action: str
    match: str = ""
    at: int = 1
    count: int = 1
    seconds: float = 0.0
    error: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r} (known: {SITES})")
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (known: {ACTIONS})")
        if self.at < 1:
            raise ValueError("at is 1-based: the first matching visit is at=1")
        if self.count < 0:
            raise ValueError("count must be >= 0 (0 = fire forever from at)")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults (hashable, picklable).

    ``seed`` does not affect *firing* (that is the specs' visit
    arithmetic) — it seeds the deterministic jitter of any retry/backoff
    machinery recovering from this plan's faults, so a chaos run's
    timing is reproducible too.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    # -- readable constructors for the common schedules -------------------
    @staticmethod
    def of(*specs: FaultSpec, seed: int = 0) -> "FaultPlan":
        return FaultPlan(specs=tuple(specs), seed=seed)

    @staticmethod
    def crash_worker(match: str = "", at: int = 1, count: int = 1,
                     seed: int = 0) -> "FaultPlan":
        """Kill a steal worker when it receives the matching item."""
        return FaultPlan.of(FaultSpec("worker", "crash", match, at, count),
                            seed=seed)

    @staticmethod
    def crash_pool_batch(at: int = 1, count: int = 1, seed: int = 0
                         ) -> "FaultPlan":
        """Break the process pool at the top of the matching batch."""
        return FaultPlan.of(FaultSpec("pool-batch", "crash", "", at, count),
                            seed=seed)

    @staticmethod
    def hang_pair(match: str, seconds: float, at: int = 1, count: int = 0,
                  seed: int = 0) -> "FaultPlan":
        """Hang the matching pair validation (pair_timeout's test subject)."""
        return FaultPlan.of(
            FaultSpec("pair", "hang", match, at, count, seconds=seconds),
            seed=seed)

    @staticmethod
    def flush_error(error: str, at: int = 1, count: int = 1, seed: int = 0
                    ) -> "FaultPlan":
        """Raise the mapped ``error`` on the matching cache flushes."""
        return FaultPlan.of(
            FaultSpec("cache-flush", "raise", "", at, count, error=error),
            seed=seed)

    @staticmethod
    def corrupt_payload(match: str = "", at: int = 1, count: int = 1,
                        seed: int = 0) -> "FaultPlan":
        """Corrupt the matching steal result payload in flight."""
        return FaultPlan.of(FaultSpec("payload", "corrupt", match, at, count),
                            seed=seed)


# -- firing state -----------------------------------------------------------
#: Per-plan, per-spec visit counters.  Per *process*: a plan pickled into
#: a worker fires on that worker's own visits, which is what makes
#: "crash the worker on its 3rd item" mean the same thing every run.
_VISITS: Dict[FaultPlan, Dict[int, int]] = {}

#: Set in steal-pool worker processes: a ``crash`` there hard-exits the
#: process instead of raising (an exception would be *reported*, not a
#: death, and the supervisor's respawn path would never run).
_IN_WORKER_PROCESS = False


def mark_worker_process() -> None:
    """Flag this process as a pool worker (crash faults hard-exit here)."""
    global _IN_WORKER_PROCESS
    _IN_WORKER_PROCESS = True


def reset(plan: Optional[FaultPlan] = None) -> None:
    """Forget firing state for ``plan`` (or every plan) — tests and reruns."""
    if plan is None:
        _VISITS.clear()
    else:
        _VISITS.pop(plan, None)


def should_fire(plan: Optional[FaultPlan], site: str, detail: str = ""
                ) -> Optional[FaultSpec]:
    """Count one visit to ``site`` and return the spec that fires, if any.

    Every spec matching (site, detail) advances its own counter even
    when another spec already fired this visit, so schedules stay
    independent of each other.
    """
    if plan is None or not plan.specs:
        return None
    counters = _VISITS.setdefault(plan, {})
    fired: Optional[FaultSpec] = None
    for index, spec in enumerate(plan.specs):
        if spec.site != site:
            continue
        if spec.match and spec.match not in detail:
            continue
        visits = counters.get(index, 0) + 1
        counters[index] = visits
        in_window = visits >= spec.at and (
            spec.count == 0 or visits < spec.at + spec.count)
        if fired is None and in_window:
            fired = spec
    return fired


def make_error(name: str, site: str, detail: str) -> BaseException:
    """Map a spec's ``error`` string to a realistic exception instance."""
    lowered = name.lower()
    if lowered == "enospc":
        return OSError(errno.ENOSPC, f"No space left on device (injected at "
                                     f"{site}: {detail or 'any'})")
    if "lock" in lowered:
        return sqlite3.OperationalError("database is locked")
    if "connection" in lowered:
        return ConnectionResetError(
            f"Connection reset by peer (injected at {site})")
    return InjectedFault(f"{name or 'injected-fault'} at {site}: "
                         f"{detail or 'any'}")


def maybe_fire(plan: Optional[FaultPlan], site: str, detail: str = ""
               ) -> Optional[FaultSpec]:
    """Consult the plan at ``site`` and *apply* the firing spec, if any.

    ``hang`` sleeps (interruptible by the pair watchdog's alarm),
    ``crash`` hard-exits worker processes and raises
    :class:`InjectedCrash` in the parent, ``raise`` raises the mapped
    error, and ``corrupt`` is returned to the caller (only the site
    knows what payload to mangle).
    """
    spec = should_fire(plan, site, detail)
    if spec is None:
        return None
    if spec.action == "hang":
        time.sleep(spec.seconds)
        return spec
    if spec.action == "crash":
        if _IN_WORKER_PROCESS:
            os._exit(WORKER_CRASH_EXIT)
        raise InjectedCrash(f"injected crash at {site}: {detail or 'any'}")
    if spec.action == "raise":
        raise make_error(spec.error, site, detail)
    return spec  # "corrupt": the site mangles its own payload


# -- the pair watchdog ------------------------------------------------------
class watchdog:
    """Context manager bounding a block of work to ``seconds`` wall-clock.

    In a main thread (including worker *processes'* main threads, where
    pair validations actually run under the pooled backends) the bound
    is **preemptive**: ``SIGALRM``/``setitimer`` raises
    :class:`PairTimeout` inside the block, interrupting even an injected
    ``hang``'s sleep.  Off the main thread (the service daemon validates
    on ``asyncio.to_thread`` workers) signals are unavailable; the block
    runs to completion and the caller applies the same limit post-hoc
    via :attr:`elapsed` — later, but with the identical verdict.
    ``seconds <= 0`` disables the bound entirely.
    """

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self.preemptive = False
        self._start = 0.0
        self._old_handler = None

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def __enter__(self) -> "watchdog":
        self._start = time.perf_counter()
        if (self.seconds > 0 and hasattr(signal, "SIGALRM")
                and threading.current_thread() is threading.main_thread()):
            def _expire(signum, frame):
                raise PairTimeout(
                    f"pair validation exceeded {self.seconds:g}s")

            try:
                self._old_handler = signal.signal(signal.SIGALRM, _expire)
                signal.setitimer(signal.ITIMER_REAL, self.seconds)
                self.preemptive = True
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                self._old_handler = None
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.preemptive:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._old_handler)
        return False

    def expired(self) -> bool:
        """Has the block (post-hoc or otherwise) exceeded its bound?"""
        return self.seconds > 0 and self.elapsed >= self.seconds


__all__ = [
    "ACTIONS",
    "SITES",
    "WORKER_CRASH_EXIT",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "PairTimeout",
    "make_error",
    "mark_worker_process",
    "maybe_fire",
    "reset",
    "should_fire",
    "watchdog",
]
