"""A thin blocking client for the validation daemon.

Standard-library only (:mod:`http.client`): submit a module or corpus,
iterate the streamed NDJSON verdicts, read ``/stats``, trigger a
graceful shutdown.  The client is deliberately dumb — every transport
failure surfaces as :class:`ServiceError`, admission rejection as
:class:`ServiceBusy` with the daemon's ``Retry-After`` hint — so test
harnesses and CI guards stay in control of retry policy.  The one
convenience: ``validate(..., retries=N)`` absorbs up to ``N`` 503
rejections itself, waiting out the larger of the daemon's hint and a
deterministic :class:`~repro.validator.scheduler.retry.RetryPolicy`
backoff, so callers stop hand-rolling the ``ServiceBusy`` loop.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from http.client import HTTPConnection
from typing import Callable, Dict, List, Optional, Sequence, Union

from ...ir.module import Module
from ...ir.printer import print_module
from ..scheduler.retry import RetryPolicy, retry_call

#: Backoff shape for ``validate(..., retries=N)``: the daemon's
#: ``Retry-After`` hint still sets the floor on each wait, this policy
#: adds the (seeded, jittered) exponential growth across attempts.
BUSY_RETRY = RetryPolicy(max_attempts=1, base_delay=0.05, max_delay=2.0)


class ServiceError(RuntimeError):
    """The daemon answered with an error (or the stream broke)."""


class ServiceBusy(ServiceError):
    """Admission control rejected the request (HTTP 503)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: The daemon's ``Retry-After`` hint, in seconds.
        self.retry_after = retry_after


class ValidationClient:
    """Blocking access to one validation daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8037,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None):
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        body = json.dumps(payload).encode("utf-8") if payload is not None \
            else None
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
        except OSError as exc:
            connection.close()
            raise ServiceError(f"could not reach the service: {exc}")
        return connection, response

    def validate(self, module: Union[str, Module, None] = None,
                 passes: Optional[Sequence[str]] = None,
                 label: str = "",
                 corpus: Optional[str] = None, scale: float = 0.1,
                 functions: Optional[Sequence[str]] = None,
                 timeout: Optional[float] = None,
                 max_pairs: Optional[int] = None,
                 retries: int = 0, retry_seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep
                 ) -> Dict[str, object]:
        """Validate a module (``.ll`` text or a :class:`Module`) or a corpus.

        Returns ``{"records": [...], "summary": {...}}`` — ``records``
        holds the streamed NDJSON record objects in settlement order
        (each with the daemon-side
        :meth:`~repro.validator.report.FunctionRecord.signature` under
        ``"signature"``).  Raises :class:`ServiceBusy` on 503 and
        :class:`ServiceError` on any other failure.

        ``retries`` absorbs up to that many 503 rejections before the
        :class:`ServiceBusy` propagates: each wait is the *larger* of
        the daemon's ``Retry-After`` hint and the :data:`BUSY_RETRY`
        policy's deterministic (``retry_seed``-jittered) exponential
        backoff, so loaded-daemon callers converge instead of
        thundering back at the hinted instant.  Only 503s retry —
        transport failures and error verdicts stay the caller's
        problem.  ``sleep`` is injectable for tests.
        """
        if retries < 0:
            raise ValueError("retries must be >= 0")
        payload: Dict[str, object] = {}
        if corpus is not None:
            payload["corpus"] = corpus
            payload["scale"] = scale
        elif module is not None:
            payload["module"] = (module if isinstance(module, str)
                                 else print_module(module))
            if isinstance(module, Module):
                payload["name"] = module.name
        else:
            raise ValueError("pass module= or corpus=")
        if passes is not None:
            payload["passes"] = list(passes)
        if label:
            payload["label"] = label
        if functions is not None:
            payload["functions"] = list(functions)
        if timeout is not None:
            payload["timeout"] = timeout
        if max_pairs is not None:
            payload["max_pairs"] = max_pairs

        def attempt() -> Dict[str, object]:
            connection, response = self._request("POST", "/validate", payload)
            try:
                if response.status == 503:
                    detail = response.read().decode("utf-8", "replace")
                    retry_after = float(response.getheader("Retry-After") or 1.0)
                    raise ServiceBusy(f"service busy: {detail.strip()}",
                                      retry_after=retry_after)
                if response.status != 200:
                    detail = response.read().decode("utf-8", "replace")
                    raise ServiceError(
                        f"HTTP {response.status}: {detail.strip()}")
                records: List[Dict[str, object]] = []
                summary: Optional[Dict[str, object]] = None
                for raw in response:
                    line = raw.strip()
                    if not line:
                        continue
                    event = json.loads(line.decode("utf-8"))
                    kind = event.get("type")
                    if kind == "record":
                        records.append(event)
                    elif kind == "summary":
                        summary = event
                    elif kind == "error":
                        raise ServiceError(
                            f"validation failed mid-stream: "
                            f"{event.get('message')}")
                if summary is None:
                    raise ServiceError("stream ended without a summary line")
                return {"records": records, "summary": summary}
            finally:
                connection.close()

        if retries == 0:
            return attempt()
        hint = [0.0]

        def note_hint(_attempt: int, error: BaseException) -> None:
            hint[0] = getattr(error, "retry_after", 0.0)

        def pause(delay: float) -> None:
            sleep(max(delay, hint[0]))

        policy = replace(BUSY_RETRY, max_attempts=retries + 1)
        return retry_call(attempt, policy=policy,
                          retry_if=lambda error: isinstance(error, ServiceBusy),
                          seed=retry_seed, on_retry=note_hint, sleep=pause)

    def stats(self) -> Dict[str, object]:
        """The daemon's ``/stats`` counters."""
        connection, response = self._request("GET", "/stats")
        try:
            if response.status != 200:
                raise ServiceError(f"HTTP {response.status} from /stats")
            return json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to drain and exit gracefully."""
        connection, response = self._request("POST", "/shutdown", {})
        try:
            if response.status != 200:
                raise ServiceError(f"HTTP {response.status} from /shutdown")
            return json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()


__all__ = ["BUSY_RETRY", "ValidationClient", "ServiceBusy", "ServiceError"]
