"""A thin blocking client for the validation daemon.

Standard-library only (:mod:`http.client`): submit a module or corpus,
iterate the streamed NDJSON verdicts, read ``/stats``, trigger a
graceful shutdown.  The client is deliberately dumb — every transport
failure surfaces as :class:`ServiceError`, admission rejection as
:class:`ServiceBusy` with the daemon's ``Retry-After`` hint — so test
harnesses and CI guards stay in control of retry policy.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Dict, List, Optional, Sequence, Union

from ...ir.module import Module
from ...ir.printer import print_module


class ServiceError(RuntimeError):
    """The daemon answered with an error (or the stream broke)."""


class ServiceBusy(ServiceError):
    """Admission control rejected the request (HTTP 503)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: The daemon's ``Retry-After`` hint, in seconds.
        self.retry_after = retry_after


class ValidationClient:
    """Blocking access to one validation daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8037,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None):
        connection = HTTPConnection(self.host, self.port,
                                    timeout=self.timeout)
        body = json.dumps(payload).encode("utf-8") if payload is not None \
            else None
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
        except OSError as exc:
            connection.close()
            raise ServiceError(f"could not reach the service: {exc}")
        return connection, response

    def validate(self, module: Union[str, Module, None] = None,
                 passes: Optional[Sequence[str]] = None,
                 label: str = "",
                 corpus: Optional[str] = None, scale: float = 0.1,
                 functions: Optional[Sequence[str]] = None,
                 timeout: Optional[float] = None,
                 max_pairs: Optional[int] = None) -> Dict[str, object]:
        """Validate a module (``.ll`` text or a :class:`Module`) or a corpus.

        Returns ``{"records": [...], "summary": {...}}`` — ``records``
        holds the streamed NDJSON record objects in settlement order
        (each with the daemon-side
        :meth:`~repro.validator.report.FunctionRecord.signature` under
        ``"signature"``).  Raises :class:`ServiceBusy` on 503 and
        :class:`ServiceError` on any other failure.
        """
        payload: Dict[str, object] = {}
        if corpus is not None:
            payload["corpus"] = corpus
            payload["scale"] = scale
        elif module is not None:
            payload["module"] = (module if isinstance(module, str)
                                 else print_module(module))
            if isinstance(module, Module):
                payload["name"] = module.name
        else:
            raise ValueError("pass module= or corpus=")
        if passes is not None:
            payload["passes"] = list(passes)
        if label:
            payload["label"] = label
        if functions is not None:
            payload["functions"] = list(functions)
        if timeout is not None:
            payload["timeout"] = timeout
        if max_pairs is not None:
            payload["max_pairs"] = max_pairs

        connection, response = self._request("POST", "/validate", payload)
        try:
            if response.status == 503:
                detail = response.read().decode("utf-8", "replace")
                retry_after = float(response.getheader("Retry-After") or 1.0)
                raise ServiceBusy(f"service busy: {detail.strip()}",
                                  retry_after=retry_after)
            if response.status != 200:
                detail = response.read().decode("utf-8", "replace")
                raise ServiceError(
                    f"HTTP {response.status}: {detail.strip()}")
            records: List[Dict[str, object]] = []
            summary: Optional[Dict[str, object]] = None
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                kind = event.get("type")
                if kind == "record":
                    records.append(event)
                elif kind == "summary":
                    summary = event
                elif kind == "error":
                    raise ServiceError(
                        f"validation failed mid-stream: {event.get('message')}")
            if summary is None:
                raise ServiceError("stream ended without a summary line")
            return {"records": records, "summary": summary}
        finally:
            connection.close()

    def stats(self) -> Dict[str, object]:
        """The daemon's ``/stats`` counters."""
        connection, response = self._request("GET", "/stats")
        try:
            if response.status != 200:
                raise ServiceError(f"HTTP {response.status} from /stats")
            return json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to drain and exit gracefully."""
        connection, response = self._request("POST", "/shutdown", {})
        try:
            if response.status != 200:
                raise ServiceError(f"HTTP {response.status} from /shutdown")
            return json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()


__all__ = ["ValidationClient", "ServiceBusy", "ServiceError"]
