"""Validation as a service: a long-lived daemon around one Revalidator.

The batch drivers answer one corpus sweep and exit; the service keeps
the expensive state — the executor backend, the proof cache, the
analysis manager and the per-``(label, function)`` incremental chain
state — alive across requests.  A request posts a module (or a corpus
name) plus a pipeline to ``POST /validate`` and streams back one NDJSON
line per settled :class:`~repro.validator.report.FunctionRecord`
followed by a summary line; repeat requests pay only for what changed.

:mod:`~repro.validator.service.daemon`
    The asyncio daemon: hand-rolled HTTP/1.1 over ``asyncio`` streams
    (no third-party dependencies), admission control
    (``max_inflight`` → ``503`` + ``Retry-After``), per-request
    :class:`~repro.validator.scheduler.budget.RequestBudget`\\ s that
    settle partial records instead of dropping requests, a ``/stats``
    endpoint and graceful drain on ``SIGTERM``.
:mod:`~repro.validator.service.client`
    A thin blocking client on :mod:`http.client` — submit modules,
    collect record signatures, read stats, trigger shutdown.

``python -m repro.validator.service`` starts a daemon;
``benchmarks/service_guard.py`` holds it to record parity with
:func:`~repro.validator.driver.validate_module_batch`.
"""

from .client import ServiceBusy, ServiceError, ValidationClient
from .daemon import ValidationService, serve_in_thread

__all__ = [
    "ValidationService",
    "ValidationClient",
    "ServiceBusy",
    "ServiceError",
    "serve_in_thread",
]
