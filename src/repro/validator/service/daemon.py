"""The validation daemon: asyncio HTTP front-end over one Revalidator.

One :class:`ValidationService` owns one
:class:`~repro.validator.watch.Revalidator` — and with it one executor
backend, one (optionally persistent) proof cache and the per-function
incremental chain state — and serves it over a hand-rolled HTTP/1.1
protocol on plain ``asyncio`` streams, so the daemon needs nothing the
standard library does not ship.

Protocol
--------
``POST /validate``
    Body: JSON with either ``"module"`` (LLVM-ish ``.ll`` text) or
    ``"corpus"``/``"scale"`` (a named paper benchmark built
    server-side), plus optional ``"passes"``, ``"label"``,
    ``"functions"``, ``"timeout"`` and ``"max_pairs"``.  Response: 200
    with ``application/x-ndjson`` — one ``{"type": "record", ...}``
    line per function *as it settles* (``signature`` is the record's
    :meth:`~repro.validator.report.FunctionRecord.signature`), then one
    ``{"type": "summary", ...}`` line with the per-request cache delta,
    shard/engine counters and budget telemetry.  Unparseable input is a
    400; admission rejection is a 503 with a ``Retry-After`` header.
``GET /stats``
    Daemon counters: requests/rejections/in-flight, the revalidator's
    run count, cumulative cache counters, engine totals summed over
    every request, and the last request's ``shard_stats``.
``POST /shutdown``
    Begin a graceful drain (stop admitting, finish in-flight requests,
    flush the cache) and exit — the remote equivalent of ``SIGTERM``.

Budgets are admission control, not errors: a request that exceeds its
wall-clock or fresh-pair budget still streams a complete record set —
unaffordable verdicts are denied with reason ``"budget-exhausted"``
(never cached) and each record keeps its validated ``kept_prefix``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
from dataclasses import replace
from typing import Dict, Optional, Tuple

from ...errors import ReproError
from ...ir import parse_module
from ...ir.module import Module
from ...transforms.pass_manager import PAPER_PIPELINE
from ..config import DEFAULT_CONFIG, ValidatorConfig
from ..report import FunctionRecord
from ..scheduler import RequestBudget
from ..watch import Revalidator

#: ``Retry-After`` hint (seconds) sent with admission rejections.
RETRY_AFTER = 1


def _record_line(record: FunctionRecord) -> Dict[str, object]:
    """The NDJSON payload for one settled record."""
    return {
        "type": "record",
        "from_cache": record.from_cache,
        "elapsed": (record.result.elapsed
                    if record.result is not None else 0.0),
        "signature": record.signature(),
    }


class ValidationService:
    """A long-lived validation daemon sharing one Revalidator.

    The revalidator is not thread-safe, so requests are *admitted*
    concurrently (up to ``config.max_inflight`` queued or running) but
    *executed* serially under an :class:`asyncio.Lock`; validation runs
    on a worker thread (:func:`asyncio.to_thread`) with records streamed
    back through the event loop as they settle, so slow validations
    never block the accept loop, ``/stats`` or rejections.
    """

    def __init__(self, config: Optional[ValidatorConfig] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None) -> None:
        self.config = config or DEFAULT_CONFIG
        self.host = host
        #: Requested port (``0`` = ephemeral); rewritten to the bound
        #: port once :meth:`serve` has a listening socket.
        self.port = self.config.service_port if port is None else port
        self.revalidator = Revalidator(self.config)
        self._lock = asyncio.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight = 0
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        # Daemon telemetry, surfaced by /stats.
        self.requests_total = 0
        self.rejected_total = 0
        self.errors_total = 0
        self.client_disconnects = 0
        self.engine_totals: Dict[str, int] = {}
        self.last_shard_stats: Optional[Dict[str, int]] = None

    # -- request plumbing --------------------------------------------------
    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length > 0 else b""
        return method, path, headers, body

    @staticmethod
    def _head(status: int, reason: str, content_type: str,
              length: Optional[int] = None,
              extra: Optional[Dict[str, str]] = None) -> bytes:
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 "Connection: close"]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         reason: str, payload: Dict[str, object],
                         extra: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        writer.write(self._head(status, reason, "application/json",
                                len(body), extra))
        writer.write(body)
        await writer.drain()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, _, body = request
            if method == "GET" and path == "/stats":
                await self._send_json(writer, 200, "OK", self.stats())
            elif method == "POST" and path == "/shutdown":
                await self._send_json(writer, 200, "OK",
                                      {"ok": True, "draining": True})
                self.request_stop()
            elif method == "POST" and path == "/validate":
                await self._handle_validate(writer, body)
            else:
                await self._send_json(writer, 404, "Not Found",
                                      {"error": f"no route {method} {path}"})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # pragma: no cover - defensive logging
            self.errors_total += 1
            print(f"service error: {exc!r}", file=sys.stderr)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- the validate endpoint ---------------------------------------------
    def _parse_validate(self, body: bytes) -> Dict[str, object]:
        """Decode and materialize a /validate request (raises ValueError)."""
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        if "corpus" in payload:
            from ...bench.corpus import BENCHMARKS_BY_NAME, build_corpus
            name = payload["corpus"]
            if name not in BENCHMARKS_BY_NAME:
                raise ValueError(
                    f"unknown corpus {name!r} (known: "
                    f"{', '.join(sorted(BENCHMARKS_BY_NAME))})")
            module = build_corpus(BENCHMARKS_BY_NAME[name],
                                  float(payload.get("scale", 0.1)))
        elif "module" in payload:
            try:
                module = parse_module(payload["module"],
                                      name=payload.get("name", "module"))
            except ReproError as exc:
                raise ValueError(f"module does not parse: {exc}")
        else:
            raise ValueError("request needs a 'module' or a 'corpus' field")
        passes = tuple(payload.get("passes") or PAPER_PIPELINE)
        label = payload.get("label") or module.name
        functions = payload.get("functions")
        timeout = payload.get("timeout", self.config.request_timeout or None)
        max_pairs = payload.get("max_pairs")
        budget = None
        if (timeout is not None and timeout > 0) or max_pairs:
            budget = RequestBudget(timeout=timeout, max_pairs=max_pairs)
        return {"module": module, "passes": passes, "label": label,
                "functions": functions, "budget": budget}

    async def _handle_validate(self, writer: asyncio.StreamWriter,
                               body: bytes) -> None:
        # Admission control: one counter over queued-or-running requests.
        # Rejecting at the door (cheap, with a Retry-After hint) beats an
        # unbounded queue of parsed modules waiting on the lock.
        if self._draining or self._inflight >= self.config.max_inflight:
            self.rejected_total += 1
            reason = ("draining" if self._draining else
                      f"{self._inflight} requests in flight "
                      f"(max_inflight={self.config.max_inflight})")
            await self._send_json(writer, 503, "Service Unavailable",
                                  {"error": "busy", "detail": reason,
                                   "retry_after": RETRY_AFTER},
                                  extra={"Retry-After": str(RETRY_AFTER)})
            return
        self._inflight += 1
        try:
            try:
                request = self._parse_validate(body)
            except ValueError as exc:
                await self._send_json(writer, 400, "Bad Request",
                                      {"error": str(exc)})
                return
            self.requests_total += 1
            await self._stream_validate(writer, request)
        finally:
            self._inflight -= 1

    async def _stream_validate(self, writer: asyncio.StreamWriter,
                               request: Dict[str, object]) -> None:
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[Tuple[str, object]]" = asyncio.Queue()

        def emit(record: FunctionRecord) -> None:
            # Called on the worker thread after each record settles.
            loop.call_soon_threadsafe(queue.put_nowait, ("record", record))

        budget: Optional[RequestBudget] = request["budget"]

        def run() -> None:
            try:
                _, report = self.revalidator.revalidate(
                    request["module"], request["passes"],
                    label=request["label"],
                    function_names=request["functions"],
                    budget=budget, on_record=emit)
                loop.call_soon_threadsafe(queue.put_nowait, ("done", report))
            except BaseException as exc:
                loop.call_soon_threadsafe(queue.put_nowait, ("error", exc))

        disconnected = False

        async def ship(data: bytes) -> None:
            """Write one chunk unless the client already went away.

            A mid-stream disconnect (the client closed its socket while
            records were still settling) must not kill the request: the
            worker thread keeps running regardless, so the loop below
            simply stops writing, keeps draining the queue until the run
            finishes, and the daemon's bookkeeping (engine totals, last
            shard stats, the inflight decrement in ``_handle_validate``)
            completes exactly as if the client had stayed.
            """
            nonlocal disconnected
            if disconnected:
                return
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                disconnected = True
                self.client_disconnects += 1

        await ship(self._head(200, "OK", "application/x-ndjson"))
        # The revalidator is single-threaded state: serialize requests on
        # the lock, and snapshot the shared cache counters around the run
        # so the summary can report this request's own hit rate.
        async with self._lock:
            before = dict(self.revalidator.cache.stats())
            worker = asyncio.ensure_future(asyncio.to_thread(run))
            try:
                while True:
                    kind, value = await queue.get()
                    if kind == "record":
                        line = json.dumps(_record_line(value)) + "\n"
                        await ship(line.encode("utf-8"))
                    elif kind == "done":
                        # Summarize unconditionally — the totals must be
                        # folded in even when nobody is listening.
                        summary = self._summarize(value, budget, before)
                        await ship((json.dumps(summary) + "\n")
                                   .encode("utf-8"))
                        break
                    else:
                        self.errors_total += 1
                        line = json.dumps({"type": "error",
                                           "message": repr(value)}) + "\n"
                        await ship(line.encode("utf-8"))
                        break
            finally:
                await worker

    def _summarize(self, report, budget: Optional[RequestBudget],
                   before: Dict[str, int]) -> Dict[str, object]:
        """Fold a finished run into the daemon totals; the summary line."""
        after = dict(self.revalidator.cache.stats())
        hits = after.get("hits", 0) - before.get("hits", 0)
        misses = after.get("misses", 0) - before.get("misses", 0)
        total = hits + misses
        for key, value in report.engine_totals().items():
            self.engine_totals[key] = self.engine_totals.get(key, 0) + value
        self.last_shard_stats = dict(report.shard_stats or {})
        return {
            "type": "summary",
            "label": report.label,
            "functions": len(report.records),
            "validated": sum(1 for record in report.records
                             if record.validated),
            "summary": report.summary_line(),
            "cache": {"hits": hits, "misses": misses,
                      "hit_rate": (hits / total) if total else 0.0},
            "shard_stats": self.last_shard_stats,
            "engine_totals": report.engine_totals(),
            "budget": budget.stats() if budget is not None else None,
        }

    # -- lifecycle ---------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The /stats payload (also handy for in-process inspection)."""
        return {
            "requests_total": self.requests_total,
            "rejected_total": self.rejected_total,
            "errors_total": self.errors_total,
            "client_disconnects": self.client_disconnects,
            "inflight": self._inflight,
            "max_inflight": self.config.max_inflight,
            "draining": self._draining,
            "revalidations": self.revalidator.runs,
            "cache": self.revalidator.cache.stats(),
            "engine_totals": dict(self.engine_totals),
            "shard_stats": self.last_shard_stats,
        }

    def request_stop(self) -> None:
        """Begin a graceful drain (idempotent, signal- and thread-safe)."""
        self._draining = True
        if self._stopped is None:
            return
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if self._loop is not None and running is not self._loop:
            # Called from a signal handler's thread or a test thread:
            # Event.set is not thread-safe, hop onto the serving loop.
            self._loop.call_soon_threadsafe(self._stopped.set)
        else:
            self._stopped.set()

    async def serve(self, ready=None) -> None:
        """Run the daemon until SIGTERM/SIGINT or ``POST /shutdown``.

        Binds, announces the address on stdout, serves, then drains:
        stops accepting, waits for in-flight requests to settle, and
        closes the revalidator — which flushes the persistent cache
        (``save_if_dirty``) so nothing proved is lost to a restart.
        ``ready(service)`` is called once the port is bound (tests).
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stopped = asyncio.Event()
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without signal support
        print(f"serving on http://{self.host}:{self.port}", flush=True)
        if ready is not None:
            ready(self)
        async with server:
            await self._stopped.wait()
        # Drain: the listening socket is closed, in-flight handlers finish.
        while self._inflight > 0:
            await asyncio.sleep(0.02)
        self.revalidator.close()
        print("drained; cache flushed", flush=True)


def serve_in_thread(service: ValidationService, timeout: float = 10.0
                    ) -> threading.Thread:
    """Run ``service.serve()`` on a daemon thread; return once it is bound.

    The in-process harness the tests use: the caller talks to
    ``service.port`` over real sockets and stops the daemon with
    :meth:`ValidationService.request_stop` (thread-safe via the stored
    loop) or the client's ``shutdown()``.
    """
    bound = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(service.serve(ready=lambda _: bound.set())),
        daemon=True)
    thread.start()
    if not bound.wait(timeout):
        raise RuntimeError("validation service did not bind in time")
    return thread


def main(argv=None) -> int:
    """``python -m repro.validator.service`` — start a validation daemon."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.validator.service",
        description="Long-lived validation daemon (NDJSON over HTTP).")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="TCP port (default: config service_port; "
                             "0 = ephemeral)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent proof-cache directory")
    parser.add_argument("--cache-backend", default="auto",
                        help="proof-store backend (auto/json/sqlite)")
    parser.add_argument("--executor", default="auto",
                        help="scheduling backend (auto/serial/pool/steal)")
    parser.add_argument("--concurrency", type=int, default=0,
                        help="worker processes for pooled executors")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="admission bound (0 = reject everything)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        help="default per-request wall-clock budget "
                             "(seconds; 0 = unbounded)")
    args = parser.parse_args(argv)

    config = replace(
        DEFAULT_CONFIG,
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
        executor=args.executor,
        concurrency=args.concurrency,
        **({} if args.max_inflight is None
           else {"max_inflight": args.max_inflight}),
        **({} if args.request_timeout is None
           else {"request_timeout": args.request_timeout}),
        **({} if args.port is None else {"service_port": args.port}),
    )
    service = ValidationService(config, host=args.host, port=args.port)
    try:
        asyncio.run(service.serve())
    except KeyboardInterrupt:
        pass
    return 0


__all__ = ["ValidationService", "serve_in_thread", "main", "RETRY_AFTER"]
