"""Aggregation of validation outcomes into reports.

The paper's metrics (Figure 4, Figure 5) are per-function: a function
counts as *transformed* when at least one pass changed it, and as
*validated* only when the whole pipeline's effect on it could be proved
semantics-preserving ("even though we may validate many optimizations, if
even one optimization fails to validate we count the entire function as
failed", §5.1).  :class:`ValidationReport` collects per-function records
and computes those aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .validate import ValidationResult


@dataclass
class FunctionRecord:
    """Validation outcome for one function."""

    name: str
    #: Per-pass "did it change the function" flags (from the pass manager).
    transformed_by: Dict[str, bool] = field(default_factory=dict)
    #: Validation result, or ``None`` when the function was never validated
    #: (e.g. it was not transformed and validation was skipped).
    result: Optional[ValidationResult] = None
    #: Was the result answered from a :class:`~repro.validator.driver.ValidationCache`
    #: instead of a fresh validation?
    from_cache: bool = False
    #: Validation strategy that produced this record (``"whole"``,
    #: ``"stepwise"`` or ``"bisect"``).
    strategy: str = "whole"
    #: Per-pass verdicts, keyed by pass name.  Stepwise: the verdict of
    #: the adjacent checkpoint pair ending at that pass (pipeline order).
    #: Bisect: the verdict of the (original, checkpoint-after-that-pass)
    #: probe the bisection ran (probe order).  Passes never probed do not
    #: appear.
    pass_verdicts: Dict[str, ValidationResult] = field(default_factory=dict)
    #: Pass the strategy blames for the rejection (``None`` when accepted,
    #: or when the whole-pair strategy cannot attribute blame).
    blamed_pass: Optional[str] = None
    #: Number of leading *changed* pipeline steps whose effect was proved
    #: and kept.  Equal to :attr:`changed_steps` when fully validated.
    kept_prefix: int = 0
    #: Stepwise only: a checkpoint pair failed but the composed
    #: (original, final) query validated, so the full result was kept.
    whole_fallback: bool = False
    #: Computed/reused counters of the :class:`~repro.analysis.manager.AnalysisManager`
    #: this record's validations went through (``None`` without a manager).
    analysis_stats: Optional[Dict[str, int]] = None
    #: Chain-shared graph telemetry (``None`` when the record's queries
    #: were answered without building a chain graph — cache hits, the
    #: per-pair path, or non-stepwise strategies): versions hash-consed
    #: into the one graph, nodes built vs. the estimated 2×-per-pair
    #: construction baseline, normalization rounds/rule work of the single
    #: normalize run and how many per-pair normalizations it replaced.
    #: Deliberately *not* part of :meth:`signature` — chain graphs must
    #: never change what validation decides.
    chain_stats: Optional[Dict[str, int]] = None

    def signature(self) -> Dict[str, object]:
        """Everything about this record that validation *decided*.

        The deterministic verdict surface — name, per-pass changed flags,
        acceptance, reason, blame, kept prefix, fallback flag and per-pass
        verdicts — with the incidental measurements (elapsed wall-clock,
        cache provenance, analysis counters) excluded.  The sharded batch
        driver must reproduce the serial driver's signatures exactly; the
        parity tests and the CI shard guard compare these dicts.
        """
        return {
            "name": self.name,
            "strategy": self.strategy,
            "transformed_by": dict(self.transformed_by),
            "validated": self.validated,
            "reason": self.result.reason if self.result is not None else None,
            "blamed_pass": self.blamed_pass,
            "kept_prefix": self.kept_prefix,
            "whole_fallback": self.whole_fallback,
            "pass_verdicts": {name: (verdict.is_success, verdict.reason)
                              for name, verdict in self.pass_verdicts.items()},
        }

    @property
    def transformed(self) -> bool:
        """Was the function changed by at least one pass?"""
        return any(self.transformed_by.values())

    @property
    def changed_steps(self) -> int:
        """Number of pipeline steps that changed the function."""
        return sum(1 for changed in self.transformed_by.values() if changed)

    @property
    def validated(self) -> bool:
        """Did validation succeed (trivially true for untransformed functions)?"""
        if self.result is None:
            return not self.transformed
        return self.result.is_success

    @property
    def partially_kept(self) -> bool:
        """Was a non-empty, non-total validated prefix of the pipeline kept?

        The stepwise and bisect strategies both produce partial keeps: the
        function failed full validation, but the first ``kept_prefix``
        changed steps were proved (pair by pair, or by bisection probes
        against the original) and their partially optimized result kept
        instead of rolling all optimization back.
        """
        return not self.validated and self.kept_prefix > 0


@dataclass
class ValidationReport:
    """Validation outcomes for all functions of one module / benchmark run."""

    #: Label for the run (benchmark name, pipeline description, ...).
    label: str = ""
    records: List[FunctionRecord] = field(default_factory=list)
    #: Hit/miss/size counters of the :class:`ValidationCache` the run used
    #: (``None`` when no cache was involved).  With a shared batch cache
    #: these are the cache's cumulative counters at report-assembly time.
    cache_stats: Optional[Dict[str, int]] = None
    #: Computed/reused counters of the shared
    #: :class:`~repro.analysis.manager.AnalysisManager` (``None`` when the
    #: run did not use one).
    analysis_stats: Optional[Dict[str, int]] = None
    #: Scheduling counters of the batch driver (``None`` for serial
    #: per-function runs): ``executor`` (the backend name — ``"serial"``,
    #: ``"pool"`` or ``"wave"``), ``distinct_pairs`` (deduplicated queries
    #: this batch validated), ``pooled_pairs`` (work items that ran on the
    #: process pool), ``chain_items`` (packed chain work items),
    #: ``inline_validations`` (assembly-time queries, e.g. bisect probes),
    #: ``workers`` (pool width, ``0`` when everything ran in-process),
    #: ``waves`` / ``waves_cancelled`` / ``speculative_pairs_skipped``
    #: (wave backend: wave batches run, function-wave slots cancelled
    #: after a rejection, and planned pair queries never validated thanks
    #: to cancellation) and ``pool_degraded`` (pool failures that degraded
    #: execution to serial).  Incremental revalidation runs
    #: (:mod:`repro.validator.watch`) add ``pairs_skipped_unchanged``
    #: (adjacent pairs adopted from the previous run's plan/cache without
    #: re-validation) and ``subgraph_nodes_reused`` (retained chain-graph
    #: nodes the dirtied versions' rebuilds reached instead of
    #: re-creating).
    shard_stats: Optional[Dict[str, int]] = None

    def add(self, record: FunctionRecord) -> None:
        """Append one function record."""
        self.records.append(record)

    # -- aggregate counts -------------------------------------------------
    @property
    def total_functions(self) -> int:
        """Number of functions processed."""
        return len(self.records)

    @property
    def transformed_functions(self) -> int:
        """Number of functions changed by at least one pass."""
        return sum(1 for record in self.records if record.transformed)

    @property
    def validated_functions(self) -> int:
        """Number of *transformed* functions whose validation succeeded."""
        return sum(1 for record in self.records if record.transformed and record.validated)

    @property
    def rejected_functions(self) -> int:
        """Number of transformed functions the validator rejected (false alarms)."""
        return self.transformed_functions - self.validated_functions

    @property
    def validation_rate(self) -> float:
        """Fraction of transformed functions validated (1.0 when none transformed)."""
        if self.transformed_functions == 0:
            return 1.0
        return self.validated_functions / self.transformed_functions

    @property
    def total_time(self) -> float:
        """Validation wall-clock actually spent, in seconds.

        Cache-answered records carry a *copy* of the original validation's
        elapsed time; counting them would claim the cache saved nothing,
        so only freshly validated records contribute.
        """
        return sum(record.result.elapsed for record in self.records
                   if record.result is not None and not record.from_cache)

    @property
    def cache_hits(self) -> int:
        """Number of function records answered from a validation cache."""
        return sum(1 for record in self.records if record.from_cache)

    def engine_totals(self) -> Dict[str, int]:
        """Normalization-engine counters summed over the work performed.

        Aggregates the per-function :class:`NormalizationStats` the engine
        reported: rule invocations, worklist pushes, dispatch-index hits,
        rewrites, merges and iterations — the "is validator work
        proportional to optimizer work" telemetry.  Cache-answered records
        are excluded (their stats describe work done once elsewhere, not
        work done for this record), so the totals reflect what actually
        ran.
        """
        totals: Dict[str, int] = {}
        for record in self.records:
            if record.result is None or record.from_cache:
                continue
            for key, value in record.result.stats.items():
                totals[key] = totals.get(key, 0) + int(value)
            if record.chain_stats:
                # The chain-shared graph's work is carried on the record
                # (its per-pair results deliberately hold no stats, so
                # one normalization is never counted once per pair);
                # fold it into the same counters the per-pair path
                # reports so the two modes stay comparable.
                totals["rule_invocations"] = (totals.get("rule_invocations", 0)
                                              + record.chain_stats.get("chain_rule_invocations", 0))
                totals["nodes_built"] = (totals.get("nodes_built", 0)
                                         + record.chain_stats.get("chain_nodes_built", 0))
                totals["nodes_created"] = (totals.get("nodes_created", 0)
                                           + record.chain_stats.get("chain_nodes_created", 0))
                totals["normalize_runs"] = (totals.get("normalize_runs", 0)
                                            + record.chain_stats.get("chains", 0))
                # Incremental revalidation telemetry: chain nodes the
                # delta build re-read instead of rebuilding, and pairs
                # adopted from the previous run without any graph work.
                totals["subgraph_nodes_reused"] = (
                    totals.get("subgraph_nodes_reused", 0)
                    + record.chain_stats.get("chain_nodes_reused", 0))
                totals["pairs_skipped_unchanged"] = (
                    totals.get("pairs_skipped_unchanged", 0)
                    + record.chain_stats.get("chain_pairs_skipped", 0))
        totals["cache_hits"] = self.cache_hits
        return totals

    def chain_totals(self) -> Dict[str, int]:
        """Chain-shared graph counters summed over the records that used one.

        ``chains`` (graphs built), ``chain_versions`` (checkpoints
        hash-consed into them), ``chain_nodes_built`` vs.
        ``chain_pair_baseline_nodes`` (construction work against the
        estimated per-pair baseline), ``chain_rounds`` /
        ``chain_rule_invocations`` (the single normalize run's work),
        ``chain_normalizations_saved`` and ``chain_fallbacks``.
        """
        totals: Dict[str, int] = {}
        for record in self.records:
            if not record.chain_stats:
                continue
            for key, value in record.chain_stats.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals

    @property
    def partially_kept_functions(self) -> int:
        """Rejected functions that still kept a validated pipeline prefix."""
        return sum(1 for record in self.records if record.partially_kept)

    @property
    def kept_prefix_steps(self) -> int:
        """Changed pipeline steps kept across rejected functions.

        The optimization work the stepwise strategy salvaged: every one of
        these steps would have been rolled back by whole-pair validation.
        """
        return sum(record.kept_prefix for record in self.records
                   if record.partially_kept)

    def blame_histogram(self) -> Dict[str, int]:
        """How often each pass was blamed for a rejection."""
        histogram: Dict[str, int] = {}
        for record in self.records:
            if record.blamed_pass is not None:
                histogram[record.blamed_pass] = histogram.get(record.blamed_pass, 0) + 1
        return histogram

    def failures(self) -> List[FunctionRecord]:
        """Records of transformed functions that failed to validate."""
        return [r for r in self.records if r.transformed and not r.validated]

    def reasons_histogram(self) -> Dict[str, int]:
        """Histogram of failure reasons."""
        histogram: Dict[str, int] = {}
        for record in self.failures():
            reason = record.result.reason if record.result is not None else "not-run"
            histogram[reason] = histogram.get(reason, 0) + 1
        return histogram

    # -- rendering -------------------------------------------------------------
    def summary_line(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.label or 'run'}: {self.validated_functions}/{self.transformed_functions} "
            f"transformed functions validated "
            f"({self.validation_rate * 100.0:.1f}%), "
            f"{self.total_functions} functions total, "
            f"{self.total_time:.2f}s validation time"
        )

    def to_table_row(self) -> Dict[str, object]:
        """Row dict used by the benchmark harness table renderers."""
        return {
            "benchmark": self.label,
            "functions": self.total_functions,
            "transformed": self.transformed_functions,
            "validated": self.validated_functions,
            "rate": round(self.validation_rate * 100.0, 1),
            "time_s": round(self.total_time, 2),
        }


__all__ = ["FunctionRecord", "ValidationReport"]
