"""The content-addressed validation cache and its on-disk proof stores.

:class:`ValidationCache` memoizes validation verdicts by function-pair
*content*: the key is ``(original-hash, optimized-hash, rule-groups,
matcher, engine, max-iterations, recursion-limit)`` — everything a verdict
can depend on.  Two different functions with identical bodies share an
entry, so batch validation of a corpus full of near-duplicate traffic only
pays for the distinct pairs; stepwise validation feeds each adjacent
checkpoint pair through the same keying, so repeated single-pass effects
are also validated once.

On top of the in-memory map this module adds *persistent* proof stores
behind a pluggable backend seam:

``json`` (:class:`JsonStore`)
    The historical whole-file format: every entry is loaded eagerly at
    construction and :meth:`ValidationCache.save` rewrites the file
    atomically (temp file + rename, under an exclusive ``flock`` so
    concurrent savers merge instead of clobbering each other).

``sqlite`` (:class:`SqliteStore`)
    An incremental store for caches too large to (de)serialize per run:
    WAL-mode SQLite, entries faulted in **lazily** as :meth:`get` /
    :meth:`peek` ask for them, verdicts upserted in small batches as they
    arrive, and the ``max_bytes`` budget enforced by a least-recently-hit
    ``DELETE`` executed inside the database.  A one-shot migration from
    the JSON format is provided by :func:`migrate_json_to_sqlite` (also
    ``python -m repro.validator.cache migrate <dir>``).

Because keys are content hashes, a store survives across processes,
machines and repository checkouts: CI's warm run and repeated corpus
sweeps skip every previously proved pair.  Both loaders are tolerant by
design — a corrupted file, an unknown schema version or a malformed entry
is *ignored* (the cache starts cold), and any store fault mid-run degrades
to the in-memory tier: losing a cache can only cost time, trusting a
broken one could cost correctness.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import tempfile
from dataclasses import asdict, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

try:  # POSIX only; on platforms without flock JSON saves stay unlocked.
    import fcntl
except ImportError:  # pragma: no cover - exercised only off-POSIX
    fcntl = None  # type: ignore[assignment]

from ..analysis.manager import function_fingerprint
from ..ir.module import Function
from . import faults
from .config import CACHE_BACKENDS, ValidatorConfig
from .validate import UNCACHEABLE_REASONS, ValidationResult

#: Cache key: content hashes of both functions plus everything about the
#: configuration that can change a verdict.
CacheKey = Tuple[str, str, Tuple[str, ...], str, str, int, int]

#: On-disk schema version of the JSON format.  Bump whenever the key
#: derivation or the stored result format changes meaning; files with any
#: other version are ignored.
CACHE_SCHEMA = 1

#: SQLite schema version, kept in ``PRAGMA user_version``.  A mismatching
#: store is dropped and recreated cold, mirroring the JSON loader.
SQLITE_SCHEMA = 1

#: File name used when a JSON cache is given a directory instead of a file.
CACHE_FILE_NAME = "validation_cache.json"

#: File name used when a SQLite cache is given a directory.
SQLITE_FILE_NAME = "validation_cache.sqlite"

#: Address prefix selecting the served proof store as a cache "path":
#: ``remote://HOST:PORT`` points :class:`RemoteStore` at a running
#: :class:`~repro.validator.scheduler.remote.StealCoordinator`.
REMOTE_PREFIX = "remote://"

_SQLITE_SUFFIXES = (".sqlite", ".db")

#: Dirty entries buffered before the SQLite store flushes them in one
#: incremental upsert batch (verdicts stream to disk as they arrive
#: instead of in a single end-of-run rewrite).
_SQLITE_FLUSH_INTERVAL = 64

#: The :class:`ValidationResult` fields a cache entry round-trips.
_RESULT_FIELDS = ("function_name", "is_success", "reason", "elapsed",
                  "graph_nodes", "stats", "detail")


def _resolve_cache_path(path: Union[str, os.PathLike],
                        backend: str = "auto") -> Tuple[Path, str]:
    """Resolve a user-supplied cache location to ``(file path, backend)``.

    Explicit file suffixes select their format — a ``.json`` path is a
    JSON store, a ``.sqlite`` / ``.db`` path a SQLite one — regardless of
    ``backend``.  Anything else is treated as a *cache directory* (created
    on first write) holding the chosen backend's default file name; under
    ``"auto"`` an existing SQLite store (e.g. one produced by
    :func:`migrate_json_to_sqlite`) is preferred and the historical JSON
    file is the fallback, so seeds and existing workflows keep their
    behavior until a store is explicitly migrated.
    """
    resolved = Path(path)
    if resolved.suffix == ".json":
        return resolved, "json"
    if resolved.suffix in _SQLITE_SUFFIXES:
        return resolved, "sqlite"
    if backend == "json":
        return resolved / CACHE_FILE_NAME, "json"
    if backend == "sqlite":
        return resolved / SQLITE_FILE_NAME, "sqlite"
    sqlite_path = resolved / SQLITE_FILE_NAME
    if sqlite_path.exists():
        return sqlite_path, "sqlite"
    return resolved / CACHE_FILE_NAME, "json"


def _encode_key(key: CacheKey) -> str:
    """Serialize a cache key to a canonical JSON string."""
    fp_before, fp_after, groups, matcher, engine, max_iter, rec_limit = key
    return json.dumps(
        [fp_before, fp_after, list(groups), matcher, engine, max_iter, rec_limit],
        separators=(",", ":"))


def _decode_key(text: str) -> CacheKey:
    """Parse a serialized cache key; raises on any malformation."""
    fp_before, fp_after, groups, matcher, engine, max_iter, rec_limit = json.loads(text)
    if not (isinstance(fp_before, str) and isinstance(fp_after, str)
            and isinstance(groups, list) and isinstance(matcher, str)
            and isinstance(engine, str)):
        raise ValueError(f"malformed cache key {text!r}")
    return (fp_before, fp_after, tuple(str(g) for g in groups),
            matcher, engine, int(max_iter), int(rec_limit))


def _encode_result(result: ValidationResult) -> str:
    """Serialize the round-tripped fields of one result to JSON."""
    payload = {name: value for name, value in asdict(result).items()
               if name in _RESULT_FIELDS}
    return json.dumps(payload, sort_keys=True)


def _decode_result(payload: Dict[str, object]) -> ValidationResult:
    """Rebuild a :class:`ValidationResult` from its JSON dict; raises if bad."""
    kwargs = {name: payload[name] for name in _RESULT_FIELDS}
    result = ValidationResult(
        function_name=str(kwargs["function_name"]),
        is_success=bool(kwargs["is_success"]),
        reason=str(kwargs["reason"]),
        elapsed=float(kwargs["elapsed"]),
        graph_nodes=int(kwargs["graph_nodes"]),
        stats={str(k): int(v) for k, v in dict(kwargs["stats"]).items()},
        detail=str(kwargs["detail"]),
    )
    return result


class sidecar_flock:
    """Exclusive ``flock`` on a store's sidecar ``<name>.lock`` file.

    The one place the on-disk locking protocol lives: :class:`JsonStore`
    holds it across its read-merge-rewrite save sequence, and the
    coordinator-side :class:`~repro.validator.scheduler.remote.ServedStore`
    holds it while snapshotting a JSON store it is about to serve, so a
    concurrent saver and a coordinator never interleave a partial merge.
    The lock file sits beside the store and is **never deleted**:
    unlinking a lock file another process may be about to open would
    reintroduce exactly the race the lock exists to close.  On platforms
    without :mod:`fcntl` (or when the sidecar cannot be opened) the lock
    degrades to a no-op — :attr:`held` says which happened.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self._handle = None

    @property
    def held(self) -> bool:
        """Did :meth:`__enter__` actually take the lock?"""
        return self._handle is not None

    def __enter__(self) -> "sidecar_flock":
        if fcntl is None:
            return self
        try:
            handle = open(self.path.with_name(self.path.name + ".lock"), "a+")
        except OSError:
            return self
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        except OSError:
            handle.close()
            return self
        self._handle = handle
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()
        return False


class JsonStore:
    """The whole-file JSON proof store (the historical backend).

    Eager: every entry is parsed at :meth:`load` time and :meth:`save`
    rewrites the complete file.  The save sequence — read the file back,
    merge our entries over it, evict to budget, write a temp file, rename
    it into place — runs under an exclusive ``flock`` on a sibling
    ``.lock`` file, so two processes saving the same path serialize their
    merges instead of silently dropping each other's entries.  (The
    rename alone made a save atomic; the lock makes concurrent saves
    *lossless*.)  On platforms without :mod:`fcntl` the lock degrades to
    the historical unlocked behavior.
    """

    backend = "json"
    #: Eager stores materialize everything at open; the cache never
    #: faults entries from them lazily.
    eager = True

    def __init__(self, path: Path,
                 fault_plan: Optional[faults.FaultPlan] = None) -> None:
        self.path = path
        self.fault_plan = fault_plan
        #: Entries decoded on demand (always 0 for the eager backend).
        self.lazy_loads = 0
        #: Completed file writes.
        self.flushes = 0
        #: Store faults survived by degrading: whole-file saves that
        #: failed (the entries stay dirty in memory for the next save).
        self.errors = 0
        #: Flush attempts repeated after a transient failure (always 0
        #: here: the whole-file write has no retryable failure mode).
        self.retries = 0
        #: Serialized bytes read from / written to the file.
        self.bytes_read = 0
        self.bytes_written = 0

    def load(self) -> Dict[CacheKey, ValidationResult]:
        """Read every entry, tolerating all the ways the file can be bad."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        self.bytes_read += len(text)
        return _parse_cache_text(text)

    def fetch(self, key: CacheKey) -> Optional[ValidationResult]:
        """Eager backend: everything was loaded up front, nothing to fault."""
        return None

    def save(self, entries: Dict[CacheKey, ValidationResult],
             hit_stamp: Dict[CacheKey, int], max_bytes: int,
             ) -> Tuple[Dict[CacheKey, ValidationResult], int, int]:
        """Locked merge-and-rewrite; returns ``(merged, stored, evicted)``."""
        faults.maybe_fire(self.fault_plan, "cache-flush", detail=self.path.name)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with sidecar_flock(self.path):
            merged = self.load()
            merged.update(entries)
            evicted = 0
            if max_bytes:
                evicted = _evict_to_budget(merged, hit_stamp, max_bytes)
            payload = {
                "schema": CACHE_SCHEMA,
                "entries": {_encode_key(key): {name: value
                                               for name, value in asdict(result).items()
                                               if name in _RESULT_FIELDS}
                            for key, result in merged.items()},
            }
            text = json.dumps(payload, sort_keys=True) + "\n"
            fd, temp_name = tempfile.mkstemp(dir=str(self.path.parent),
                                             prefix=self.path.name, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(temp_name, self.path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            self.flushes += 1
            self.bytes_written += len(text)
            return merged, len(merged), evicted

    def close(self) -> None:
        pass


def _is_locked(error: BaseException) -> bool:
    """Is this the transient writer-contention error sqlite raises?

    Only ``database is locked`` / ``database is busy`` are worth a
    backoff — the lock holder is another flush and will be gone shortly.
    Every other store fault (corruption, full disk, schema trouble) is
    persistent and must degrade immediately.
    """
    return (isinstance(error, sqlite3.OperationalError)
            and ("locked" in str(error).lower()
                 or "busy" in str(error).lower()))


class SqliteStore:
    """Incremental WAL-mode SQLite proof store.

    Lazy: opening the store reads *nothing* but a row count; entries are
    faulted in one at a time as the cache asks for them, and dirty
    verdicts are upserted in small batches as they arrive.  WAL mode
    keeps concurrent readers unblocked while one writer commits, and a
    busy timeout serializes concurrent writers, so several sweeps can
    share one store.  The ``max_bytes`` budget is enforced *inside* the
    database: a windowed ``DELETE`` keeps the most-recently-hit entries
    whose cumulative logical size fits (the same per-entry footprint
    measure as the JSON budget, without the file envelope).

    Every fault — corruption discovered mid-run, a locked database that
    outlives the busy timeout, a full disk — permanently degrades the
    store to a no-op (``errors`` counts them) and the cache continues on
    its in-memory tier with identical verdicts and an unchanged hit/miss
    ledger.  A store that is *already* corrupt at open is discarded and
    recreated cold instead, mirroring the JSON loader's tolerance.
    """

    backend = "sqlite"
    eager = False

    def __init__(self, path: Path,
                 fault_plan: Optional[faults.FaultPlan] = None) -> None:
        self.path = path
        self.fault_plan = fault_plan
        self.lazy_loads = 0
        self.flushes = 0
        self.errors = 0
        #: Flush attempts repeated after a transient ``database is
        #: locked`` (the lock holder is another flush, gone within
        #: milliseconds — backing off briefly beats degrading).
        self.retries = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._conn: Optional[sqlite3.Connection] = None
        self._broken = False

    # -- connection management --------------------------------------------
    def _connection(self) -> Optional[sqlite3.Connection]:
        if self._broken:
            return None
        if self._conn is None:
            try:
                self._conn = self._open()
            except (sqlite3.Error, OSError, ValueError):
                # Pre-existing corruption: discard and start cold, like
                # the JSON loader.  If even a fresh store cannot be
                # opened, degrade to the in-memory tier.
                try:
                    self._discard_files()
                    self._conn = self._open()
                except (sqlite3.Error, OSError, ValueError):
                    self._give_up()
        return self._conn

    def _open(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=10.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version != SQLITE_SCHEMA:
                if version != 0:
                    conn.execute("DROP TABLE IF EXISTS entries")
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS entries ("
                    " key TEXT PRIMARY KEY,"
                    " payload TEXT NOT NULL,"
                    " size INTEGER NOT NULL,"
                    " last_hit INTEGER NOT NULL DEFAULT 0)")
                conn.execute("PRAGMA user_version = %d" % SQLITE_SCHEMA)
                conn.commit()
        except BaseException:
            conn.close()
            raise
        return conn

    def _discard_files(self) -> None:
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(str(self.path) + suffix)
            except OSError:
                pass

    def _give_up(self) -> None:
        """Degrade permanently to the in-memory tier (never an error)."""
        self._broken = True
        self.errors += 1
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    # -- store operations --------------------------------------------------
    def entry_count(self) -> int:
        conn = self._connection()
        if conn is None:
            return 0
        try:
            return int(conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0])
        except (sqlite3.Error, OSError):
            self._give_up()
            return 0

    def max_stamp(self) -> int:
        """Largest recency stamp on disk — new stamps continue above it."""
        conn = self._connection()
        if conn is None:
            return 0
        try:
            return int(conn.execute(
                "SELECT COALESCE(MAX(last_hit), 0) FROM entries").fetchone()[0])
        except (sqlite3.Error, OSError):
            self._give_up()
            return 0

    def fetch(self, key: CacheKey) -> Optional[ValidationResult]:
        """Fault one entry in from disk, or ``None`` (miss / degraded)."""
        conn = self._connection()
        if conn is None:
            return None
        try:
            row = conn.execute("SELECT payload FROM entries WHERE key = ?",
                               (_encode_key(key),)).fetchone()
        except (sqlite3.Error, OSError):
            self._give_up()
            return None
        if row is None:
            return None
        self.bytes_read += len(row[0])
        try:
            result = _decode_result(json.loads(row[0]))
        except (KeyError, TypeError, ValueError):
            return None  # one malformed entry never poisons the store
        self.lazy_loads += 1
        return result

    def upsert(self, items: Iterable[Tuple[CacheKey, ValidationResult]],
               hit_stamp: Dict[CacheKey, int]) -> int:
        """Incrementally write a batch of entries; returns entries written."""
        conn = self._connection()
        if conn is None:
            return 0
        rows = [(_encode_key(key), _encode_result(result),
                 _entry_size(key, result), hit_stamp.get(key, 0))
                for key, result in items]
        if not rows:
            return 0

        def attempt() -> None:
            faults.maybe_fire(self.fault_plan, "cache-flush",
                              detail=self.path.name)
            try:
                conn.executemany(
                    "INSERT OR REPLACE INTO entries"
                    " (key, payload, size, last_hit) VALUES (?, ?, ?, ?)",
                    rows)
                conn.commit()
            except BaseException:
                # A half-applied batch must not linger in the open
                # transaction across the backoff (or into _give_up).
                try:
                    conn.rollback()
                except sqlite3.Error:
                    pass
                raise

        def count_retry(attempt_number: int, error: BaseException) -> None:
            self.retries += 1

        # Imported here, not at module scope: the scheduler package pulls
        # this module in through its executors, so a top-level import
        # would be circular.  By the first flush both are fully loaded.
        from .scheduler.retry import LOCKED_FLUSH_RETRY, retry_call
        try:
            retry_call(attempt, policy=LOCKED_FLUSH_RETRY,
                       retry_if=_is_locked,
                       seed=getattr(self.fault_plan, "seed", 0),
                       on_retry=count_retry)
        except (sqlite3.Error, OSError):
            self._give_up()
            return 0
        self.flushes += 1
        self.bytes_written += sum(len(row[1]) for row in rows)
        return len(rows)

    def touch(self, hit_stamp: Dict[CacheKey, int]) -> None:
        """Refresh on-disk recency for entries this process consumed."""
        conn = self._connection()
        if conn is None or not hit_stamp:
            return
        rows = [(stamp, _encode_key(key), stamp)
                for key, stamp in hit_stamp.items()]
        try:
            conn.executemany(
                "UPDATE entries SET last_hit = ? WHERE key = ? AND last_hit < ?",
                rows)
            conn.commit()
        except (sqlite3.Error, OSError):
            self._give_up()

    def evict_to_budget(self, max_bytes: int) -> int:
        """Least-recently-hit eviction executed inside the database.

        Keeps the most-recently-hit entries whose cumulative logical
        footprint fits ``max_bytes`` (ties broken by serialized key, so
        eviction is deterministic) and deletes the rest in one windowed
        ``DELETE``.  Returns the number of entries dropped.
        """
        conn = self._connection()
        if conn is None:
            return 0
        try:
            total = int(conn.execute(
                "SELECT COALESCE(SUM(size), 0) FROM entries").fetchone()[0])
            if total <= max_bytes:
                return 0
            cursor = conn.execute(
                "DELETE FROM entries WHERE key IN ("
                " SELECT key FROM ("
                "  SELECT key, SUM(size) OVER ("
                "   ORDER BY last_hit DESC, key DESC"
                "   ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS running"
                "  FROM entries)"
                " WHERE running > ?)", (max(0, max_bytes),))
            conn.commit()
            return cursor.rowcount
        except (sqlite3.Error, OSError):
            self._give_up()
            return 0


class RemoteStore:
    """Proof-store client proxying to a coordinator's served store.

    The distributed counterpart of :class:`SqliteStore`: remote workers
    (and warm parent runs) point a cache at ``remote://HOST:PORT`` and
    consult the coordinator's *one* shared store instead of shipping
    cache state inside work payloads.  Traffic is batched — the planner
    calls :meth:`prefetch` once per work plan, so a whole batch's keys
    cost a single get round trip (counted in ``rpcs`` /
    ``batched_gets``) — and writes stay write-behind: the cache buffers
    dirty entries exactly as it does for sqlite and :meth:`upsert`
    ships each flush batch as one ``put`` RPC, retrying transient
    server-side ``database is locked`` replies under the shared
    :data:`~repro.validator.scheduler.retry.LOCKED_FLUSH_RETRY` policy.

    Degradation mirrors the disk stores: a rejected handshake or a
    twice-failed round trip permanently drops to the in-memory tier
    (``errors`` counts it) — losing the shared store can only cost
    re-validation, never correctness.  A coordinator restart between
    batches is *not* a degradation: every RPC retries one transparent
    reconnect first.
    """

    backend = "remote"
    eager = False

    def __init__(self, address: str,
                 fault_plan: Optional[faults.FaultPlan] = None) -> None:
        # Deferred: the scheduler package imports this module through
        # its executors, so a top-level import would be circular.
        from .scheduler import transport
        self._transport = transport
        if address.startswith(REMOTE_PREFIX):
            address = address[len(REMOTE_PREFIX):]
        self.address = address
        self.host, self.port = transport.split_address(address)
        self.fault_plan = fault_plan
        self.lazy_loads = 0
        self.flushes = 0
        self.errors = 0
        self.retries = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Round trips to the coordinator, all operations.
        self.rpcs = 0
        #: Round trips that were (batched) entry gets.
        self.get_rpcs = 0
        #: Keys requested through batched get round trips.
        self.batched_gets = 0
        self._sock: Optional[socket.socket] = None
        self._broken = False
        #: Keys the coordinator answered "absent" for: a later fetch of
        #: one is a local miss, never another round trip (the batch
        #: already asked).  A successful put clears its key.
        self._absent: set = set()

    # -- plumbing ----------------------------------------------------------
    def _connect(self) -> socket.socket:
        transport = self._transport
        sock = socket.create_connection((self.host, self.port), timeout=10.0)
        try:
            transport.send_frame(
                sock, ("hello", transport.TRANSPORT_SCHEMA,
                       transport.config_fingerprint(), "store"))
            reply = transport.recv_frame(sock)
        except BaseException:
            sock.close()
            raise
        if not (isinstance(reply, tuple) and reply and reply[0] == "welcome"):
            sock.close()
            raise transport.HandshakeError(
                f"served store rejected this client: {reply!r}")
        return sock

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _give_up(self) -> None:
        """Degrade permanently to the in-memory tier (never an error)."""
        self._broken = True
        self.errors += 1
        self._drop_socket()

    def _rpc(self, message: Tuple) -> Optional[Tuple]:
        """One round trip; ``None`` once degraded.

        A server-side transient (``database is locked``) comes back as
        an ``("err", ...)`` reply and is re-raised as the sqlite error
        it describes, so :meth:`upsert`'s retry policy treats wire and
        local contention identically.
        """
        if self._broken:
            return None
        transport = self._transport
        for attempt in (1, 2):
            try:
                if self._sock is None:
                    self._sock = self._connect()
                transport.send_frame(self._sock, message)
                reply = transport.recv_frame(self._sock)
            except transport.HandshakeError:
                self._give_up()
                return None
            except (transport.FrameError, OSError):
                # One transparent reconnect — the coordinator may have
                # restarted between batches.  A second failure degrades.
                self._drop_socket()
                if attempt == 2:
                    self._give_up()
                    return None
                continue
            self.rpcs += 1
            if isinstance(reply, tuple) and reply and reply[0] == "err":
                detail = str(reply[1])
                if "locked" in detail.lower() or "busy" in detail.lower():
                    raise sqlite3.OperationalError(detail)
                self._give_up()
                return None
            return reply
        return None

    def _read_rpc(self, message: Tuple) -> Optional[Tuple]:
        """An RPC whose locked replies are misses, not retry candidates."""
        try:
            return self._rpc(message)
        except sqlite3.OperationalError:
            return None

    # -- store operations --------------------------------------------------
    def entry_count(self) -> int:
        reply = self._read_rpc(("count",))
        return int(reply[1]) if reply else 0

    def max_stamp(self) -> int:
        reply = self._read_rpc(("maxstamp",))
        return int(reply[1]) if reply else 0

    def _get_batch(self, texts: Dict[str, CacheKey]
                   ) -> Dict[CacheKey, ValidationResult]:
        reply = self._read_rpc(("get", list(texts)))
        if reply is None or reply[0] != "entries":
            return {}
        self.get_rpcs += 1
        self.batched_gets += len(texts)
        entries = reply[1]
        found: Dict[CacheKey, ValidationResult] = {}
        for text, key in texts.items():
            payload = entries.get(text)
            if payload is None:
                self._absent.add(text)
                continue
            self.bytes_read += len(payload)
            try:
                result = _decode_result(json.loads(payload))
            except (KeyError, TypeError, ValueError):
                self._absent.add(text)
                continue
            self.lazy_loads += 1
            found[key] = result
        return found

    def fetch(self, key: CacheKey) -> Optional[ValidationResult]:
        """Fault one entry in over the wire, or ``None`` (miss / degraded)."""
        text = _encode_key(key)
        if text in self._absent:
            return None
        return self._get_batch({text: key}).get(key)

    def prefetch(self, keys: Iterable[CacheKey]
                 ) -> Dict[CacheKey, ValidationResult]:
        """Fault a whole plan's keys in with one batched round trip."""
        texts: Dict[str, CacheKey] = {}
        for key in keys:
            text = _encode_key(key)
            if text not in self._absent and text not in texts:
                texts[text] = key
        if not texts:
            return {}
        return self._get_batch(texts)

    def upsert(self, items: Iterable[Tuple[CacheKey, ValidationResult]],
               hit_stamp: Dict[CacheKey, int]) -> int:
        """Ship a flush batch as one ``put`` RPC; returns entries stored."""
        rows = [(_encode_key(key), _encode_result(result),
                 int(hit_stamp.get(key, 0)))
                for key, result in items]
        if not rows or self._broken:
            return 0

        def attempt() -> int:
            reply = self._rpc(("put", rows))
            return int(reply[1]) if reply else 0

        def count_retry(attempt_number: int, error: BaseException) -> None:
            self.retries += 1

        from .scheduler.retry import LOCKED_FLUSH_RETRY, retry_call
        try:
            stored = retry_call(attempt, policy=LOCKED_FLUSH_RETRY,
                                retry_if=_is_locked,
                                seed=getattr(self.fault_plan, "seed", 0),
                                on_retry=count_retry)
        except (sqlite3.Error, OSError):
            self._give_up()
            return 0
        if stored:
            self.flushes += 1
            self.bytes_written += sum(len(row[1]) for row in rows)
            for row in rows:
                self._absent.discard(row[0])
        return stored

    def touch(self, hit_stamp: Dict[CacheKey, int]) -> None:
        """Refresh served-store recency for entries this process consumed."""
        if not hit_stamp:
            return
        rows = [(_encode_key(key), int(stamp))
                for key, stamp in hit_stamp.items()]
        self._read_rpc(("touch", rows))  # recency is advisory

    def evict_to_budget(self, max_bytes: int) -> int:
        reply = self._read_rpc(("evict", int(max_bytes)))
        return int(reply[1]) if reply else 0

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._transport.send_frame(self._sock, ("bye",))
            except (OSError, RuntimeError):
                pass
            self._drop_socket()


class ValidationCache:
    """Memoizes validation results by function-pair content.

    Parameters
    ----------
    path:
        Optional persistence location — a directory, a ``.json`` file or
        a ``.sqlite`` / ``.db`` file.  When given, a proof store opens
        behind the in-memory map: the JSON backend loads everything
        immediately, the SQLite backend faults entries in lazily as
        :meth:`get` / :meth:`peek` ask for them.  Loading is fully
        tolerant: corruption, schema mismatches, malformed entries and
        mid-run store faults are absorbed (the affected entries simply
        cost a re-validation), never raised.
    max_bytes:
        Size budget for the serialized store (``0`` = unbounded, the
        historical behavior).  When exceeded at save time, entries are
        evicted **least-recently-hit first** — recency is tracked across
        :meth:`get` hits and :meth:`put` stores; entries never consumed
        rank oldest, tie-broken deterministically by serialized key.
        Eviction can only cost re-validation time, never correctness.
    backend:
        ``"auto"`` (default), ``"json"`` or ``"sqlite"``.  Explicit file
        suffixes in ``path`` win; for a cache directory, ``"auto"``
        prefers an existing SQLite store and falls back to JSON.  The
        backend is a persistence knob like ``path`` itself: it is *not*
        part of the cache key, and both backends store byte-identical
        verdicts.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None,
                 max_bytes: int = 0, backend: str = "auto",
                 fault_plan: Optional[faults.FaultPlan] = None) -> None:
        if backend not in CACHE_BACKENDS:
            raise ValueError(
                f"unknown cache backend {backend!r}; expected one of {CACHE_BACKENDS}")
        self._results: Dict[CacheKey, ValidationResult] = {}
        #: Number of lookups answered from the cache.
        self.hits = 0
        #: Number of lookups that had to validate.
        self.misses = 0
        #: Entries available from the store at construction time.
        self.loaded = 0
        #: Entries held by the store after the most recent :meth:`save`.
        self.stored = 0
        #: Entries dropped by the ``max_bytes`` budget across all saves.
        self.evicted = 0
        #: Size budget for the serialized store (0 = unbounded).
        self.max_bytes = max_bytes
        #: Resolved persistence file, or ``None`` for an in-memory cache.
        self.path: Optional[Path] = None
        #: Resolved backend name: ``"memory"``, ``"json"``, ``"sqlite"``
        #: or ``"remote"`` (a ``remote://HOST:PORT`` path — the served
        #: proof store of a running steal coordinator).
        self.backend = "memory"
        self._store: Optional[Union[JsonStore, SqliteStore, RemoteStore]] = None
        self._dirty = False
        #: Dirty keys awaiting an incremental flush (lazy backends only),
        #: in insertion order.
        self._pending: Dict[CacheKey, None] = {}
        #: Monotonic recency stamps: key -> last hit/store tick.
        self._hit_stamp: Dict[CacheKey, int] = {}
        self._tick = 0
        if isinstance(path, str) and path.startswith(REMOTE_PREFIX):
            self.backend = "remote"
            self._store = RemoteStore(path, fault_plan=fault_plan)
            self.loaded = self._store.entry_count()
            self._tick = self._store.max_stamp()
        elif path is not None:
            file_path, resolved = _resolve_cache_path(path, backend)
            self.path = file_path
            self.backend = resolved
            self._store = (JsonStore(file_path, fault_plan=fault_plan)
                           if resolved == "json"
                           else SqliteStore(file_path, fault_plan=fault_plan))
            if self._store.eager:
                self._results.update(self._store.load())
                self.loaded = len(self._results)
            else:
                self.loaded = self._store.entry_count()
                # Continue recency above what is already on disk so this
                # run's hits outrank every earlier run's at eviction time.
                self._tick = self._store.max_stamp()

    def __len__(self) -> int:
        return len(self._results)

    @property
    def persistent(self) -> bool:
        """Does this cache have an on-disk (or served) backend?"""
        return self.path is not None or self._store is not None

    def key(self, before: Function, after: Function,
            config: ValidatorConfig) -> CacheKey:
        """The cache key for one validation query."""
        return self.key_for(function_fingerprint(before),
                            function_fingerprint(after), config)

    @staticmethod
    def key_for(fingerprint_before: str, fingerprint_after: str,
                config: ValidatorConfig) -> CacheKey:
        """The cache key for a pair of precomputed content fingerprints.

        The batch driver fingerprints every pipeline checkpoint exactly
        once and derives all of its pair keys from those, instead of
        re-printing each function per adjacent pair.
        """
        return (
            fingerprint_before,
            fingerprint_after,
            tuple(config.rule_groups),
            config.matcher,
            config.engine,
            config.max_iterations,
            config.recursion_limit,
        )

    def prefetch(self, keys: Iterable[CacheKey]) -> int:
        """Batch-fault ``keys`` from a lazy store in one round trip.

        A no-op (returning 0) unless the store implements batched gets
        — today only the ``remote`` backend does.  The planner calls
        this once per work plan, so a remote proof store answers a
        whole batch's :meth:`peek` traffic with a single get RPC
        instead of one round trip per key; for every other backend the
        per-key :meth:`peek` path is untouched.  Returns the number of
        entries faulted in.
        """
        if self._store is None or self._store.eager:
            return 0
        batched = getattr(self._store, "prefetch", None)
        if batched is None:
            return 0
        missing = [key for key in dict.fromkeys(keys)
                   if key not in self._results]
        if not missing:
            return 0
        found = batched(missing)
        self._results.update(found)
        return len(found)

    def peek(self, key: CacheKey) -> Optional[ValidationResult]:
        """The stored result for ``key`` (no hit/miss accounting).

        Lazy backends fault the entry in from disk on first sight; once
        faulted it lives in the in-memory tier like any other entry.
        """
        result = self._results.get(key)
        if result is None and self._store is not None and not self._store.eager:
            result = self._store.fetch(key)
            if result is not None:
                self._results[key] = result
        return result

    def get(self, key: CacheKey, function_name: str) -> Optional[ValidationResult]:
        """A cached result renamed for ``function_name``, or ``None``."""
        cached = self.peek(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(key)
        return replace(cached, function_name=function_name)

    def put(self, key: CacheKey, result: ValidationResult) -> None:
        """Store one validation outcome.

        Synthetic denials (budget, timeout, quarantine) are silently
        refused: they say nothing about the pair's semantics, and a
        cached one would survive into runs whose budgets could afford
        the real answer.  The executors route them around the cache
        already; this guard is the backstop that makes poisoning
        *impossible*, not merely avoided.
        """
        if result.reason in UNCACHEABLE_REASONS:
            return
        self._results[key] = result
        self._touch(key)
        self._dirty = True
        if self._store is not None and not self._store.eager:
            self._pending[key] = None
            if len(self._pending) >= _SQLITE_FLUSH_INTERVAL:
                self._flush_pending()

    def _touch(self, key: CacheKey) -> None:
        self._tick += 1
        self._hit_stamp[key] = self._tick

    def _flush_pending(self) -> None:
        if not self._pending or self._store is None:
            return
        self._store.upsert(((key, self._results[key]) for key in self._pending),
                           self._hit_stamp)
        self._pending.clear()

    def merge(self, other: "ValidationCache") -> int:
        """Adopt every entry of ``other`` this cache does not hold yet.

        Returns the number of entries adopted.  Existing entries win (both
        sides describe the same content-addressed verdict, so which copy
        survives is immaterial; keeping ours avoids churn).
        """
        added = 0
        for key, result in other._results.items():
            if key not in self._results:
                self._results[key] = result
                if self._store is not None and not self._store.eager:
                    self._pending[key] = None
                added += 1
        if added:
            self._dirty = True
        return added

    # -- persistence -------------------------------------------------------
    def save(self, path: Optional[Union[str, os.PathLike]] = None) -> int:
        """Persist the cache; returns the store's entry count afterwards.

        JSON saves are atomic (temp file + rename), *merging* (entries
        another process stored since we loaded are re-read and kept) and
        serialized against concurrent savers by an exclusive lock.
        SQLite saves flush the remaining dirty entries incrementally,
        refresh recency stamps and enforce the byte budget in SQL.  An
        explicit ``path`` writes a one-shot copy to that location (its
        suffix selects the format) without rebinding the cache.  With no
        ``path`` and no construction-time store this is a no-op
        returning ``0``.
        """
        if path is not None:
            target, resolved = _resolve_cache_path(path, "auto")
            if target != self.path:
                return self._save_one_shot(target, resolved)
        if self._store is None:
            return 0
        if self._store.eager:
            try:
                merged, stored, evicted = self._store.save(
                    self._results, self._hit_stamp, self.max_bytes)
            except OSError:
                # A failed whole-file write (full disk, permissions)
                # costs persistence, never correctness: the in-memory
                # tier keeps serving, the entries stay dirty, and the
                # next save retries the write.
                self._store.errors += 1
                return len(self._results)
            self._results = merged
            self.evicted += evicted
            self.stored = stored
        else:
            self._flush_pending()
            self._store.touch(self._hit_stamp)
            if self.max_bytes:
                self.evicted += self._store.evict_to_budget(self.max_bytes)
            self.stored = self._store.entry_count()
        self._dirty = False
        return self.stored

    def _save_one_shot(self, target: Path, backend: str) -> int:
        store = JsonStore(target) if backend == "json" else SqliteStore(target)
        try:
            if isinstance(store, JsonStore):
                merged, stored, evicted = store.save(
                    dict(self._results), self._hit_stamp, self.max_bytes)
            else:
                store.upsert(self._results.items(), self._hit_stamp)
                evicted = (store.evict_to_budget(self.max_bytes)
                           if self.max_bytes else 0)
                stored = store.entry_count()
        finally:
            store.close()
        self.evicted += evicted
        self.stored = stored
        self._dirty = False
        return stored

    def save_if_dirty(self) -> int:
        """Persist only when persistent and changed since load/last save."""
        if self.persistent and self._dirty:
            return self.save()
        return 0

    def close(self) -> None:
        """Release the store's resources (idempotent; in-memory: no-op)."""
        if self._store is not None:
            self._store.close()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters as a plain dict (for reports).

        Persistent caches additionally report how many entries the proof
        store held at open (``disk_loaded``), how many it held after the
        last save (``disk_stored``), how many the ``max_bytes`` budget
        evicted across saves (``disk_evicted``), and the per-backend
        plumbing: entries faulted in lazily (``store_lazy_loads``),
        completed incremental/whole-file writes (``store_flushes``),
        faults absorbed by degrading to the in-memory tier
        (``store_errors``) and serialized payload traffic
        (``store_bytes_read`` / ``store_bytes_written``).
        """
        counters = {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._results)}
        if self._store is not None:
            counters["disk_loaded"] = self.loaded
            counters["disk_stored"] = self.stored
            counters["disk_evicted"] = self.evicted
            counters["store_lazy_loads"] = self._store.lazy_loads
            counters["store_flushes"] = self._store.flushes
            counters["store_errors"] = self._store.errors
            counters["store_retries"] = self._store.retries
            counters["store_bytes_read"] = self._store.bytes_read
            counters["store_bytes_written"] = self._store.bytes_written
            # Remote-backend round-trip accounting (absent elsewhere).
            for extra in ("rpcs", "get_rpcs", "batched_gets"):
                value = getattr(self._store, extra, None)
                if value is not None:
                    counters[f"store_{extra}"] = value
        return counters


#: Fixed JSON envelope :meth:`JsonStore.save` writes around the entries
#: map — ``{"entries": {`` … ``}, "schema": N}`` plus the trailing newline
#: — charged against the byte budget so the *file* fits it.
_FILE_ENVELOPE = 32


def _entry_size(key: CacheKey, result: ValidationResult) -> int:
    """Serialized footprint of one entry (key, payload, JSON punctuation).

    Measured in *file* bytes: the encoded key lands on disk as a JSON
    string — its many embedded quotes escape to two bytes each — so it
    is sized through ``json.dumps``, not ``len`` of the raw string; the
    ``+ 4`` covers the ``": "`` joining key and payload and the ``", "``
    chaining entries.  Both backends charge this same logical measure
    against ``max_bytes``, so a budget means the same thing whichever
    store enforces it.
    """
    return (len(json.dumps(_encode_key(key)))
            + len(_encode_result(result)) + 4)


def _evict_to_budget(entries: Dict[CacheKey, ValidationResult],
                     hit_stamp: Dict[CacheKey, int], max_bytes: int) -> int:
    """Drop least-recently-hit entries until the saved file fits ``max_bytes``.

    Entries this process never touched (loaded from disk or merged from a
    concurrent writer) have no stamp and rank oldest, tie-broken by their
    serialized key so eviction is deterministic.  Returns the number of
    entries dropped; ``entries`` is mutated in place.
    """
    budget = max(0, max_bytes - _FILE_ENVELOPE)
    sizes = {key: _entry_size(key, result) for key, result in entries.items()}
    total = sum(sizes.values())
    if total <= budget:
        return 0
    victims = sorted(entries,
                     key=lambda key: (hit_stamp.get(key, 0), _encode_key(key)))
    dropped = 0
    for key in victims:
        if total <= budget:
            break
        total -= sizes[key]
        del entries[key]
        dropped += 1
    return dropped


def _parse_cache_text(text: str) -> Dict[CacheKey, ValidationResult]:
    """Decode a JSON cache file body, tolerating every malformation.

    Invalid JSON, wrong top-level shape or a schema-version mismatch all
    yield an empty dict; individually malformed entries are skipped
    without poisoning their neighbours.
    """
    try:
        payload = json.loads(text)
    except ValueError:
        return {}
    if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
        return {}
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        return {}
    results: Dict[CacheKey, ValidationResult] = {}
    for key_text, result_payload in entries.items():
        try:
            results[_decode_key(key_text)] = _decode_result(result_payload)
        except (KeyError, TypeError, ValueError):
            continue
    return results


def _read_cache_file(path: Path) -> Dict[CacheKey, ValidationResult]:
    """Load entries from ``path``, tolerating every way the file can be bad."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return {}
    return _parse_cache_text(text)


def migrate_json_to_sqlite(path: Union[str, os.PathLike],
                           *, dry_run: bool = False) -> Tuple[int, int, Path]:
    """Idempotent JSON → SQLite proof-store migration.

    Reads the JSON cache at ``path`` (a cache directory or a ``.json``
    file) and upserts every entry the SQLite store beside it does not
    already hold; the JSON file is left untouched, so the migration is
    safely retryable and reversible by deletion.  Re-running against an
    already-migrated path is a counted no-op: existing keys are skipped,
    not rewritten, and nothing errors.  Once the SQLite file exists,
    ``backend="auto"`` prefers it.  With ``dry_run=True`` nothing is
    written (and an absent store is not created) — the counts report
    what a real run would do.  Returns ``(migrated, skipped, sqlite
    path)``; an empty or unreadable source migrates 0 entries but still
    creates the (empty) store unless ``dry_run``.
    """
    source, _ = _resolve_cache_path(path, "json")
    entries = _read_cache_file(source)
    target = source.with_suffix(".sqlite")
    if dry_run and not target.exists():
        # Nothing to compare against: every source entry would migrate.
        return len(entries), 0, target
    store = SqliteStore(target)
    try:
        fresh = {key: result for key, result in entries.items()
                 if store.fetch(key) is None}
        skipped = len(entries) - len(fresh)
        if dry_run:
            return len(fresh), skipped, target
        migrated = store.upsert(fresh.items(), {}) if fresh else 0
        if not entries:
            store.entry_count()  # force creation of the empty store
    finally:
        store.close()
    return migrated, skipped, target


def _main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.validator.cache",
        description="Proof-store maintenance for the validation cache.")
    commands = parser.add_subparsers(dest="command", required=True)
    migrate = commands.add_parser(
        "migrate", help="idempotent JSON -> SQLite migration of a cache path")
    migrate.add_argument("path", help="cache directory or .json cache file")
    migrate.add_argument("--dry-run", action="store_true",
                         help="report what would migrate without writing")
    args = parser.parse_args(argv)
    migrated, skipped, target = migrate_json_to_sqlite(
        args.path, dry_run=args.dry_run)
    verb = "would migrate" if args.dry_run else "migrated"
    suffix = f" ({skipped} already present)" if skipped else ""
    print(f"{verb} {migrated} entries to {target}{suffix}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(_main())


__all__ = [
    "CacheKey",
    "CACHE_SCHEMA",
    "SQLITE_SCHEMA",
    "CACHE_FILE_NAME",
    "SQLITE_FILE_NAME",
    "CACHE_BACKENDS",
    "REMOTE_PREFIX",
    "JsonStore",
    "SqliteStore",
    "RemoteStore",
    "sidecar_flock",
    "ValidationCache",
    "migrate_json_to_sqlite",
]
