"""The content-addressed validation cache and its on-disk backend.

:class:`ValidationCache` memoizes validation verdicts by function-pair
*content*: the key is ``(original-hash, optimized-hash, rule-groups,
matcher, engine, max-iterations, recursion-limit)`` — everything a verdict
can depend on.  Two different functions with identical bodies share an
entry, so batch validation of a corpus full of near-duplicate traffic only
pays for the distinct pairs; stepwise validation feeds each adjacent
checkpoint pair through the same keying, so repeated single-pass effects
are also validated once.

On top of the in-memory map this module adds a *persistent* backend: a
cache constructed with a ``path`` loads previously proved pairs from a
versioned JSON file and :meth:`ValidationCache.save` writes them back
(atomically, merging with whatever another process stored in the
meantime).  Because keys are content hashes, a cache file survives across
processes, machines and repository checkouts: CI's warm run and repeated
corpus sweeps skip every previously proved pair.  The loader is tolerant
by design — a corrupted file, an unknown schema version or a malformed
entry is *ignored* (the cache starts cold), never an error: losing a cache
can only cost time, trusting a broken one could cost correctness.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..analysis.manager import function_fingerprint
from ..ir.module import Function
from .config import ValidatorConfig
from .validate import ValidationResult

#: Cache key: content hashes of both functions plus everything about the
#: configuration that can change a verdict.
CacheKey = Tuple[str, str, Tuple[str, ...], str, str, int, int]

#: On-disk schema version.  Bump whenever the key derivation or the stored
#: result format changes meaning; files with any other version are ignored.
CACHE_SCHEMA = 1

#: File name used when a cache is given a directory instead of a file.
CACHE_FILE_NAME = "validation_cache.json"

#: The :class:`ValidationResult` fields a cache entry round-trips.
_RESULT_FIELDS = ("function_name", "is_success", "reason", "elapsed",
                  "graph_nodes", "stats", "detail")


def _resolve_cache_path(path: Union[str, os.PathLike]) -> Path:
    """Resolve a user-supplied cache location to a concrete file path.

    A path with a ``.json`` suffix is used as-is; anything else is treated
    as a *cache directory* (created on save) holding the default file name,
    which is what the drivers' ``config.cache_dir`` passes.
    """
    resolved = Path(path)
    if resolved.suffix == ".json":
        return resolved
    return resolved / CACHE_FILE_NAME


def _encode_key(key: CacheKey) -> str:
    """Serialize a cache key to a canonical JSON string."""
    fp_before, fp_after, groups, matcher, engine, max_iter, rec_limit = key
    return json.dumps(
        [fp_before, fp_after, list(groups), matcher, engine, max_iter, rec_limit],
        separators=(",", ":"))


def _decode_key(text: str) -> CacheKey:
    """Parse a serialized cache key; raises on any malformation."""
    fp_before, fp_after, groups, matcher, engine, max_iter, rec_limit = json.loads(text)
    if not (isinstance(fp_before, str) and isinstance(fp_after, str)
            and isinstance(groups, list) and isinstance(matcher, str)
            and isinstance(engine, str)):
        raise ValueError(f"malformed cache key {text!r}")
    return (fp_before, fp_after, tuple(str(g) for g in groups),
            matcher, engine, int(max_iter), int(rec_limit))


def _decode_result(payload: Dict[str, object]) -> ValidationResult:
    """Rebuild a :class:`ValidationResult` from its JSON dict; raises if bad."""
    kwargs = {name: payload[name] for name in _RESULT_FIELDS}
    result = ValidationResult(
        function_name=str(kwargs["function_name"]),
        is_success=bool(kwargs["is_success"]),
        reason=str(kwargs["reason"]),
        elapsed=float(kwargs["elapsed"]),
        graph_nodes=int(kwargs["graph_nodes"]),
        stats={str(k): int(v) for k, v in dict(kwargs["stats"]).items()},
        detail=str(kwargs["detail"]),
    )
    return result


class ValidationCache:
    """Memoizes validation results by function-pair content.

    Parameters
    ----------
    path:
        Optional persistence location — a directory (gets
        ``validation_cache.json`` inside it) or a ``.json`` file path.
        When given, previously stored entries are loaded immediately and
        :meth:`save` writes the current contents back.  Loading is fully
        tolerant: corruption, schema mismatches and malformed entries are
        silently discarded.
    max_bytes:
        Size budget for the serialized file (``0`` = unbounded, the
        historical behavior).  When the budget is exceeded at save time,
        entries are evicted **least-recently-hit first** — recency is
        tracked per process across :meth:`get` hits and :meth:`put`
        stores; entries merely loaded from disk (or merged in from a
        concurrent writer) and never consumed rank oldest, in
        deterministic key order.  Eviction can only cost re-validation
        time, never correctness.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None,
                 max_bytes: int = 0) -> None:
        self._results: Dict[CacheKey, ValidationResult] = {}
        #: Number of lookups answered from the cache.
        self.hits = 0
        #: Number of lookups that had to validate.
        self.misses = 0
        #: Entries read from disk at construction time.
        self.loaded = 0
        #: Entries written by the most recent :meth:`save`.
        self.stored = 0
        #: Entries dropped by the ``max_bytes`` budget across all saves.
        self.evicted = 0
        #: Size budget for the serialized file (0 = unbounded).
        self.max_bytes = max_bytes
        #: Resolved persistence file, or ``None`` for an in-memory cache.
        self.path: Optional[Path] = _resolve_cache_path(path) if path is not None else None
        self._dirty = False
        #: Monotonic recency stamps: key -> last hit/store tick.
        self._hit_stamp: Dict[CacheKey, int] = {}
        self._tick = 0
        if self.path is not None:
            self._results.update(_read_cache_file(self.path))
            self.loaded = len(self._results)

    def __len__(self) -> int:
        return len(self._results)

    @property
    def persistent(self) -> bool:
        """Does this cache have an on-disk backend?"""
        return self.path is not None

    def key(self, before: Function, after: Function,
            config: ValidatorConfig) -> CacheKey:
        """The cache key for one validation query."""
        return self.key_for(function_fingerprint(before),
                            function_fingerprint(after), config)

    @staticmethod
    def key_for(fingerprint_before: str, fingerprint_after: str,
                config: ValidatorConfig) -> CacheKey:
        """The cache key for a pair of precomputed content fingerprints.

        The batch driver fingerprints every pipeline checkpoint exactly
        once and derives all of its pair keys from those, instead of
        re-printing each function per adjacent pair.
        """
        return (
            fingerprint_before,
            fingerprint_after,
            tuple(config.rule_groups),
            config.matcher,
            config.engine,
            config.max_iterations,
            config.recursion_limit,
        )

    def peek(self, key: CacheKey) -> Optional[ValidationResult]:
        """The stored result for ``key`` (no hit/miss accounting)."""
        return self._results.get(key)

    def get(self, key: CacheKey, function_name: str) -> Optional[ValidationResult]:
        """A cached result renamed for ``function_name``, or ``None``."""
        cached = self._results.get(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(key)
        return replace(cached, function_name=function_name)

    def put(self, key: CacheKey, result: ValidationResult) -> None:
        """Store one validation outcome."""
        self._results[key] = result
        self._touch(key)
        self._dirty = True

    def _touch(self, key: CacheKey) -> None:
        self._tick += 1
        self._hit_stamp[key] = self._tick

    def merge(self, other: "ValidationCache") -> int:
        """Adopt every entry of ``other`` this cache does not hold yet.

        Returns the number of entries adopted.  Existing entries win (both
        sides describe the same content-addressed verdict, so which copy
        survives is immaterial; keeping ours avoids churn).
        """
        added = 0
        for key, result in other._results.items():
            if key not in self._results:
                self._results[key] = result
                added += 1
        if added:
            self._dirty = True
        return added

    # -- persistence -------------------------------------------------------
    def save(self, path: Optional[Union[str, os.PathLike]] = None) -> int:
        """Write the cache to disk; returns the number of entries written.

        The write is atomic (temp file + rename) and *merging*: entries
        another process stored since we loaded are re-read and kept, so
        concurrent corpus sweeps sharing one cache directory can only grow
        it.  With no ``path`` and no construction-time path this is a
        no-op returning ``0``.
        """
        target = _resolve_cache_path(path) if path is not None else self.path
        if target is None:
            return 0
        merged = _read_cache_file(target)
        merged.update(self._results)
        if self.max_bytes:
            self.evicted += _evict_to_budget(merged, self._hit_stamp, self.max_bytes)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "entries": {_encode_key(key): {name: value
                                           for name, value in asdict(result).items()
                                           if name in _RESULT_FIELDS}
                        for key, result in merged.items()},
        }
        fd, temp_name = tempfile.mkstemp(dir=str(target.parent),
                                         prefix=target.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.write("\n")
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._results = merged
        self.stored = len(merged)
        self._dirty = False
        return self.stored

    def save_if_dirty(self) -> int:
        """Persist only when persistent and changed since load/last save."""
        if self.path is not None and self._dirty:
            return self.save()
        return 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters as a plain dict (for reports).

        Persistent caches additionally report how many entries the disk
        backend contributed (``disk_loaded``), how many the last save
        wrote back (``disk_stored``) and how many the ``max_bytes``
        budget evicted across saves (``disk_evicted``).
        """
        counters = {"hits": self.hits, "misses": self.misses,
                    "entries": len(self._results)}
        if self.path is not None:
            counters["disk_loaded"] = self.loaded
            counters["disk_stored"] = self.stored
            counters["disk_evicted"] = self.evicted
        return counters


#: Fixed JSON envelope :meth:`ValidationCache.save` writes around the
#: entries map — ``{"entries": {`` … ``}, "schema": N}`` plus the trailing
#: newline — charged against the byte budget so the *file* fits it.
_FILE_ENVELOPE = 32


def _entry_size(key: CacheKey, result: ValidationResult) -> int:
    """Serialized footprint of one entry (key, payload, JSON punctuation).

    Measured in *file* bytes: the encoded key lands on disk as a JSON
    string — its many embedded quotes escape to two bytes each — so it
    is sized through ``json.dumps``, not ``len`` of the raw string; the
    ``+ 4`` covers the ``": "`` joining key and payload and the ``", "``
    chaining entries.
    """
    payload = {name: value for name, value in asdict(result).items()
               if name in _RESULT_FIELDS}
    return (len(json.dumps(_encode_key(key)))
            + len(json.dumps(payload, sort_keys=True)) + 4)


def _evict_to_budget(entries: Dict[CacheKey, ValidationResult],
                     hit_stamp: Dict[CacheKey, int], max_bytes: int) -> int:
    """Drop least-recently-hit entries until the saved file fits ``max_bytes``.

    Entries this process never touched (loaded from disk or merged from a
    concurrent writer) have no stamp and rank oldest, tie-broken by their
    serialized key so eviction is deterministic.  Returns the number of
    entries dropped; ``entries`` is mutated in place.
    """
    budget = max(0, max_bytes - _FILE_ENVELOPE)
    sizes = {key: _entry_size(key, result) for key, result in entries.items()}
    total = sum(sizes.values())
    if total <= budget:
        return 0
    victims = sorted(entries,
                     key=lambda key: (hit_stamp.get(key, 0), _encode_key(key)))
    dropped = 0
    for key in victims:
        if total <= budget:
            break
        total -= sizes[key]
        del entries[key]
        dropped += 1
    return dropped


def _read_cache_file(path: Path) -> Dict[CacheKey, ValidationResult]:
    """Load entries from ``path``, tolerating every way the file can be bad.

    Missing file, unreadable file, invalid JSON, wrong top-level shape or a
    schema-version mismatch all yield an empty dict; individually malformed
    entries are skipped without poisoning their neighbours.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return {}
    try:
        payload = json.loads(text)
    except ValueError:
        return {}
    if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
        return {}
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        return {}
    results: Dict[CacheKey, ValidationResult] = {}
    for key_text, result_payload in entries.items():
        try:
            results[_decode_key(key_text)] = _decode_result(result_payload)
        except (KeyError, TypeError, ValueError):
            continue
    return results


__all__ = ["CacheKey", "CACHE_SCHEMA", "CACHE_FILE_NAME", "ValidationCache"]
