"""The per-function validation entry points.

``validate(before, after)`` is the paper's ``validate fi fo``: build both
functions into one shared value graph, normalize, and report whether the
observable roots (return value and final memory state) merged into the
same nodes.  A positive answer means: *if the original function terminates
without a runtime error, the transformed function computes the same return
value and leaves memory in the same state* (§2's guarantee).

``validate_chain(versions)`` generalizes the shared graph from 2 versions
to a whole checkpoint chain: all k versions are hash-consed into ONE
graph (:func:`repro.vgraph.builder.build_chain_graph`), which is
normalized **once** against every adjacent pair's goal roots; the per-pair
verdicts are then read off the single normalized graph.  Accepts read off
the chain are exact — two roots merged during construction iff they are
structurally identical (a graph-independent fact), and normalization of
the union applies at least the rewrites either pair-local run would — so
the stepwise driver consumes them directly and re-checks *rejecting*
pairs (unless the outcome marks them authoritative, see
:class:`ChainOutcome`) with an isolated two-version :func:`validate`,
keeping chain-mode verdicts identical to the per-pair strategy while
paying for one build and one normalization instead of k.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.manager import AnalysisManager
from ..errors import IrreducibleCFGError, ReproError, ValidationInternalError
from ..ir.module import Function
from ..vgraph.builder import (FunctionSummary, build_chain_graph,
                              build_shared_graph)
from ..vgraph.graph import ValueGraph
from ..vgraph.normalize import (
    NormalizationStats,
    Normalizer,
    unobservable_stores,
)
from . import faults
from .config import DEFAULT_CONFIG, ValidatorConfig

#: Synthetic denial reasons that say nothing about a pair's semantics and
#: therefore must NEVER enter the proof cache: a rerun with a larger
#: budget/timeout, or after the poison source is fixed, must re-validate.
TIMEOUT = "timeout"
QUARANTINED = "quarantined"
UNCACHEABLE_REASONS = ("budget-exhausted", TIMEOUT, QUARANTINED)


@dataclass
class ValidationResult:
    """Outcome of validating one function pair."""

    #: Name of the function that was validated.
    function_name: str
    #: Did the two functions' value graphs merge?
    is_success: bool
    #: Short machine-readable reason.  Successes: ``"equal"`` (the roots
    #: merged during normalization), ``"trivially-equal"`` (they merged
    #: during construction already) or ``"stepwise-equal"`` (an aggregate
    #: over a stepwise pipeline walk, see the driver).  Rejections:
    #: ``"normalization-exhausted"`` (normalization finished without
    #: merging the roots), ``"irreducible-cfg"`` (the front end rejects
    #: irreducible control flow), ``"build-error"`` (graph *construction*
    #: failed — unexpected IR or recursion blow-up) or
    #: ``"normalize-error"`` (construction succeeded but an internal error
    #: was raised while *normalizing* the graph).  Three synthetic
    #: rejections exist outside validation proper (none says anything
    #: about the pair's semantics, so none is ever cached — see
    #: :data:`UNCACHEABLE_REASONS`): ``"budget-exhausted"`` (a
    #: per-request :class:`~repro.validator.scheduler.budget.RequestBudget`
    #: could not afford this query), ``"timeout"`` (the pair exceeded
    #: ``config.pair_timeout`` wall-clock — see :func:`validate_bounded`)
    #: and ``"quarantined"`` (the pair crashed or timed out workers
    #: ``config.max_pair_retries`` times and the supervisor isolated it
    #: rather than let it kill the backend).
    reason: str
    #: Wall-clock seconds spent on this validation.
    elapsed: float = 0.0
    #: Number of nodes in the shared graph after construction.
    graph_nodes: int = 0
    #: Normalization statistics (empty when construction failed).  On top
    #: of the engine counters, fresh per-pair validations record the
    #: deterministic work counters ``nodes_built`` (nodes created while
    #: constructing the graph), ``nodes_created`` (total nodes ever
    #: created, including normalization-manufactured ones) and
    #: ``normalize_runs`` — the counters the chain-graph benchmarks and
    #: the CI perf guard compare.
    stats: Dict[str, int] = field(default_factory=dict)
    #: Human-readable detail for failures (best-effort diff rendering).
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_success


def validate(before: Function, after: Function,
             config: Optional[ValidatorConfig] = None,
             manager: Optional[AnalysisManager] = None) -> ValidationResult:
    """Validate that ``after`` preserves the semantics of ``before``.

    Any internal failure (irreducible CFG, unexpected IR, recursion blow-up)
    is reported as a *rejection*, never as a success — the driver then keeps
    the original function, exactly as the paper's ``llvm-md`` wrapper does.

    ``manager`` optionally shares per-function analyses (dominators, loops,
    gates, ...) across queries touching the same function versions — the
    stepwise strategies pass one so interior pipeline checkpoints are
    analysed once and consumed twice.
    """
    config = config or DEFAULT_CONFIG
    start = time.perf_counter()
    old_limit = sys.getrecursionlimit()
    # Only graph *construction* recurses (symbolic evaluation follows the
    # SSA def-use chains); every normalization-phase walk — rules, cycle
    # unification, partition refinement, signatures — is iterative, so
    # the raised limit is scoped to the build.
    sys.setrecursionlimit(max(old_limit, config.recursion_limit))
    try:
        graph, summary_before, summary_after = build_shared_graph(before, after, manager)
    except IrreducibleCFGError:
        return ValidationResult(before.name, False, "irreducible-cfg",
                                elapsed=time.perf_counter() - start)
    except (ReproError, RecursionError) as error:
        return ValidationResult(before.name, False, "build-error",
                                elapsed=time.perf_counter() - start, detail=str(error))
    finally:
        sys.setrecursionlimit(old_limit)

    nodes_built = graph.next_id
    goal_pairs = [
        (summary_before.result, summary_after.result),
        (summary_before.memory, summary_after.memory),
    ]

    try:
        normalizer = Normalizer(
            graph,
            rule_groups=config.rule_groups,
            matcher=config.matcher,
            max_iterations=config.max_iterations,
            engine=config.engine,
        )
        matched, stats = normalizer.normalize_until_equal(goal_pairs)
    except (ReproError, RecursionError) as error:
        # Construction succeeded, so this is a *normalization* failure —
        # reporting it as "build-error" (as this path once did) would
        # mislead anyone triaging rejections.
        return ValidationResult(
            before.name, False, "normalize-error",
            elapsed=time.perf_counter() - start,
            graph_nodes=graph.live_node_count(), detail=str(error),
        )

    counters = _work_counters(stats, nodes_built, graph.next_id)
    elapsed = time.perf_counter() - start
    if matched:
        reason = "trivially-equal" if stats.trivially_equal else "equal"
        return ValidationResult(before.name, True, reason, elapsed=elapsed,
                                graph_nodes=graph.live_node_count(), stats=counters)

    detail = _failure_detail(graph, summary_before, summary_after)
    return ValidationResult(before.name, False, "normalization-exhausted", elapsed=elapsed,
                            graph_nodes=graph.live_node_count(), stats=counters,
                            detail=detail)


def timeout_result(name: str, limit: float, elapsed: float) -> ValidationResult:
    """The synthetic ``"timeout"`` denial for one over-budget pair."""
    return ValidationResult(
        name, False, TIMEOUT, elapsed=elapsed,
        detail=f"pair validation exceeded pair_timeout={limit:g}s "
               f"(ran {elapsed:.3f}s); not cached — retry with a larger bound")


def quarantined_result(name: str, casualties: int, why: str) -> ValidationResult:
    """The synthetic ``"quarantined"`` denial for one poison pair."""
    return ValidationResult(
        name, False, QUARANTINED,
        detail=f"pair quarantined after {casualties} worker "
               f"casualt{'y' if casualties == 1 else 'ies'} ({why}); "
               f"not cached — verdict says nothing about the pair's semantics")


def validate_bounded(before: Function, after: Function,
                     config: Optional[ValidatorConfig] = None,
                     manager: Optional[AnalysisManager] = None
                     ) -> ValidationResult:
    """:func:`validate` under ``config.pair_timeout`` and ``fault_plan``.

    The hot-path entry every executor/provider uses for *pair* queries.
    With neither knob set it is exactly :func:`validate`.  With a
    timeout, the pair runs under a :class:`~repro.validator.faults.watchdog`
    — preemptive (``SIGALRM``) in main threads, which covers the serial
    driver and the pool/steal worker processes; post-hoc (same verdict,
    later) on non-main threads like the service daemon's ``to_thread``
    workers — and an over-budget pair settles as the uncached
    ``"timeout"`` denial instead of blocking everything behind it.
    """
    config = config or DEFAULT_CONFIG
    plan, limit = config.fault_plan, config.pair_timeout
    if plan is None and not limit:
        return validate(before, after, config, manager=manager)
    guard = faults.watchdog(limit)
    try:
        with guard:
            if plan is not None:
                faults.maybe_fire(plan, "pair", detail=before.name)
            result = validate(before, after, config, manager=manager)
    except faults.PairTimeout:
        return timeout_result(before.name, limit, guard.elapsed)
    if guard.expired():
        # The non-main-thread (post-hoc) path: the work already ran to
        # completion, but the verdict must match what the preemptive
        # path would have settled — and must stay out of the cache.
        return timeout_result(before.name, limit, guard.elapsed)
    return result


def _work_counters(stats: NormalizationStats, nodes_built: int,
                   nodes_created: int) -> Dict[str, int]:
    """Engine stats plus the deterministic work counters of one run."""
    counters = stats.as_dict()
    counters["nodes_built"] = nodes_built
    counters["nodes_created"] = nodes_created
    counters["normalize_runs"] = 1
    return counters


@dataclass
class ChainOutcome:
    """Raw result of validating a whole checkpoint chain from one graph.

    ``pair_results[i]`` is the verdict of the adjacent pair
    ``(versions[i], versions[i + 1])`` as read off the shared chain
    graph.  Accepts are always exact: two roots are equal only when they
    actually merged, construction-time equality is structural identity,
    and the union graph applies at least every rewrite a pair-local run
    would.  Rejections are exact when ``rejects_trusted`` holds — the
    normalization reached a natural rewrite fixpoint *and* no rejecting
    pair shows a pruning-scope divergence.  At a fixpoint, a sub-term
    another version eliminated (and an earlier, accepted pair therefore
    proved equal to its replacement) has merged away and can no longer
    inhibit the pair-scoped rules; but the ``loadstore`` group's
    dead-store pruning is *root-scoped*, and the chain graph's goal set
    is the union of every version's roots, so a store that is dead in an
    isolated two-version graph can stay observable here (an earlier
    checkpoint still loads the shared allocation) and keep a pair's
    memory goals apart even at a fixpoint.  :func:`validate_chain`
    therefore re-runs the pruning analysis scoped to each *rejecting*
    pair's own roots; when any such pair holds a pair-dead store — or
    when normalization was cut off by the iteration bound — consumers
    must re-check rejections with an isolated per-pair :func:`validate`
    before acting on them.
    When the chain itself could not be built or normalized, ``fallback``
    is true and every pair result already *is* an isolated per-pair
    verdict — or, under ``validate_chain(..., eager_fallback=False)``,
    ``pair_results`` is empty and the caller validates per-pair lazily.
    """

    function_name: str
    pair_results: List[ValidationResult]
    #: Work telemetry of the chain run (see the driver's ``chain_stats``).
    chain_stats: Dict[str, int]
    #: Raw verdict of the (original, final) pair — the stepwise strategy's
    #: whole-query fallback — read off the same graph (``None`` when the
    #: chain fell back to isolated per-pair validation, or for 2-version
    #: chains where the single pair *is* the whole pair).  Trustworthy on
    #: exactly the same terms as ``pair_results``.
    whole_result: Optional[ValidationResult] = None
    #: Chain construction/normalization failed; per-pair results inside.
    fallback: bool = False
    #: Normalization reached a natural fixpoint and no rejecting pair
    #: holds a store that only its isolated pair graph could prune, so
    #: read-off rejections are as authoritative as a per-pair run's
    #: (see above).
    rejects_trusted: bool = False


def validate_chain(versions: Sequence[Function],
                   config: Optional[ValidatorConfig] = None,
                   manager: Optional[AnalysisManager] = None,
                   eager_fallback: bool = True) -> ChainOutcome:
    """Validate every adjacent pair of a checkpoint chain from ONE graph.

    All ``len(versions)`` checkpoints are hash-consed into a single
    :class:`~repro.vgraph.graph.ValueGraph` and normalized once against
    the union of every adjacent pair's goal roots; the per-pair verdicts
    are read off the normalized graph.  This replaces the per-pair
    strategy's ``k - 1`` independent build+normalize runs (each of which
    translates both endpoints afresh) with one build and one
    normalization.

    The function is *total*: any construction or normalization failure
    degrades to the per-pair path (``fallback=True``).  With
    ``eager_fallback`` (the default — what the sharded workers need,
    since they must return a complete verdict list) the fallback runs an
    isolated :func:`validate` for every adjacent pair; with
    ``eager_fallback=False`` it returns *empty* ``pair_results`` and the
    caller validates per-pair lazily — the serial driver uses this so a
    broken chain whose first pair already rejects never pays for the
    pairs the stepwise walk would not have consumed.
    """
    config = config or DEFAULT_CONFIG
    if len(versions) < 2:
        raise ValidationInternalError("a checkpoint chain needs at least 2 versions")
    name = versions[0].name
    start = time.perf_counter()

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, config.recursion_limit))
    try:
        graph, summaries = build_chain_graph(list(versions), manager)
    except (ReproError, RecursionError):
        # Which version is at fault decides which pairs fail; the
        # isolated per-pair runs reproduce exactly the per-pair strategy.
        return _chain_fallback(versions, config, manager, eager_fallback)
    finally:
        sys.setrecursionlimit(old_limit)

    nodes_built = graph.next_id
    # Totality: everything between construction and read-off — summary
    # read-off, the triviality and baseline reachability walks, and the
    # normalization itself — degrades to the per-pair oracle on *any*
    # failure, not just the ReproError/RecursionError pair construction
    # raises.  A genuine per-pair failure reproduces in the fallback.
    try:
        pair_goals: List[List[Tuple[Optional[int], Optional[int]]]] = []
        for left, right in zip(summaries, summaries[1:]):
            pair_goals.append([
                (left.result, right.result),
                (left.memory, right.memory),
            ])
        # The (original, final) pair — the stepwise whole-query fallback
        # — is free to answer from the same graph; for 2-version chains
        # it IS the single adjacent pair.
        whole_goals: Optional[List[Tuple[Optional[int], Optional[int]]]] = None
        if len(versions) > 2:
            whole_goals = [
                (summaries[0].result, summaries[-1].result),
                (summaries[0].memory, summaries[-1].memory),
            ]
        all_goals = [goal for goals in pair_goals for goal in goals]
        if whole_goals is not None:
            all_goals += whole_goals

        # Pre-normalization equality is structural identity — a
        # graph-size independent fact, so "trivially-equal" means exactly
        # what it means on the per-pair path.
        trivially = [all(_goal_equal(graph, goal) for goal in goals)
                     for goals in pair_goals]
        whole_trivially = (whole_goals is not None
                           and all(_goal_equal(graph, goal) for goal in whole_goals))

        baseline_nodes = _pair_baseline_nodes(graph, summaries)

        normalizer = Normalizer(
            graph,
            rule_groups=config.rule_groups,
            matcher=config.matcher,
            max_iterations=config.max_iterations,
            engine=config.engine,
        )
        _, stats = normalizer.normalize_until_equal(all_goals)
    except Exception:
        return _chain_fallback(versions, config, manager, eager_fallback)

    elapsed = time.perf_counter() - start
    graph_nodes = graph.live_node_count()
    pair_results: List[ValidationResult] = []
    for index, goals in enumerate(pair_goals):
        merged = all(_goal_equal(graph, goal) for goal in goals)
        if merged:
            reason = "trivially-equal" if trivially[index] else "equal"
            result = ValidationResult(name, True, reason,
                                      elapsed=elapsed if index == 0 else 0.0,
                                      graph_nodes=graph_nodes)
        else:
            detail = _failure_detail(graph, summaries[index], summaries[index + 1])
            result = ValidationResult(name, False, "normalization-exhausted",
                                      elapsed=elapsed if index == 0 else 0.0,
                                      graph_nodes=graph_nodes, detail=detail)
        pair_results.append(result)

    whole_result: Optional[ValidationResult] = None
    if whole_goals is not None:
        if all(_goal_equal(graph, goal) for goal in whole_goals):
            reason = "trivially-equal" if whole_trivially else "equal"
            whole_result = ValidationResult(name, True, reason,
                                            graph_nodes=graph_nodes)
        else:
            whole_result = ValidationResult(
                name, False, "normalization-exhausted", graph_nodes=graph_nodes,
                detail=_failure_detail(graph, summaries[0], summaries[-1]))

    rejects_trusted = stats.reached_fixpoint
    if rejects_trusted and "loadstore" in normalizer.rule_groups:
        # Observability pruning is *root-scoped*, and the chain graph's
        # goal set spans every version's roots: a store that is dead in
        # an isolated (v_i, v_i+1) graph — the DSE case — can stay
        # observable here because an earlier checkpoint still loads the
        # shared allocation, so the pair's memory goals never merge even
        # at a natural fixpoint (the fixpoint argument covers rule
        # inhibition, not pruning scope).  Detect exactly that
        # divergence: the union-scoped pruning left nothing union-dead,
        # so any store that is dead under a *rejecting pair's own* roots
        # marks a prune the isolated run performs and this graph cannot
        # — the rejection is then not authoritative and every consumer
        # re-checks it per-pair, as for iteration-capped runs.  Loads
        # and escapes only disappear as normalization progresses, so a
        # pair with no pair-dead store at the fixpoint never diverged.
        rejecting_goals = [goals for result, goals
                           in zip(pair_results, pair_goals)
                           if not result.is_success]
        if whole_result is not None and not whole_result.is_success:
            rejecting_goals.append(whole_goals)
        for goals in rejecting_goals:
            pair_roots = [node for goal in goals for node in goal
                          if node is not None]
            if unobservable_stores(graph, pair_roots):
                rejects_trusted = False
                break
    chain_stats = _chain_stats(len(versions), nodes_built, graph.next_id,
                               baseline_nodes, stats)
    return ChainOutcome(name, pair_results, chain_stats,
                        whole_result=whole_result,
                        rejects_trusted=rejects_trusted)


def validate_chain_delta(graph: ValueGraph,
                         summaries: Sequence[FunctionSummary],
                         dirty_indices: Sequence[int],
                         config: Optional[ValidatorConfig] = None,
                         nodes_built: int = 0,
                         nodes_reused: int = 0,
                         ) -> Optional[Tuple[Dict[int, ValidationResult],
                                             Dict[str, int]]]:
    """Read only the *dirty* pairs' verdicts off a retained chain graph.

    ``graph`` is a pristine (constructed, never normalized) chain graph
    already extended with the current versions
    (:func:`~repro.vgraph.builder.extend_chain_graph`); ``summaries``
    hold every current version's roots and ``dirty_indices`` name the
    adjacent pairs whose endpoints changed since the previous run.  The
    graph is cloned down to the current roots — retired versions' nodes
    must neither inhabit the work graph nor join the first round's full
    sharing scan — and the clone is normalized against the union of the
    dirty pairs' goals only, exactly the scope a cold
    :func:`validate_chain` over just those pairs would use.

    Accepts read off the clone are exact on :func:`validate_chain`'s
    terms (construction-time merging is structural identity, and the
    union of the dirty goals applies at least every pair-local rewrite).
    Rejections are **never** authoritative here — the dirty goal union
    differs from both the full-chain union and the isolated pair scope —
    so the incremental driver re-checks every read-off rejection with an
    isolated per-pair :func:`validate`, which is what keeps incremental
    records signature-identical to cold ones.

    Returns ``(verdicts, chain_stats)`` with one entry per dirty index,
    or ``None`` when anything fails — the caller then falls back to
    isolated per-pair validation and drops the retained state.
    ``nodes_built``/``nodes_reused`` are the extension's construction
    telemetry, threaded into the returned ``chain_stats``.
    """
    config = config or DEFAULT_CONFIG
    if not dirty_indices:
        raise ValidationInternalError("validate_chain_delta needs >= 1 dirty pair")
    name = summaries[0].function.name
    start = time.perf_counter()
    try:
        roots = [node for summary in summaries for node in summary.roots()]
        work = graph.clone(roots=roots)
        pair_goals: Dict[int, List[Tuple[Optional[int], Optional[int]]]] = {}
        for index in dirty_indices:
            left, right = summaries[index], summaries[index + 1]
            pair_goals[index] = [
                (left.result, right.result),
                (left.memory, right.memory),
            ]
        all_goals = [goal for goals in pair_goals.values() for goal in goals]
        trivially = {index: all(_goal_equal(work, goal) for goal in goals)
                     for index, goals in pair_goals.items()}
        reach = {index: work.reachable(summaries[index].roots())
                 for pair in dirty_indices for index in (pair, pair + 1)}
        baseline_nodes = sum(len(reach[index] | reach[index + 1])
                             for index in dirty_indices)
        created_watermark = work.next_id
        normalizer = Normalizer(
            work,
            rule_groups=config.rule_groups,
            matcher=config.matcher,
            max_iterations=config.max_iterations,
            engine=config.engine,
        )
        _, stats = normalizer.normalize_until_equal(all_goals)
    except Exception:
        return None

    elapsed = time.perf_counter() - start
    graph_nodes = work.live_node_count()
    verdicts: Dict[int, ValidationResult] = {}
    for position, index in enumerate(dirty_indices):
        goals = pair_goals[index]
        merged = all(_goal_equal(work, goal) for goal in goals)
        if merged:
            reason = "trivially-equal" if trivially[index] else "equal"
            verdicts[index] = ValidationResult(
                name, True, reason, elapsed=elapsed if position == 0 else 0.0,
                graph_nodes=graph_nodes)
        else:
            detail = _failure_detail(work, summaries[index], summaries[index + 1])
            verdicts[index] = ValidationResult(
                name, False, "normalization-exhausted",
                elapsed=elapsed if position == 0 else 0.0,
                graph_nodes=graph_nodes, detail=detail)

    chain_stats = _chain_stats(len(summaries), nodes_built,
                               nodes_built + (work.next_id - created_watermark),
                               baseline_nodes, stats)
    chain_stats["chain_pairs"] = len(dirty_indices)
    chain_stats["chain_normalizations_saved"] = len(dirty_indices) - 1
    chain_stats["chain_nodes_reused"] = nodes_reused
    chain_stats["chain_pairs_skipped"] = 0
    return verdicts, chain_stats


def _goal_equal(graph, goal: Tuple[Optional[int], Optional[int]]) -> bool:
    left, right = goal
    if left is None and right is None:
        return True
    if left is None or right is None:
        return False
    return graph.same(left, right)


def _pair_baseline_nodes(graph, summaries) -> int:
    """Estimate of the nodes the per-pair strategy would construct.

    Each adjacent pair's fresh two-version graph holds (about) the union
    of the two versions' reachable sub-graphs; summing those unions over
    the chain is the "2×-per-pair" construction baseline the
    ``chain_stats`` telemetry reports against.  Computed before
    normalization, from one reachability walk per version.
    """
    reach = [graph.reachable(summary.roots()) for summary in summaries]
    return sum(len(left | right) for left, right in zip(reach, reach[1:]))


def _chain_stats(versions: int, nodes_built: int, nodes_created: int,
                 baseline_nodes: int, stats: NormalizationStats) -> Dict[str, int]:
    return {
        "chains": 1,
        "chain_versions": versions,
        "chain_pairs": versions - 1,
        "chain_nodes_built": nodes_built,
        "chain_nodes_created": nodes_created,
        "chain_pair_baseline_nodes": baseline_nodes,
        "chain_rounds": stats.iterations,
        "chain_rule_invocations": stats.rule_invocations,
        "chain_normalizations_saved": versions - 2,
        "chain_fallbacks": 0,
    }


def _chain_fallback(versions: Sequence[Function], config: ValidatorConfig,
                    manager: Optional[AnalysisManager],
                    eager: bool) -> ChainOutcome:
    """Per-pair fallback outcome: eager (complete verdicts) or lazy (empty)."""
    pair_results = []
    if eager:
        pair_results = [validate(before, after, config, manager=manager)
                        for before, after in zip(versions, versions[1:])]
    chain_stats = {
        "chains": 0,
        "chain_versions": len(versions),
        "chain_pairs": len(versions) - 1,
        "chain_nodes_built": 0,
        "chain_nodes_created": 0,
        "chain_pair_baseline_nodes": 0,
        "chain_rounds": 0,
        "chain_rule_invocations": 0,
        "chain_normalizations_saved": 0,
        "chain_fallbacks": 1,
    }
    return ChainOutcome(versions[0].name, pair_results, chain_stats,
                        fallback=True)


def _failure_detail(graph, summary_before, summary_after) -> str:
    """Render the mismatching roots (bounded depth) for diagnostics."""
    lines = []
    if summary_before.result is not None or summary_after.result is not None:
        left = graph.format_node(summary_before.result, 5) if summary_before.result is not None else "<void>"
        right = graph.format_node(summary_after.result, 5) if summary_after.result is not None else "<void>"
        if (summary_before.result is None or summary_after.result is None
                or not graph.same(summary_before.result, summary_after.result)):
            lines.append(f"result:   before = {left}")
            lines.append(f"          after  = {right}")
    if not graph.same(summary_before.memory, summary_after.memory):
        lines.append(f"memory:   before = {graph.format_node(summary_before.memory, 5)}")
        lines.append(f"          after  = {graph.format_node(summary_after.memory, 5)}")
    return "\n".join(lines)


def validate_or_raise(before: Function, after: Function,
                      config: Optional[ValidatorConfig] = None) -> ValidationResult:
    """Like :func:`validate` but raises on rejection (useful in tests)."""
    result = validate(before, after, config)
    if not result.is_success:
        raise ValidationInternalError(
            f"validation of @{before.name} failed ({result.reason})\n{result.detail}"
        )
    return result


__all__ = ["validate", "validate_bounded", "validate_chain",
           "validate_chain_delta", "validate_or_raise", "ValidationResult",
           "ChainOutcome", "TIMEOUT", "QUARANTINED", "UNCACHEABLE_REASONS",
           "timeout_result", "quarantined_result"]
