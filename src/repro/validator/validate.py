"""The per-function validation entry point.

``validate(before, after)`` is the paper's ``validate fi fo``: build both
functions into one shared value graph, normalize, and report whether the
observable roots (return value and final memory state) merged into the
same nodes.  A positive answer means: *if the original function terminates
without a runtime error, the transformed function computes the same return
value and leaves memory in the same state* (§2's guarantee).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..analysis.manager import AnalysisManager
from ..errors import IrreducibleCFGError, ReproError, ValidationInternalError
from ..ir.module import Function
from ..vgraph.builder import build_shared_graph
from ..vgraph.normalize import NormalizationStats, Normalizer
from .config import DEFAULT_CONFIG, ValidatorConfig


@dataclass
class ValidationResult:
    """Outcome of validating one function pair."""

    #: Name of the function that was validated.
    function_name: str
    #: Did the two functions' value graphs merge?
    is_success: bool
    #: Short machine-readable reason.  Successes: ``"equal"`` (the roots
    #: merged during normalization), ``"trivially-equal"`` (they merged
    #: during construction already) or ``"stepwise-equal"`` (an aggregate
    #: over a stepwise pipeline walk, see the driver).  Rejections:
    #: ``"normalization-exhausted"`` (normalization finished without
    #: merging the roots), ``"irreducible-cfg"`` (the front end rejects
    #: irreducible control flow), ``"build-error"`` (graph *construction*
    #: failed — unexpected IR or recursion blow-up) or
    #: ``"normalize-error"`` (construction succeeded but an internal error
    #: was raised while *normalizing* the graph).
    reason: str
    #: Wall-clock seconds spent on this validation.
    elapsed: float = 0.0
    #: Number of nodes in the shared graph after construction.
    graph_nodes: int = 0
    #: Normalization statistics (empty when construction failed).
    stats: Dict[str, int] = field(default_factory=dict)
    #: Human-readable detail for failures (best-effort diff rendering).
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_success


def validate(before: Function, after: Function,
             config: Optional[ValidatorConfig] = None,
             manager: Optional[AnalysisManager] = None) -> ValidationResult:
    """Validate that ``after`` preserves the semantics of ``before``.

    Any internal failure (irreducible CFG, unexpected IR, recursion blow-up)
    is reported as a *rejection*, never as a success — the driver then keeps
    the original function, exactly as the paper's ``llvm-md`` wrapper does.

    ``manager`` optionally shares per-function analyses (dominators, loops,
    gates, ...) across queries touching the same function versions — the
    stepwise strategies pass one so interior pipeline checkpoints are
    analysed once and consumed twice.
    """
    config = config or DEFAULT_CONFIG
    start = time.perf_counter()
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, config.recursion_limit))
    try:
        graph, summary_before, summary_after = build_shared_graph(before, after, manager)
    except IrreducibleCFGError:
        return ValidationResult(before.name, False, "irreducible-cfg",
                                elapsed=time.perf_counter() - start)
    except (ReproError, RecursionError) as error:
        return ValidationResult(before.name, False, "build-error",
                                elapsed=time.perf_counter() - start, detail=str(error))
    finally:
        sys.setrecursionlimit(old_limit)

    goal_pairs = [
        (summary_before.result, summary_after.result),
        (summary_before.memory, summary_after.memory),
    ]

    sys.setrecursionlimit(max(old_limit, config.recursion_limit))
    try:
        normalizer = Normalizer(
            graph,
            rule_groups=config.rule_groups,
            matcher=config.matcher,
            max_iterations=config.max_iterations,
            engine=config.engine,
        )
        matched, stats = normalizer.normalize_until_equal(goal_pairs)
    except (ReproError, RecursionError) as error:
        # Construction succeeded, so this is a *normalization* failure —
        # reporting it as "build-error" (as this path once did) would
        # mislead anyone triaging rejections.
        return ValidationResult(
            before.name, False, "normalize-error",
            elapsed=time.perf_counter() - start,
            graph_nodes=graph.live_node_count(), detail=str(error),
        )
    finally:
        sys.setrecursionlimit(old_limit)

    elapsed = time.perf_counter() - start
    if matched:
        reason = "trivially-equal" if stats.trivially_equal else "equal"
        return ValidationResult(before.name, True, reason, elapsed=elapsed,
                                graph_nodes=graph.live_node_count(), stats=stats.as_dict())

    detail = _failure_detail(graph, summary_before, summary_after)
    return ValidationResult(before.name, False, "normalization-exhausted", elapsed=elapsed,
                            graph_nodes=graph.live_node_count(), stats=stats.as_dict(),
                            detail=detail)


def _failure_detail(graph, summary_before, summary_after) -> str:
    """Render the mismatching roots (bounded depth) for diagnostics."""
    lines = []
    if summary_before.result is not None or summary_after.result is not None:
        left = graph.format_node(summary_before.result, 5) if summary_before.result is not None else "<void>"
        right = graph.format_node(summary_after.result, 5) if summary_after.result is not None else "<void>"
        if (summary_before.result is None or summary_after.result is None
                or not graph.same(summary_before.result, summary_after.result)):
            lines.append(f"result:   before = {left}")
            lines.append(f"          after  = {right}")
    if not graph.same(summary_before.memory, summary_after.memory):
        lines.append(f"memory:   before = {graph.format_node(summary_before.memory, 5)}")
        lines.append(f"          after  = {graph.format_node(summary_after.memory, 5)}")
    return "\n".join(lines)


def validate_or_raise(before: Function, after: Function,
                      config: Optional[ValidatorConfig] = None) -> ValidationResult:
    """Like :func:`validate` but raises on rejection (useful in tests)."""
    result = validate(before, after, config)
    if not result.is_success:
        raise ValidationInternalError(
            f"validation of @{before.name} failed ({result.reason})\n{result.detail}"
        )
    return result


__all__ = ["validate", "validate_or_raise", "ValidationResult"]
