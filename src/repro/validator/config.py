"""Validator configuration: rule sets, matcher choice, resource limits.

The configuration exists mostly so the experiments can reproduce the
paper's rule-set ablations: Figure 6 adds rule groups to GVN one at a
time, Figure 8 does the same for SCCP, and Figure 7 compares LICM with no
rules against all rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..vgraph.normalize import ENGINES
from ..vgraph.rules import ALL_RULE_GROUPS
from .faults import FaultPlan

#: Scheduling backends the batch driver can execute a work plan on
#: (``"auto"`` resolves to ``"pool"`` when ``concurrency > 1``, else
#: ``"serial"``).  See :mod:`repro.validator.scheduler.executors`.
EXECUTORS = ("auto", "serial", "pool", "wave", "steal")

#: Transports the ``"steal"`` backend can move work items over:
#: ``"pipe"`` (in-process ``multiprocessing`` pipes, the historical
#: single-host protocol) or ``"tcp"`` (length-prefixed frames over
#: sockets so workers on other hosts can join the shared queue).  See
#: :mod:`repro.validator.scheduler.transport`.
STEAL_TRANSPORTS = ("pipe", "tcp")

#: Persistent proof-store backends the validation cache can open
#: (``"auto"`` prefers an existing SQLite store, else the historical
#: JSON file).  See :mod:`repro.validator.cache`.
CACHE_BACKENDS = ("auto", "json", "sqlite")

#: Cumulative rule sets used for the GVN ablation (paper Figure 6).
GVN_ABLATION_STEPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("no rules", ()),
    ("+ phi simplification", ("phi",)),
    ("+ constant folding", ("phi", "constfold", "boolean")),
    ("+ load/store simplification", ("phi", "constfold", "boolean", "loadstore")),
    ("+ eta simplification", ("phi", "constfold", "boolean", "loadstore", "eta")),
    ("+ commuting rules", ("phi", "constfold", "boolean", "loadstore", "eta", "commuting")),
)

#: Rule sets used for the SCCP ablation (paper Figure 8).
SCCP_ABLATION_STEPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("no rules", ()),
    ("constant folding", ("constfold", "boolean")),
    ("+ phi simplification", ("constfold", "boolean", "phi")),
    ("all rules", tuple(ALL_RULE_GROUPS)),
)

#: Rule sets used for the LICM ablation (paper Figure 7).
LICM_ABLATION_STEPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("no rules", ()),
    ("all rules", tuple(ALL_RULE_GROUPS)),
)


@dataclass(frozen=True)
class ValidatorConfig:
    """Settings for one validation run.

    Attributes
    ----------
    rule_groups:
        Normalization rule groups to enable (default: all of them).
    matcher:
        Cycle-matching strategy: ``"simple"``, ``"partition"`` or
        ``"combined"`` (default, as in the paper §5.4).
    max_iterations:
        Bound on normalization rounds.
    recursion_limit:
        Python recursion limit installed while building value graphs
        (symbolic evaluation is recursive over the SSA def-use chains).
    engine:
        Normalization engine: ``"worklist"`` (incremental, the default)
        or ``"fullscan"`` (the original re-scan-everything loop, kept as
        a baseline for parity tests and benchmarks).
    concurrency:
        Number of worker processes the drivers (``llvm_md`` and
        :func:`repro.validator.driver.validate_module_batch`) may use to
        shard validation queries.  ``0`` or ``1`` validates serially
        in-process.
    executor:
        Scheduling backend the batch driver executes its work plan on:
        ``"serial"`` (in-process), ``"pool"`` (process-pool sharding;
        requires ``concurrency > 1``), ``"wave"`` (speculative
        pipeline-position waves: validate wave *i* of every function's
        adjacent pairs, cancel the later waves of functions whose pair
        rejected and settle them from the whole-query fallback — pooled
        when ``concurrency > 1``, in-process otherwise) or ``"steal"``
        (a persistent pool of workers pulling content-keyed items from
        per-worker deques with LIFO-local/FIFO-steal semantics, so long
        chain items stop straggling behind an idle pool; the wave
        backend's doomed-pair cancellation rides on the shared queue —
        pooled when ``concurrency > 1``, in-process otherwise).  The default
        ``"auto"`` resolves to ``"pool"`` when ``concurrency > 1`` and
        ``"serial"`` otherwise (the historical behavior).  Contradictory
        combinations (``"pool"`` without workers, ``"serial"`` with
        workers) are rejected at construction time instead of silently
        running something else.  Every backend produces byte-identical
        :meth:`~repro.validator.report.FunctionRecord.signature`\\ s —
        ``benchmarks/stepwise_guard.py --executor-parity`` enforces it —
        so the field can never affect a verdict and is *not* part of the
        cache key.
    cache_dir:
        Optional persistence location for the
        :class:`~repro.validator.cache.ValidationCache`.  When set and no
        explicit cache is passed, the drivers open a persistent cache
        there (loading previously proved pairs) and save it back after the
        run, so repeated corpus sweeps and CI re-runs skip every pair
        proved before.  ``cache_dir`` never affects a verdict, so it is
        *not* part of the cache key.
    analysis_cache_size:
        LRU bound for driver-created
        :class:`~repro.analysis.manager.AnalysisManager` instances.
        ``0`` keeps them unbounded (the historical behavior); a positive
        value caps how many analysed function versions stay pinned in
        memory, which long-lived services need.  Eviction never changes a
        verdict, only the ``analysis_stats`` counters.
    chain_graphs:
        Answer the stepwise strategy's adjacent-pair queries from one
        chain-shared value graph per function (build every pipeline
        checkpoint once, normalize once) instead of one fresh two-version
        graph per pair.  On by default; verdicts, blame, kept prefixes
        and record signatures are identical either way (the per-pair path
        remains both the fallback and the parity oracle — see
        ``benchmarks/stepwise_guard.py --chain-parity``), so the flag is
        *not* part of the cache key.
    cache_max_bytes:
        Size budget for the *persistent*
        :class:`~repro.validator.cache.ValidationCache` backend.  ``0``
        (the default) keeps the file unbounded; a positive value makes
        :meth:`~repro.validator.cache.ValidationCache.save` evict
        least-recently-hit entries until the serialized file fits the
        budget (the ``disk_evicted`` counter reports how many).  Like
        ``cache_dir`` it can never affect a verdict, so it is not part of
        the cache key.
    cache_backend:
        Persistent proof-store backend for ``cache_dir``: ``"json"``
        (the historical whole-file format), ``"sqlite"`` (incremental
        WAL-mode store that faults entries in lazily — the choice for
        caches too large to (de)serialize per run) or ``"auto"`` (the
        default: prefer an existing SQLite store in the directory, else
        JSON).  Both backends store byte-identical content-addressed
        verdicts — ``python -m repro.validator.cache migrate`` converts
        JSON to SQLite one-shot — so like ``cache_dir`` the knob is a
        persistence detail and *not* part of the cache key.
    incremental:
        Route ``llvm_md``/``validate_module_batch`` through the
        incremental revalidation layer (:mod:`repro.validator.watch`):
        pipeline checkpoints are fingerprint-diffed against the previous
        run of the same driver-held :class:`~repro.validator.watch.Revalidator`
        state, unchanged-prefix pairs are adopted from the previous plan
        and cache without re-keying, and only dirtied versions are
        rebuilt into the retained chain graph.  Off by default (every
        run is cold).  Incremental records are
        :meth:`~repro.validator.report.FunctionRecord.signature`-identical
        to cold records (``benchmarks/stepwise_guard.py
        --incremental-parity`` enforces it on every corpus), so like the
        execution knobs above the flag is *not* part of the cache key.
        Contradicts ``executor="wave"`` — the speculative wave schedule
        cancels later pairs of doomed functions, but those are exactly
        the pairs the incremental diff already skipped or adopted, so
        the combination is rejected at construction time.
    service_port:
        TCP port the validation daemon
        (:mod:`repro.validator.service`) listens on.  ``0`` asks the OS
        for an ephemeral port (the daemon prints the bound address).
        Only the service reads it; it never affects a verdict.
    max_inflight:
        Admission-control bound for the daemon: how many validation
        requests may be admitted (queued or running) at once.  Requests
        beyond the bound are rejected with ``503`` and a ``Retry-After``
        hint instead of queueing without limit.  ``0`` rejects every
        request — useful for drain/maintenance windows and for testing
        the rejection path deterministically.
    request_timeout:
        Default per-request wall-clock budget (seconds) the daemon
        applies when a request does not set its own.  ``0`` (the
        default) leaves requests unbounded.  A request that exceeds its
        budget is not dropped: fresh validation stops, remaining
        verdicts are denied with reason ``"budget-exhausted"``, and each
        record settles with its validated ``kept_prefix`` salvaged (see
        :mod:`repro.validator.scheduler.budget`).
    pair_timeout:
        Wall-clock bound (seconds) on one pair validation.  ``0`` (the
        default) leaves pairs unbounded.  A pair exceeding the bound is
        denied with the uncached reason ``"timeout"`` — the record keeps
        its validated ``kept_prefix``, other pairs are unaffected, and
        the verdict never enters the proof cache (a rerun with a larger
        bound must re-validate).  Enforced preemptively (``SIGALRM``)
        in main threads, including pool/steal worker processes; post-hoc
        elsewhere.  A resource limit like the budget knobs, so *not*
        part of the cache key.
    max_pair_retries:
        How many times a pair that crashes or times out its worker is
        retried on another worker before the supervisor quarantines it
        (synthetic uncached ``"quarantined"`` denial, surfaced in
        ``shard_stats``/``/stats``) instead of letting one poison pair
        kill the whole backend.  Not part of the cache key.
    fault_plan:
        Optional :class:`~repro.validator.faults.FaultPlan` injecting
        deterministic faults (worker crashes, pair hangs, flush errors,
        payload corruption, connection drops) at named pipeline sites —
        the test harness for all of the recovery machinery above.
        ``None`` (the default) injects nothing and costs nothing.
        Never part of the cache key: a faulted run's *cached* verdicts
        must be byte-identical to the fault-free run's.
    steal_transport:
        Wire protocol for the ``"steal"`` executor's work queue:
        ``"pipe"`` (the default in-process ``multiprocessing`` pipes)
        or ``"tcp"`` (length-prefixed pickle frames over sockets — the
        driver hosts a :class:`~repro.validator.scheduler.remote.StealCoordinator`
        and remote ``python -m repro.validator.scheduler.worker``
        processes join it dynamically).  Requires ``executor="steal"``.
        Both transports produce byte-identical record signatures
        (``benchmarks/remote_steal_guard.py`` enforces it), so like the
        executor knob it is *not* part of the cache key.
    steal_listen:
        ``HOST:PORT`` the TCP steal coordinator binds (only meaningful
        with ``steal_transport="tcp"``).  ``None`` binds a loopback
        ephemeral port; a fixed port lets ``--reconnect`` workers serve
        every batch of a sweep.  Never part of the cache key.
    steal_connect:
        ``HOST:PORT`` of a *served proof store* to consult when this
        process is not itself the coordinator (e.g. drivers that want
        warm verdicts from a coordinator-owned sqlite store).  When set
        and ``cache_dir`` is ``None``, the batch driver opens a
        ``remote://`` :class:`~repro.validator.cache.ValidationCache`
        against it.  Mutually exclusive with ``steal_listen`` — one
        process either hosts the store or consults it.  Never part of
        the cache key.
    """

    rule_groups: Tuple[str, ...] = tuple(ALL_RULE_GROUPS)
    matcher: str = "combined"
    max_iterations: int = 25
    recursion_limit: int = 50_000
    engine: str = "worklist"
    concurrency: int = 0
    executor: str = "auto"
    cache_dir: Optional[str] = None
    analysis_cache_size: int = 0
    chain_graphs: bool = True
    cache_max_bytes: int = 0
    cache_backend: str = "auto"
    incremental: bool = False
    service_port: int = 8037
    max_inflight: int = 4
    request_timeout: float = 0.0
    pair_timeout: float = 0.0
    max_pair_retries: int = 2
    fault_plan: Optional[FaultPlan] = None
    steal_transport: str = "pipe"
    steal_listen: Optional[str] = None
    steal_connect: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r} (known: {ENGINES})")
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r} (known: {EXECUTORS})")
        if self.cache_backend not in CACHE_BACKENDS:
            raise ValueError(
                f"unknown cache backend {self.cache_backend!r} "
                f"(known: {CACHE_BACKENDS})")
        if self.executor == "pool" and self.concurrency <= 1:
            raise ValueError(
                f"executor='pool' needs concurrency > 1 worker processes "
                f"(got concurrency={self.concurrency}); raise concurrency or "
                f"pick executor='serial'/'wave'")
        if self.executor == "serial" and self.concurrency > 1:
            raise ValueError(
                f"executor='serial' contradicts concurrency={self.concurrency} "
                f"(workers would never be used); drop one of the two settings")
        if self.incremental and self.executor == "wave":
            raise ValueError(
                f"incremental=True contradicts executor='wave' (speculative "
                f"waves cancel the later pairs of doomed functions, but those "
                f"are the pairs the incremental diff already skipped); pick "
                f"executor='serial'/'pool'/'steal' or drop incremental")
        if self.analysis_cache_size < 0:
            raise ValueError("analysis_cache_size must be >= 0 (0 = unbounded)")
        if self.cache_max_bytes < 0:
            raise ValueError("cache_max_bytes must be >= 0 (0 = unbounded)")
        if not 0 <= self.service_port <= 65535:
            raise ValueError(
                f"service_port must be a TCP port in [0, 65535] "
                f"(got {self.service_port}); 0 picks an ephemeral port")
        if self.max_inflight < 0:
            raise ValueError(
                "max_inflight must be >= 0 (0 = reject every request)")
        if self.request_timeout < 0:
            raise ValueError("request_timeout must be >= 0 (0 = unbounded)")
        if self.pair_timeout < 0:
            raise ValueError("pair_timeout must be >= 0 (0 = unbounded)")
        if self.max_pair_retries < 0:
            raise ValueError(
                "max_pair_retries must be >= 0 (0 = quarantine on first kill)")
        if self.steal_transport not in STEAL_TRANSPORTS:
            raise ValueError(
                f"unknown steal transport {self.steal_transport!r} "
                f"(known: {STEAL_TRANSPORTS})")
        if self.steal_transport == "tcp" and self.executor != "steal":
            raise ValueError(
                f"steal_transport='tcp' needs executor='steal' "
                f"(got executor={self.executor!r}); the other backends have "
                f"no steal queue to put on the wire")
        if self.steal_listen is not None and self.steal_transport != "tcp":
            raise ValueError(
                f"steal_listen={self.steal_listen!r} needs "
                f"steal_transport='tcp' (the pipe transport never binds a "
                f"socket)")
        if self.steal_connect is not None and self.steal_listen is not None:
            raise ValueError(
                f"steal_connect={self.steal_connect!r} contradicts "
                f"steal_listen={self.steal_listen!r}: a process either hosts "
                f"the served proof store or consults one, not both")
        for name in ("steal_listen", "steal_connect"):
            value = getattr(self, name)
            if value is not None and ":" not in value:
                raise ValueError(
                    f"{name} must be 'HOST:PORT' (got {value!r})")

    def with_rules(self, rule_groups) -> "ValidatorConfig":
        """A copy of this configuration with different rule groups."""
        return replace(self, rule_groups=tuple(rule_groups))

    def with_engine(self, engine: str) -> "ValidatorConfig":
        """A copy of this configuration with a different normalization engine."""
        return replace(self, engine=engine)

    def with_executor(self, executor: str, concurrency: Optional[int] = None
                      ) -> "ValidatorConfig":
        """A copy with a different scheduling backend (and optionally workers)."""
        if concurrency is None:
            concurrency = self.concurrency
        return replace(self, executor=executor, concurrency=concurrency)

    def with_cache_dir(self, cache_dir: Optional[str]) -> "ValidatorConfig":
        """A copy of this configuration with a different persistent cache dir."""
        return replace(self, cache_dir=cache_dir)


#: The default configuration (all rules, combined matcher).
DEFAULT_CONFIG = ValidatorConfig()

__all__ = [
    "ValidatorConfig",
    "DEFAULT_CONFIG",
    "EXECUTORS",
    "STEAL_TRANSPORTS",
    "CACHE_BACKENDS",
    "GVN_ABLATION_STEPS",
    "SCCP_ABLATION_STEPS",
    "LICM_ABLATION_STEPS",
]
