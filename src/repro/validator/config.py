"""Validator configuration: rule sets, matcher choice, resource limits.

The configuration exists mostly so the experiments can reproduce the
paper's rule-set ablations: Figure 6 adds rule groups to GVN one at a
time, Figure 8 does the same for SCCP, and Figure 7 compares LICM with no
rules against all rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..vgraph.rules import ALL_RULE_GROUPS

#: Cumulative rule sets used for the GVN ablation (paper Figure 6).
GVN_ABLATION_STEPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("no rules", ()),
    ("+ phi simplification", ("phi",)),
    ("+ constant folding", ("phi", "constfold", "boolean")),
    ("+ load/store simplification", ("phi", "constfold", "boolean", "loadstore")),
    ("+ eta simplification", ("phi", "constfold", "boolean", "loadstore", "eta")),
    ("+ commuting rules", ("phi", "constfold", "boolean", "loadstore", "eta", "commuting")),
)

#: Rule sets used for the SCCP ablation (paper Figure 8).
SCCP_ABLATION_STEPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("no rules", ()),
    ("constant folding", ("constfold", "boolean")),
    ("+ phi simplification", ("constfold", "boolean", "phi")),
    ("all rules", tuple(ALL_RULE_GROUPS)),
)

#: Rule sets used for the LICM ablation (paper Figure 7).
LICM_ABLATION_STEPS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("no rules", ()),
    ("all rules", tuple(ALL_RULE_GROUPS)),
)


@dataclass(frozen=True)
class ValidatorConfig:
    """Settings for one validation run.

    Attributes
    ----------
    rule_groups:
        Normalization rule groups to enable (default: all of them).
    matcher:
        Cycle-matching strategy: ``"simple"``, ``"partition"`` or
        ``"combined"`` (default, as in the paper §5.4).
    max_iterations:
        Bound on normalization rounds.
    recursion_limit:
        Python recursion limit installed while building value graphs
        (symbolic evaluation is recursive over the SSA def-use chains).
    """

    rule_groups: Tuple[str, ...] = tuple(ALL_RULE_GROUPS)
    matcher: str = "combined"
    max_iterations: int = 25
    recursion_limit: int = 50_000

    def with_rules(self, rule_groups) -> "ValidatorConfig":
        """A copy of this configuration with different rule groups."""
        return ValidatorConfig(
            rule_groups=tuple(rule_groups),
            matcher=self.matcher,
            max_iterations=self.max_iterations,
            recursion_limit=self.recursion_limit,
        )


#: The default configuration (all rules, combined matcher).
DEFAULT_CONFIG = ValidatorConfig()

__all__ = [
    "ValidatorConfig",
    "DEFAULT_CONFIG",
    "GVN_ABLATION_STEPS",
    "SCCP_ABLATION_STEPS",
    "LICM_ABLATION_STEPS",
]
