"""``python -m repro.validator.scheduler.worker`` — join a steal coordinator.

The remote half of the TCP steal transport: point one or more of these
at a coordinator (a batch run with ``steal_transport="tcp"``) and they
pull work items off its shared queue, consulting the coordinator's
served proof store for pair verdicts.  Workers join and leave
dynamically; ``--reconnect`` keeps a worker serving across the
per-batch coordinator restarts of a sweep.

Two-terminal loopback example::

    # terminal 1: the fleet (any number of these, any time)
    PYTHONPATH=src python -m repro.validator.scheduler.worker \\
        --connect 127.0.0.1:8742 --reconnect

    # terminal 2: a batch run that listens for it
    PYTHONPATH=src python - <<'PY'
    from dataclasses import replace
    from repro.bench.corpus import BENCHMARKS_BY_NAME, build_corpus
    from repro.transforms import PAPER_PIPELINE
    from repro.validator import DEFAULT_CONFIG
    from repro.validator.driver import validate_module_batch

    config = replace(DEFAULT_CONFIG, executor="steal", concurrency=2,
                     steal_transport="tcp", steal_listen="127.0.0.1:8742")
    module = build_corpus(BENCHMARKS_BY_NAME["gcc"], 0.2)
    [(_, report)] = validate_module_batch([module], PAPER_PIPELINE,
                                          config=config)
    print(report.shard_stats)
    PY
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .remote import run_worker


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validator.scheduler.worker",
        description="Remote worker for the TCP work-stealing transport.")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to join")
    parser.add_argument("--reconnect", action="store_true",
                        help="rejoin after the coordinator closes or refuses "
                             "(serves every batch of a sweep on a fixed port)")
    parser.add_argument("--patience", type=float, default=30.0,
                        help="seconds without a reachable coordinator before "
                             "giving up (default 30)")
    parser.add_argument("--no-store", action="store_true",
                        help="do not consult the coordinator's served proof "
                             "store (validate every pair locally)")
    parser.add_argument("--fingerprint", default=None,
                        help="override the config fingerprint sent in the "
                             "handshake (testing only)")
    parser.add_argument("--schema", type=int, default=None,
                        help="override the transport schema version sent in "
                             "the handshake (testing only)")
    args = parser.parse_args(argv)
    served = run_worker(args.connect, reconnect=args.reconnect,
                        patience=args.patience, use_store=not args.no_store,
                        fingerprint=args.fingerprint, schema=args.schema)
    print(f"worker done: served {served} items")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
