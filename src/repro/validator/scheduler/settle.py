"""Settlement: reassemble per-function records from work-item outcomes.

The settlement layer answers *what the outcomes mean*: it replays every
:class:`~repro.validator.scheduler.plan.FunctionPlan` through the same
strategy runners the lazy serial driver uses (:func:`run_whole`,
:func:`run_stepwise`, :func:`run_bisect`), reading verdicts back out of
the shared :class:`~repro.validator.cache.ValidationCache` the executor
filled, and rebuilds the result modules.  Because the runners are shared,
every backend — serial, pool, wave — produces byte-identical
:meth:`~repro.validator.report.FunctionRecord.signature`\\ s by
construction; the executors only decide *which* queries were validated
where (and the provider validates any stragglers the rounds could not
anticipate — bisect probes, chain verdicts censored beyond another
function's consumed prefix — inline).

:func:`settle_chain_results` also lives here: turning a chain item's raw
read-off verdicts into cache-safe ones (censoring unconfirmed rejects
beyond the consumed prefix) is settlement policy, shared by the pool
workers and any future remote backend.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ...analysis.manager import AnalysisManager, CHECKPOINT_FINGERPRINTS
from ...ir.cloning import clone_function
from ...ir.module import Function, Module
from ...transforms.pass_manager import PassSnapshot
from ..cache import ValidationCache
from ..config import ValidatorConfig
from ..report import FunctionRecord, ValidationReport
from ..validate import (UNCACHEABLE_REASONS, ChainOutcome, ValidationResult,
                        validate, validate_bounded)
from .budget import RequestBudget
from .plan import PairProvider, WorkPlan


def merge_stats(results: Sequence[ValidationResult]) -> Dict[str, int]:
    """Sum the integer normalization counters of several results."""
    totals: Dict[str, int] = {}
    for result in results:
        for key, value in result.stats.items():
            totals[key] = totals.get(key, 0) + int(value)
    return totals


def run_whole(
    function: Function,
    optimized: Function,
    provider: PairProvider,
    record: FunctionRecord,
) -> Function:
    """The paper's strategy: one query over the composed pipeline."""
    record.result, record.from_cache = provider(function, optimized)
    if record.result.is_success:
        record.kept_prefix = record.changed_steps
        return optimized
    return function


def run_stepwise(
    function: Function,
    versions: List[Function],
    steps: List[PassSnapshot],
    provider: PairProvider,
    record: FunctionRecord,
) -> Function:
    """Validate adjacent checkpoint pairs; keep the longest proved prefix."""
    results: List[ValidationResult] = []
    hits: List[bool] = []
    failed_index: Optional[int] = None
    for index, step in enumerate(steps):
        result, hit = provider(versions[index], versions[index + 1])
        record.pass_verdicts[step.pass_name] = result
        results.append(result)
        hits.append(hit)
        if not result.is_success:
            failed_index = index
            break

    elapsed = sum(result.elapsed for result in results)
    if failed_index is None:
        record.kept_prefix = len(steps)
        record.from_cache = all(hits)
        record.result = ValidationResult(
            function.name, True, "stepwise-equal", elapsed=elapsed,
            graph_nodes=max(result.graph_nodes for result in results),
            stats=merge_stats(results),
        )
        return versions[-1]

    # A checkpoint pair was rejected.  That does not prove the composition
    # invalid (pass i+1 may undo pass i, making the pair *harder* than the
    # whole), so try the whole query before settling for the prefix —
    # this is what makes stepwise accept a superset of whole.  With a
    # single changed step the failing pair *is* the whole pair: reuse its
    # verdict instead of validating the identical query a second time.
    if len(steps) == 1:
        whole_result, whole_hit = results[failed_index], hits[failed_index]
    else:
        whole_result, whole_hit = provider(versions[0], versions[-1])
    if whole_result.is_success:
        record.whole_fallback = True
        record.kept_prefix = len(steps)
        record.from_cache = whole_hit
        record.result = replace(whole_result, elapsed=elapsed + whole_result.elapsed)
        return versions[-1]

    failing = results[failed_index]
    record.blamed_pass = steps[failed_index].pass_name
    record.kept_prefix = failed_index
    record.from_cache = all(hits) and whole_hit
    record.result = ValidationResult(
        function.name, False, failing.reason,
        elapsed=elapsed + whole_result.elapsed,
        graph_nodes=failing.graph_nodes,
        stats=merge_stats(results + [whole_result]),
        detail=(f"pass '{record.blamed_pass}' "
                f"(changed step {failed_index + 1}/{len(steps)}) rejected; "
                f"kept the {failed_index}-step validated prefix\n{failing.detail}"),
    )
    return versions[failed_index]


def run_bisect(
    function: Function,
    versions: List[Function],
    steps: List[PassSnapshot],
    provider: PairProvider,
    record: FunctionRecord,
) -> Function:
    """Whole query first; on rejection, bisect the checkpoints for blame."""
    whole_result, whole_hit = provider(versions[0], versions[-1])
    record.from_cache = whole_hit
    record.pass_verdicts[steps[-1].pass_name] = whole_result
    if whole_result.is_success:
        record.kept_prefix = len(steps)
        record.result = whole_result
        return versions[-1]

    # versions[0] vs itself trivially validates, versions[-1] was just
    # rejected: binary-search for the first checkpoint whose composed
    # effect no longer validates against the original and blame the pass
    # that produced it.  (Like any bisection this assumes prefix verdicts
    # are monotone — true for a persistent miscompilation.)
    probes: List[ValidationResult] = [whole_result]
    lo, hi = 0, len(steps)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        result, _ = provider(versions[0], versions[mid])
        probes.append(result)
        record.pass_verdicts[steps[mid - 1].pass_name] = result
        if result.is_success:
            lo = mid
        else:
            hi = mid

    record.blamed_pass = steps[hi - 1].pass_name
    record.kept_prefix = lo
    record.result = ValidationResult(
        function.name, False, whole_result.reason,
        elapsed=sum(result.elapsed for result in probes),
        graph_nodes=whole_result.graph_nodes,
        stats=merge_stats(probes),
        detail=(f"bisected the rejection to pass '{record.blamed_pass}' "
                f"(changed step {hi}/{len(steps)}); "
                f"kept the {lo}-step validated prefix\n{whole_result.detail}"),
    )
    return versions[lo]


def settle_chain_results(outcome: ChainOutcome, versions: Sequence[Function],
                         config: ValidatorConfig,
                         ) -> Tuple[List[Optional[ValidationResult]],
                                    Optional[ValidationResult]]:
    """Turn raw chain verdicts into cache-safe verdicts.

    Raw accepts are exact and kept, and when the chain's rejections are
    authoritative too (``rejects_trusted``: a natural normalization
    fixpoint, and no rejecting pair holds a store only its isolated pair
    graph could prune) everything is cacheable as-is.  Otherwise —
    normalization cut off by the iteration bound, or the union-scoped
    store pruning missing a prune an isolated pair graph performs — the
    rejects on the *consumed prefix* (up to and including the first pair
    the stepwise walk would stop at) are re-checked with an isolated
    per-pair validation — the verdict the per-pair strategy would
    produce — and rejects beyond the consumed prefix are censored to
    ``None``: the walk never consumes them for this function, and caching
    an unconfirmed reject could poison another function whose walk *does*
    consume that content pair.  The whole (original, final) verdict gets
    the same treatment.

    Returns ``(pair_verdicts, whole_verdict)``.
    """
    if outcome.fallback:
        # Every pair result already is an isolated per-pair verdict; the
        # whole query is left to the executor's settle round.
        return list(outcome.pair_results), None
    if outcome.rejects_trusted:
        return list(outcome.pair_results), outcome.whole_result
    settled: List[Optional[ValidationResult]] = []
    failed = False
    for index, result in enumerate(outcome.pair_results):
        if result.is_success:
            settled.append(result)
            continue
        if failed:
            settled.append(None)
            continue
        rechecked = validate(versions[index], versions[index + 1], config)
        settled.append(rechecked)
        if not rechecked.is_success:
            failed = True
    whole = outcome.whole_result
    if whole is not None and not whole.is_success:
        whole = validate(versions[0], versions[-1], config) if failed else None
    return settled, whole


def remap_globals(function: Function, global_map: Dict) -> None:
    """Re-point a kept optimized body at the result module's global clones."""
    if not global_map:
        return
    for inst in function.instructions():
        for index, operand in enumerate(inst.operands):
            replacement = global_map.get(operand)
            if replacement is not None:
                inst.operands[index] = replacement


def remap_function_refs(result_module: Module) -> None:
    """Re-point call operands at the result module's own function objects.

    Cloned bodies initially share callee :class:`Function` references with
    the input module; rebinding them by name completes the driver's
    no-shared-mutable-structure guarantee (mutating the input module's
    functions can never change the result module's behavior).
    """
    by_name = result_module.functions
    for function in result_module.functions.values():
        for inst in function.instructions():
            for index, operand in enumerate(inst.operands):
                if isinstance(operand, Function):
                    replacement = by_name.get(operand.name)
                    if replacement is not None and replacement is not operand:
                        inst.operands[index] = replacement


def settle_plan(plan: WorkPlan, cache: ValidationCache, execution,
                manager: AnalysisManager,
                budget: Optional[RequestBudget] = None,
                ) -> Tuple[List[Tuple[Module, ValidationReport]], int]:
    """Assemble result modules and reports from the executed plan.

    Replays every function plan through the strategy runners against a
    cache-backed provider.  The first consumer of a freshly validated
    pair pays for it (a miss); every further consumption of the same key
    — within a module, across modules, or from an earlier batch / the
    disk backend — is a cache hit, so totals count each query exactly
    once.  Queries the executor could not anticipate (bisect probes,
    chain verdicts censored beyond another function's consumed prefix,
    pairs a wave backend cancelled but another strategy path still asks
    for) validate inline through the bounded analysis ``manager``.

    With a ``budget``, inline validation the budget no longer admits is
    answered with a synthetic :data:`~repro.validator.scheduler.budget.BUDGET_EXHAUSTED`
    rejection — never cached, never counted in the hit/miss ledger — so
    the record's stepwise walk stops there and salvages its validated
    ``kept_prefix``.  Cached verdicts keep answering for free.

    Returns ``(results, inline_validations)`` with ``results`` in input
    module order.
    """
    config = plan.config
    fresh = execution.fresh
    consumed: set = set()
    inline_validations = 0
    # Every version the runners can hand the provider was fingerprinted at
    # planning time; the memo keeps assembly from re-printing/re-hashing
    # per pair (ids stay unambiguous because the plans pin the versions
    # alive).
    fingerprint_memo: Dict[int, str] = {}
    for function_plan in plan.function_plans():
        for version, fingerprint in zip(function_plan.versions,
                                        function_plan.fingerprints):
            fingerprint_memo[id(version)] = fingerprint

    def _fingerprint(function: Function) -> str:
        memoized = fingerprint_memo.get(id(function))
        if memoized is not None:
            return memoized
        return CHECKPOINT_FINGERPRINTS.fingerprint(function)

    def provider(before: Function, after: Function) -> Tuple[ValidationResult, bool]:
        nonlocal inline_validations
        key = cache.key_for(_fingerprint(before), _fingerprint(after), config)
        stored = cache.peek(key)
        if stored is None:
            denied = getattr(execution, "denied", {}).get(key)
            if denied is not None:
                # Executed but denied (timeout/quarantine): uncached and
                # unledgered like a budget denial — the walk stops here
                # and the record keeps its validated prefix.
                return replace(denied, function_name=before.name), False
            if budget is not None and budget.exhausted:
                # Synthetic denial: uncached, unledgered — the walk stops
                # here and the record keeps its validated prefix.
                return budget.result(before.name), False
            result = validate_bounded(before, after, config, manager=manager)
            if result.reason in UNCACHEABLE_REASONS:
                # An inline validation can time out too; remember the
                # denial so a second consumer of the same key neither
                # re-runs into the timeout nor touches the ledger.
                getattr(execution, "denied", {})[key] = result
                return result, False
            if budget is not None:
                budget.charge()
            cache.put(key, result)
            cache.misses += 1
            inline_validations += 1
            fresh.add(key)
            consumed.add(key)
            return result, False
        if key in fresh and key not in consumed:
            cache.misses += 1
            hit = False
        else:
            cache.hits += 1
            hit = True
        consumed.add(key)
        return replace(stored, function_name=before.name), hit

    results: List[Tuple[Module, ValidationReport]] = []
    for module_plan in plan.modules:
        for function_plan in module_plan.work:
            chain_stats = execution.chain_stats_by_signature.pop(
                function_plan.chain_signature, None)
            if chain_stats is not None:
                # Attached to the (first) function whose chain item
                # actually ran — the same function whose lazy chain the
                # serial path would have built.
                function_plan.record.chain_stats = chain_stats
            if plan.strategy == "whole":
                kept = run_whole(function_plan.function, function_plan.versions[-1],
                                 provider, function_plan.record)
            elif plan.strategy == "stepwise":
                kept = run_stepwise(function_plan.function, function_plan.versions,
                                    function_plan.steps, provider,
                                    function_plan.record)
            else:
                kept = run_bisect(function_plan.function, function_plan.versions,
                                  function_plan.steps, provider,
                                  function_plan.record)
            if kept is function_plan.function:
                module_plan.result_module.add_function(
                    clone_function(function_plan.function,
                                   value_map=module_plan.global_map))
            else:
                remap_globals(kept, module_plan.global_map)
                module_plan.result_module.add_function(kept)
        remap_function_refs(module_plan.result_module)
        results.append((module_plan.result_module, module_plan.report))
    return results, inline_validations


__all__ = [
    "merge_stats",
    "run_whole",
    "run_stepwise",
    "run_bisect",
    "settle_chain_results",
    "settle_plan",
    "remap_globals",
    "remap_function_refs",
]
