"""The batch-validation scheduling subsystem: plan → execute → settle.

Three layers with one-way dependencies, so each can evolve (or be
replaced — e.g. by a cross-host transport behind the work-stealing
backend) independently:

:mod:`~repro.validator.scheduler.plan`
    *What to run.*  Pure, deterministic work-item generation: optimize,
    dedup by content key, chain-vs-pair amortization, cache consultation
    — producing a :class:`WorkPlan`.
:mod:`~repro.validator.scheduler.executors`
    *How to run it.*  The :class:`Executor` backends — serial,
    process-pool, speculative pipeline-wave, work-stealing (fed by the
    process plumbing in :mod:`~repro.validator.scheduler.steal`) — plus
    the lazy providers the per-function serial driver validates through.
    Every backend produces byte-identical record signatures.
:mod:`~repro.validator.scheduler.settle`
    *What it means.*  Strategy runners reassembling
    :class:`~repro.validator.report.FunctionRecord`\\ s (verdicts, blame,
    kept prefixes) from item outcomes, shared by every execution path.
"""

from .budget import (
    BUDGET_EXHAUSTED,
    RequestBudget,
    admit_work,
    is_budget_result,
)
from .executors import (
    ExecutionOutcome,
    Executor,
    PoolExecutor,
    SerialExecutor,
    StealExecutor,
    WaveExecutor,
    chain_provider,
    create_executor,
    serial_provider,
    validate_pair_cached,
)
from .plan import (
    ChainSignature,
    FunctionPlan,
    ModulePlan,
    PairProvider,
    PipelineDiff,
    WorkPlan,
    build_plan,
    chain_amortizes,
    diff_plan,
    pending_whole_queries,
    resolved_executor,
)
from .settle import (
    merge_stats,
    remap_function_refs,
    remap_globals,
    run_bisect,
    run_stepwise,
    run_whole,
    settle_chain_results,
    settle_plan,
)

__all__ = [
    "BUDGET_EXHAUSTED",
    "RequestBudget",
    "admit_work",
    "is_budget_result",
    "PairProvider",
    "ChainSignature",
    "FunctionPlan",
    "ModulePlan",
    "WorkPlan",
    "PipelineDiff",
    "build_plan",
    "diff_plan",
    "pending_whole_queries",
    "chain_amortizes",
    "resolved_executor",
    "Executor",
    "ExecutionOutcome",
    "SerialExecutor",
    "PoolExecutor",
    "WaveExecutor",
    "StealExecutor",
    "create_executor",
    "serial_provider",
    "chain_provider",
    "validate_pair_cached",
    "merge_stats",
    "run_whole",
    "run_stepwise",
    "run_bisect",
    "settle_chain_results",
    "settle_plan",
    "remap_globals",
    "remap_function_refs",
]
