"""Pure, deterministic work-item planning for batch validation.

The planning layer answers *what to run*: it optimizes every selected
function of every module, derives the content-keyed validation queries
each function's strategy will consume — whole (original, final) pairs, or
every per-pass adjacent checkpoint pair under ``"stepwise"`` — and
deduplicates them against each other and against the shared
:class:`~repro.validator.cache.ValidationCache` into a :class:`WorkPlan`.
Multi-step stepwise functions are packed into single *chain* work items
when enough of their pairs are uncached to amortize building the
chain-shared value graph (:func:`chain_amortizes`, the same policy the
serial driver's lazy chain provider applies).

Planning performs **no validation**: everything here is a deterministic
function of the input modules, the configuration and the cache contents,
so any :mod:`executor backend <repro.validator.scheduler.executors>` —
serial, process-pool, speculative wave scheduling, or work stealing —
can execute the same plan and the settlement layer (:mod:`repro.validator.scheduler.settle`)
reassembles byte-identical :class:`~repro.validator.report.FunctionRecord`
signatures from the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...analysis.manager import CHECKPOINT_FINGERPRINTS
from ...ir.cloning import clone_function, clone_globals_into
from ...ir.module import Function, Module
from ...ir.values import Value
from ...transforms.pass_manager import PAPER_PIPELINE, PassManager, PassSnapshot, checkpoint_chain
from ..cache import CacheKey, ValidationCache
from ..config import DEFAULT_CONFIG, ValidatorConfig
from ..report import FunctionRecord, ValidationReport
from ..validate import ValidationResult

#: A pair provider: answers one ``(before, after)`` validation query,
#: returning ``(result, was_answered_from_cache)``.  The strategy runners
#: in :mod:`repro.validator.scheduler.settle` are written against this
#: interface, so the lazy serial path and the batch assembly path settle
#: records through identical code.
PairProvider = Callable[[Function, Function], Tuple[ValidationResult, bool]]

#: Identity of one chain work item: the tuple of its adjacent-pair cache
#: keys.  Content-identical chains are planned (and validated) once,
#: exactly like content-identical pairs.
ChainSignature = Tuple[CacheKey, ...]


def resolved_executor(config: ValidatorConfig) -> str:
    """The concrete backend ``config.executor`` selects.

    ``"auto"`` preserves the historical behavior: a process pool whenever
    ``concurrency > 1``, serial in-process execution otherwise.  Explicit
    choices pass through (their concurrency combinations were already
    validated at config construction time).
    """
    if config.executor == "auto":
        return "pool" if config.concurrency and config.concurrency > 1 else "serial"
    return config.executor


def chain_amortizes(missing_pairs: int, versions: int) -> bool:
    """Does building the chain beat validating the misses in isolation?

    The chain translates all ``versions`` checkpoints once; the per-pair
    path translates two per uncached pair — so the chain pays off
    roughly when ``2 × misses >= k``.  The serial lazy provider and the
    batch planner share this policy so both drivers choose chain vs
    straggler identically for the same cache state.
    """
    return 2 * missing_pairs >= versions


class FunctionPlan:
    """One function's planned validation work: versions, keys, record."""

    __slots__ = ("function", "record", "versions", "steps", "fingerprints",
                 "pair_keys", "whole_key")

    def __init__(self, function: Function, record: FunctionRecord,
                 versions: List[Function], steps: Optional[List[PassSnapshot]],
                 fingerprints: List[str], pair_keys: List[CacheKey],
                 whole_key: CacheKey) -> None:
        self.function = function
        self.record = record
        self.versions = versions
        self.steps = steps
        #: Content fingerprint of each version, computed once at planning
        #: time and reused by assembly-time key derivation.
        self.fingerprints = fingerprints
        #: Round-1 keys, in validation order (adjacent pairs under
        #: stepwise; the single whole pair otherwise).  Wave scheduling
        #: reads a function's pipeline-position demand off this list.
        self.pair_keys = pair_keys
        #: Key of the (original, final) pair — stepwise's whole-query
        #: fallback, executed as the settle round.
        self.whole_key = whole_key

    @property
    def chain_signature(self) -> ChainSignature:
        return tuple(self.pair_keys)


@dataclass
class ModulePlan:
    """One module's share of a batch: the result skeleton plus work items."""

    module: Module
    result_module: Module
    report: ValidationReport
    #: Input-module global -> result-module clone, used when re-homing
    #: kept (or rolled-back) function bodies into the result module.
    global_map: Dict[Value, Value]
    work: List[FunctionPlan] = field(default_factory=list)


@dataclass
class WorkPlan:
    """Everything an executor needs to run one batch, and nothing more.

    The plan is *pure data*: deduplicated content-keyed work items plus
    the per-function plans the settlement layer will replay them into.
    Executors consume ``pending`` / ``pending_chains`` (and, for wave
    scheduling, the per-function ``pair_keys`` order); they never touch
    planning or settlement logic, which is what lets a future multi-host
    work-stealing backend drop in behind the same interface.
    """

    strategy: str
    config: ValidatorConfig
    #: Resolved backend name
    #: (``"serial"`` | ``"pool"`` | ``"wave"`` | ``"steal"``).
    executor: str
    modules: List[ModulePlan]
    #: Deduplicated uncached pair queries: key -> (before, after).
    pending: Dict[CacheKey, Tuple[Function, Function]]
    #: Deduplicated chain work items: signature -> (versions, whole key).
    pending_chains: Dict[ChainSignature, Tuple[List[Function], CacheKey]]

    def function_plans(self) -> Iterator[FunctionPlan]:
        for module_plan in self.modules:
            yield from module_plan.work


def build_plan(
    modules: Sequence[Module],
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    cache: Optional[ValidationCache] = None,
    labels: Optional[Sequence[str]] = None,
    strategy: str = "stepwise",
    function_names: Optional[Sequence[Optional[Iterable[str]]]] = None,
) -> WorkPlan:
    """Optimize everything and plan the deduplicated validation queries.

    Whole/bisect plan the (original, final) pair; stepwise plans every
    adjacent checkpoint pair — packed as ONE chain work item per
    multi-step function when ``config.chain_graphs`` is on and enough
    pairs are uncached to amortize it (:func:`chain_amortizes`), so a
    worker builds all of that function's checkpoints into one shared
    graph and normalizes it once instead of once per pair.  Under the
    ``"wave"`` backend chain packing is skipped: waves exist to *cancel*
    the doomed later pairs of rejecting functions, which a monolithic
    chain item cannot do (the chain-vs-per-pair parity guard proves the
    verdicts identical either way).  The ``"steal"`` backend keeps chain
    packing — its shared queue carries chain and pair items side by side,
    and its streaming cancellation applies to the pair items — which is
    exactly the straggler scenario stealing exists for: one worker rides
    the long chain item while the rest drain the pairs.  Fingerprints
    are computed once per version and shared by all keys derived from
    them.
    """
    config = config or DEFAULT_CONFIG
    if cache is None:
        cache = ValidationCache()
    executor = resolved_executor(config)
    chain_mode = (strategy == "stepwise" and config.chain_graphs
                  and executor != "wave")
    module_plans: List[ModulePlan] = []
    pending: Dict[CacheKey, Tuple[Function, Function]] = {}
    pending_chains: Dict[ChainSignature, Tuple[List[Function], CacheKey]] = {}
    #: Phase-2 classification input: (pair_keys, pair_versions, versions)
    #: per planned function, in plan order.  Classification is deferred
    #: until every key is known so a batched store (the remote proof
    #: store) answers the whole batch's peeks in ONE round trip.
    classify: List[Tuple[List[CacheKey], List[Tuple[Function, Function]],
                         List[Function]]] = []
    for index, module in enumerate(modules):
        label = labels[index] if labels is not None else module.name
        selected: Optional[set] = None
        if function_names is not None and function_names[index] is not None:
            selected = set(function_names[index])
        report = ValidationReport(label=label)
        result_module = Module(module.name)
        global_map = clone_globals_into(module, result_module)
        work: List[FunctionPlan] = []
        for function in module.functions.values():
            if function.is_declaration or (selected is not None and function.name not in selected):
                result_module.add_function(clone_function(function, value_map=global_map))
                continue
            record = FunctionRecord(name=function.name, strategy=strategy)
            if strategy == "whole":
                optimized = clone_function(function)
                record.transformed_by = PassManager(passes).run_on_function(optimized)
                report.add(record)
                if not record.transformed:
                    result_module.add_function(clone_function(function, value_map=global_map))
                    continue
                steps = None
                versions = [function, optimized]
                fingerprints = [CHECKPOINT_FINGERPRINTS.fingerprint(function),
                                CHECKPOINT_FINGERPRINTS.remember(optimized)]
            else:
                snapshots = PassManager(passes).run_with_snapshots(function)
                record.transformed_by = {snap.pass_name: snap.changed
                                         for snap in snapshots}
                report.add(record)
                if not record.transformed:
                    result_module.add_function(clone_function(function, value_map=global_map))
                    continue
                steps, versions = checkpoint_chain(function, snapshots)
                fingerprints = [CHECKPOINT_FINGERPRINTS.fingerprint(function)]
                fingerprints += [snap.fingerprint() for snap in steps]
            whole_key = cache.key_for(fingerprints[0], fingerprints[-1], config)
            if strategy == "stepwise":
                pair_keys = [cache.key_for(fingerprints[i], fingerprints[i + 1], config)
                             for i in range(len(versions) - 1)]
                pair_versions = list(zip(versions, versions[1:]))
            else:
                pair_keys = [whole_key]
                pair_versions = [(versions[0], versions[-1])]
            classify.append((pair_keys, pair_versions, versions))
            work.append(FunctionPlan(function, record, versions, steps,
                                     fingerprints, pair_keys, whole_key))
        module_plans.append(ModulePlan(module, result_module, report, global_map, work))
    # Phase 2: one batched fault of every candidate key (pairs now, whole
    # fallbacks for the settle round's peeks), then classify.  For the
    # in-memory/json/sqlite backends prefetch is a no-op and the peeks
    # below behave exactly as before.
    cache.prefetch([key
                    for function_plan in (fp for mp in module_plans
                                          for fp in mp.work)
                    for key in function_plan.pair_keys + [function_plan.whole_key]])
    for classify_index, function_plan in enumerate(
            fp for mp in module_plans for fp in mp.work):
        pair_keys, pair_versions, versions = classify[classify_index]
        whole_key = function_plan.whole_key
        if chain_mode and len(pair_keys) >= 2:
            # One packed work item covers every adjacent pair of this
            # function — but only when enough pairs still need
            # validating to amortize it: the chain translates all k
            # versions once while the per-pair path translates two
            # per miss, so with a warm cache and a straggler or two
            # the misses ship as plain pair items instead (and a
            # fully cached chain costs nothing, exactly like the
            # serial path's lazy chain construction).
            missing = [(key, pair)
                       for key, pair in zip(pair_keys, pair_versions)
                       if cache.peek(key) is None]
            if chain_amortizes(len(missing), len(versions)):
                chain_signature = tuple(pair_keys)
                if chain_signature not in pending_chains:
                    pending_chains[chain_signature] = (versions, whole_key)
            else:
                for key, (before, after) in missing:
                    if key not in pending:
                        pending[key] = (before, after)
        else:
            for key, (before, after) in zip(pair_keys, pair_versions):
                if cache.peek(key) is None and key not in pending:
                    pending[key] = (before, after)
    return WorkPlan(strategy=strategy, config=config, executor=executor,
                    modules=module_plans, pending=pending,
                    pending_chains=pending_chains)


@dataclass
class PipelineDiff:
    """What changed between two checkpoint chains of the same function.

    Produced by :func:`diff_plan` and consumed by the incremental
    revalidator (:mod:`repro.validator.watch`): pairs whose endpoints
    both carry fingerprints the previous run already validated keep their
    previous cache keys (*adopted* — never re-derived) and are settled
    straight from the cache; only :attr:`dirty_pairs` need any graph
    work.
    """

    #: Content fingerprint of every version of the *new* chain.
    fingerprints: List[str]
    #: Cache key of every adjacent pair of the new chain, in validation
    #: order.  Unchanged pairs carry the previous run's key object.
    pair_keys: List[CacheKey]
    #: Number of leading versions shared (by content) with the old chain.
    common_prefix: int
    #: Pair indices whose both endpoints match the old chain positionally
    #: — their verdicts are adopted from the previous plan/cache.
    unchanged_pairs: List[int]
    #: Pair indices with at least one changed endpoint — the only pairs
    #: that need validation work.
    dirty_pairs: List[int]

    @property
    def fully_unchanged(self) -> bool:
        return not self.dirty_pairs


def diff_plan(old_fingerprints: Sequence[str],
              new_fingerprints: Sequence[str],
              config: Optional[ValidatorConfig] = None,
              cache: Optional[ValidationCache] = None,
              old_pair_keys: Optional[Sequence[CacheKey]] = None,
              ) -> PipelineDiff:
    """Diff two checkpoint chains into adopted and dirty pair work.

    ``old_fingerprints`` describe the previous run's version chain (the
    original followed by every changed checkpoint — what
    :func:`~repro.transforms.pass_manager.checkpoint_chain` produced,
    fingerprinted through the shared
    :data:`~repro.analysis.manager.CHECKPOINT_FINGERPRINTS` table);
    ``new_fingerprints`` the current run's.  A pair of the new chain is
    *unchanged* when both its endpoints match the old chain at the same
    positions — which covers the longest-common-prefix case (a pure
    pipeline-suffix tweak) and re-convergent tails (a middle pass edit
    whose downstream checkpoints hash identically).  Unchanged pairs
    adopt the previous plan's cache keys verbatim when ``old_pair_keys``
    is supplied (no re-keying); dirty pairs get fresh keys from
    ``cache.key_for``.  Like :func:`build_plan` this performs no
    validation — it is a pure function of fingerprints, configuration
    and the previous plan.
    """
    config = config or DEFAULT_CONFIG
    key_for = (cache.key_for if cache is not None
               else ValidationCache.key_for)
    new_fingerprints = list(new_fingerprints)
    old_fingerprints = list(old_fingerprints)
    common_prefix = 0
    for old_fp, new_fp in zip(old_fingerprints, new_fingerprints):
        if old_fp != new_fp:
            break
        common_prefix += 1
    pair_count = max(len(new_fingerprints) - 1, 0)
    pair_keys: List[CacheKey] = []
    unchanged: List[int] = []
    dirty: List[int] = []
    for index in range(pair_count):
        positionally_unchanged = (
            index + 1 < len(old_fingerprints)
            and old_fingerprints[index] == new_fingerprints[index]
            and old_fingerprints[index + 1] == new_fingerprints[index + 1])
        if positionally_unchanged:
            unchanged.append(index)
            if old_pair_keys is not None and index < len(old_pair_keys):
                pair_keys.append(old_pair_keys[index])
                continue
        else:
            dirty.append(index)
        pair_keys.append(key_for(new_fingerprints[index],
                                 new_fingerprints[index + 1], config))
    return PipelineDiff(fingerprints=new_fingerprints, pair_keys=pair_keys,
                        common_prefix=common_prefix, unchanged_pairs=unchanged,
                        dirty_pairs=dirty)


def pending_whole_queries(plan: WorkPlan, cache: ValidationCache
                          ) -> Dict[CacheKey, Tuple[Function, Function]]:
    """The settle round's demand: whole fallbacks of rejected functions.

    Stepwise only — functions whose adjacent-pair walk hits a rejection
    fall back to the whole (original, final) query, the serial strategy's
    superset guarantee.  The demand only becomes known once the pair
    verdicts are in the cache, so executors call this after their pair
    rounds/waves.  (A single-step function's whole pair *is* its only
    adjacent pair, already answered, so it never reappears here.)
    """
    pending_whole: Dict[CacheKey, Tuple[Function, Function]] = {}
    if plan.strategy != "stepwise":
        return pending_whole
    for function_plan in plan.function_plans():
        rejected = False
        for key in function_plan.pair_keys:
            result = cache.peek(key)
            if result is not None and not result.is_success:
                rejected = True
                break
        if rejected and cache.peek(function_plan.whole_key) is None \
                and function_plan.whole_key not in pending_whole:
            pending_whole[function_plan.whole_key] = (
                function_plan.versions[0], function_plan.versions[-1])
    return pending_whole


__all__ = [
    "PairProvider",
    "ChainSignature",
    "FunctionPlan",
    "ModulePlan",
    "PipelineDiff",
    "WorkPlan",
    "build_plan",
    "diff_plan",
    "pending_whole_queries",
    "chain_amortizes",
    "resolved_executor",
]
