"""TCP transport for the work-stealing executor: framing + the pool shim.

The ``"steal"`` backend's :class:`~repro.validator.scheduler.steal.StealPool`
speaks an in-process ``multiprocessing`` pipe protocol, which caps a
batch's throughput at one host's cores.  This module carries the same
single-item dispatch protocol over TCP so workers on *other* hosts (or
plain subprocesses on this one) can join the queue:

* **Framing** — length-prefixed stdlib frames: a 4-byte big-endian
  length (``struct``) followed by a pickled message.  No third-party
  wire format; truncated and oversized frames raise :class:`FrameError`
  instead of desynchronizing the stream.
* **Handshake** — every connection opens with ``("hello", schema,
  fingerprint, role)`` and is rejected unless both the transport
  schema version (:data:`TRANSPORT_SCHEMA`) and the config fingerprint
  (:func:`config_fingerprint`) match the coordinator's.  A fleet mixing
  incompatible rule registries or wire formats must fail loudly at
  join time, never by producing divergent verdicts.
* **:class:`TcpStealPool`** — a drop-in for :class:`StealPool`: the
  same ``send(worker_id, tag, item)`` / ``receive(outstanding)`` /
  ``respawn`` / ``kill_worker`` / ``close`` contract, so
  :class:`~repro.validator.scheduler.executors.StealExecutor`'s
  scheduling, cancellation, supervision and budget machinery is reused
  unchanged.  Internally it runs a
  :class:`~repro.validator.scheduler.remote.StealCoordinator` asyncio
  server on a background thread; remote workers join via ``python -m
  repro.validator.scheduler.worker --connect HOST:PORT``.

Worker slots are *virtual* here: the executor still addresses workers
``0..N-1`` and keeps at most one item in flight per slot, but which
remote connection serves a slot's item is the coordinator's business
(an idle connection steals from the most-loaded slot).  A slot whose
item was lost to a disconnect surfaces as an attributable
:class:`~repro.validator.scheduler.steal.BrokenStealPool` from
:meth:`TcpStealPool.receive`, so the executor's existing
respawn/requeue/quarantine supervision recovers exactly as it does for
a dead pipe worker.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import pickle
import queue
import socket
import struct
import threading
import time
from typing import Dict, Optional, Tuple

from .steal import BrokenStealPool

#: Wire-format version. Bump on any frame/message shape change; the
#: handshake rejects mismatches so old workers can never misparse.
TRANSPORT_SCHEMA = 1

#: Upper bound on one frame's payload. Far above any real work item or
#: result (whole-module payloads are megabytes at most); mainly a guard
#: against reading a garbage length off a desynchronized stream.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: struct format of the length prefix: unsigned 32-bit big-endian.
_LENGTH = struct.Struct(">I")

#: How long the parent waits for at least one remote worker before
#: declaring the pool broken (unattributable -> the executor degrades
#: to serial, so a missing fleet costs a delay, never a hang). Tests
#: monkeypatch this down.
CONNECT_GRACE = 15.0


class FrameError(RuntimeError):
    """A frame could not be read or written (truncated, oversized, garbage)."""


class ConnectionClosed(FrameError):
    """The peer closed the connection cleanly at a frame boundary."""


class HandshakeError(FrameError):
    """The peer rejected (or botched) the hello/welcome handshake."""


# -- framing (blocking sockets: workers and the RemoteStore client) ---------

def pack_frame(message: object) -> bytes:
    """Serialize one message to a length-prefixed frame."""
    payload = pickle.dumps(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte transport bound")
    return _LENGTH.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: object) -> None:
    """Write one framed message to a blocking socket."""
    sock.sendall(pack_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            got = count - remaining
            if got == 0 and len(chunks) == 0 and count == _LENGTH.size:
                raise ConnectionClosed("connection closed")
            raise FrameError(
                f"truncated frame: expected {count} bytes, got {got}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> object:
    """Read one framed message from a blocking socket.

    Raises :class:`ConnectionClosed` on a clean EOF between frames and
    :class:`FrameError` on a truncated or oversized frame.
    """
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"oversized frame: {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte transport bound")
    payload = _recv_exact(sock, length)
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise FrameError(f"undecodable frame: {error}") from error


# -- framing (asyncio streams: the coordinator) -----------------------------

async def read_frame(reader: asyncio.StreamReader) -> object:
    """Async twin of :func:`recv_frame`."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise ConnectionClosed("connection closed") from error
        raise FrameError("truncated frame header") from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"oversized frame: {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte transport bound")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError(
            f"truncated frame: expected {length} bytes, "
            f"got {len(error.partial)}") from error
    try:
        return pickle.loads(payload)
    except Exception as error:
        raise FrameError(f"undecodable frame: {error}") from error


async def write_frame(writer: asyncio.StreamWriter, message: object) -> None:
    """Async twin of :func:`send_frame`."""
    writer.write(pack_frame(message))
    await writer.drain()


# -- the config fingerprint -------------------------------------------------

def config_fingerprint(config=None) -> str:
    """Digest of everything that must match across a validation fleet.

    Covers the code-level registries a verdict depends on (rule groups,
    normalization engines, matcher names) plus the wire and store schema
    versions; with a ``config``, additionally pins that run's
    verdict-relevant knobs.  Workers send the code-level fingerprint
    (they cannot know the run config before connecting — the config
    rides inside each work item exactly as it does on the pipe
    transport), and the coordinator rejects any mismatch at handshake.
    """
    from ...vgraph.normalize import ENGINES
    from ...vgraph.rules import ALL_RULE_GROUPS
    from ..cache import CACHE_SCHEMA, SQLITE_SCHEMA

    basis = {
        "transport_schema": TRANSPORT_SCHEMA,
        "cache_schema": CACHE_SCHEMA,
        "sqlite_schema": SQLITE_SCHEMA,
        "rule_groups": sorted(ALL_RULE_GROUPS),
        "engines": list(ENGINES),
    }
    if config is not None:
        basis["config"] = {
            "rule_groups": list(config.rule_groups),
            "matcher": config.matcher,
            "engine": config.engine,
            "max_iterations": config.max_iterations,
            "recursion_limit": config.recursion_limit,
        }
    canonical = json.dumps(basis, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def split_address(address: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` (the only address syntax the CLI accepts)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be HOST:PORT (got {address!r})")
    return host, int(port)


# -- the pool shim ----------------------------------------------------------

class TcpStealPool:
    """The :class:`StealPool` contract served over TCP.

    Owns a background thread running a
    :class:`~repro.validator.scheduler.remote.StealCoordinator` event
    loop.  ``send`` pickles the item in the caller's thread (an
    unpicklable payload raises synchronously where the executor can
    catch it, exactly like the pipe pool) and hands the bytes to the
    loop; ``receive`` blocks on the coordinator's thread-safe result
    queue, converting a slot-death event into an attributable
    :class:`BrokenStealPool` so the executor's supervisor requeues the
    lost item.  ``respawn`` is bookkeeping only — the replacement
    "worker" is whichever remote connection next steals the slot's
    requeued item — and ``kill_worker`` severs the connection currently
    serving the slot (fault injection's network sites ride on this).
    """

    def __init__(self, workers: int, config=None, *,
                 listen: Optional[str] = None,
                 connect_grace: Optional[float] = None,
                 store=None) -> None:
        from . import remote  # deferred: remote imports our framing

        self.workers = workers
        self.respawns = 0
        self.connect_grace = (CONNECT_GRACE if connect_grace is None
                              else connect_grace)
        address = listen or getattr(config, "steal_listen", None) \
            or "127.0.0.1:0"
        host, port = split_address(address)
        self._coordinator = remote.StealCoordinator(
            workers, config=config, store=store, host=host, port=port)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._serve, daemon=True, name="steal-coordinator")
        self._thread.start()
        try:
            future = asyncio.run_coroutine_threadsafe(
                self._coordinator.start(), self._loop)
            #: ``(host, port)`` actually bound (port 0 resolves here).
            self.address = future.result(timeout=10.0)
        except BaseException:
            self.close()
            raise

    def _serve(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    @property
    def coordinator(self):
        return self._coordinator

    def _call(self, fn, *args) -> None:
        if self._loop.is_closed():
            raise BrokenStealPool("steal coordinator already closed")
        self._loop.call_soon_threadsafe(fn, *args)

    def send(self, worker_id: int, tag: int, item: Tuple) -> None:
        """Queue one item for ``worker_id`` (pickles here, in the parent)."""
        from .executors import item_detail  # deferred: executors imports us

        payload = pickle.dumps((tag, item))
        self._call(self._coordinator.enqueue, worker_id, tag, payload,
                   item_detail(item))

    def receive(self, outstanding: Dict[int, Tuple]
                ) -> Tuple[int, int, bool, object]:
        """The next completed item: ``(worker id, tag, ok, payload)``.

        A slot-death event (its connection dropped while holding the
        slot's item) raises an attributable :class:`BrokenStealPool`;
        a fleet that never connects within :data:`CONNECT_GRACE` raises
        an unattributable one, so the executor degrades to serial
        instead of hanging on an empty network.
        """
        waited_since = time.monotonic()
        while True:
            if self._coordinator.live_workers > 0:
                waited_since = time.monotonic()
            try:
                event = self._coordinator.results.get(timeout=0.1)
            except queue.Empty:
                if not self._thread.is_alive():
                    raise BrokenStealPool("steal coordinator thread died")
                if (self._coordinator.live_workers == 0
                        and time.monotonic() - waited_since
                        > self.connect_grace):
                    raise BrokenStealPool(
                        f"no remote workers joined within "
                        f"{self.connect_grace:g}s (start one with: python -m "
                        f"repro.validator.scheduler.worker --connect "
                        f"{self.address[0]}:{self.address[1]})")
                continue
            if event[0] == "death":
                _, slot, message = event
                if slot in outstanding:
                    raise BrokenStealPool(message, worker_id=slot)
                continue  # stale: the slot's item was already settled
            _, slot, tag, ok, payload = event
            return slot, tag, ok, payload

    def respawn(self, worker_id: int) -> None:
        """Reset a slot after a death (the next connection inherits it)."""
        self._call(self._coordinator.clear_slot, worker_id)
        self.respawns += 1

    def kill_worker(self, worker_id: int) -> None:
        """Sever the connection serving ``worker_id`` (fault injection)."""
        self._call(self._coordinator.kill_slot, worker_id)

    def close(self) -> None:
        """Tell workers the batch is over, stop the server, join the thread."""
        if self._loop.is_closed():
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self._coordinator.shutdown(), self._loop)
            future.result(timeout=5.0)
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_closed():
            self._loop.close()


__all__ = [
    "CONNECT_GRACE",
    "MAX_FRAME_BYTES",
    "TRANSPORT_SCHEMA",
    "ConnectionClosed",
    "FrameError",
    "HandshakeError",
    "TcpStealPool",
    "config_fingerprint",
    "pack_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
    "split_address",
    "write_frame",
]
