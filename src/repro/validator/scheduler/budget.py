"""Per-request resource budgets for validation work.

A long-lived validation service cannot let one request monopolize the
shared executor: every request gets a :class:`RequestBudget` — an
optional wall-clock deadline plus an optional cap on *fresh* pair
validations — and the execution/settlement layers consult it before
paying for new work.  Exhaustion is **not** an error: the budgeted
providers answer every query the cache already holds for free, and
synthesize a rejection with reason :data:`BUDGET_EXHAUSTED` for the
queries they can no longer afford.  Under the stepwise strategy that
rejection lands exactly where a real one would — the walk stops, the
whole-query fallback is denied on the same terms, and the record settles
with its validated ``kept_prefix`` salvaged — so a request that runs out
of budget returns partial records instead of being dropped.

Budget verdicts are synthetic: they describe *this request's* resources,
not the pair's semantics, so they must never enter a
:class:`~repro.validator.cache.ValidationCache` (every producer in this
package returns them uncached) and they never mark a record
``from_cache``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from ..validate import ValidationResult

#: Rejection reason carried by synthetic budget verdicts.  Never cached.
BUDGET_EXHAUSTED = "budget-exhausted"


class RequestBudget:
    """Wall-clock + fresh-pair budget for one validation request.

    ``timeout`` seconds of wall clock (measured from construction) and
    ``max_pairs`` fresh pair validations; ``None``/``0`` leaves either
    axis unbounded.  Cache hits are always free — only work that would
    actually validate something is charged.
    """

    def __init__(self, timeout: Optional[float] = None,
                 max_pairs: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self.deadline = (clock() + timeout
                         if timeout is not None and timeout > 0 else None)
        self.max_pairs = (int(max_pairs)
                          if max_pairs is not None and max_pairs > 0 else None)
        #: Fresh pair validations charged so far.
        self.pairs_spent = 0
        #: Synthetic budget verdicts issued so far.
        self.denials = 0

    @property
    def expired(self) -> bool:
        """Has the wall-clock deadline passed?  (Pair spend is separate:
        mid-run cancellation must not doom work that was already admitted
        and charged.)"""
        return self.deadline is not None and self._clock() >= self.deadline

    @property
    def exhausted(self) -> bool:
        """May no further fresh validation be admitted?"""
        if self.expired:
            return True
        return self.max_pairs is not None and self.pairs_spent >= self.max_pairs

    def remaining_pairs(self) -> Optional[int]:
        """Fresh validations still admissible (``None`` = unbounded)."""
        if self.max_pairs is None:
            return None
        return max(0, self.max_pairs - self.pairs_spent)

    def charge(self, pairs: int = 1) -> None:
        """Account ``pairs`` fresh validations against the budget."""
        self.pairs_spent += pairs

    def result(self, function_name: str) -> ValidationResult:
        """A synthetic (uncacheable) rejection for a denied query."""
        self.denials += 1
        axis = "deadline" if self.expired else f"max_pairs={self.max_pairs}"
        return ValidationResult(
            function_name, False, BUDGET_EXHAUSTED,
            detail=(f"request budget exhausted ({axis}; "
                    f"{self.pairs_spent} fresh pairs spent) — verdict "
                    f"denied, validated prefix salvaged"))

    def stats(self) -> Dict[str, int]:
        """Telemetry for ``report.shard_stats`` / service summaries."""
        return {
            "budget_pairs_spent": self.pairs_spent,
            "budget_denied_pairs": self.denials,
            "budget_exhausted": int(self.exhausted),
        }


def is_budget_result(result: Optional[ValidationResult]) -> bool:
    """Is ``result`` a synthetic budget denial (and thus uncacheable)?"""
    return result is not None and result.reason == BUDGET_EXHAUSTED


def admit_work(pending: Dict, pending_chains: Dict, budget: RequestBudget
               ) -> Tuple[Dict, Dict]:
    """Truncate a plan's pending work to what the budget still admits.

    Pairs are admitted first (they are what records consume directly),
    then chain items, each charged for the adjacent pairs it covers.
    Work beyond the budget is simply not executed — the settlement
    provider answers it with synthetic denials and records salvage their
    validated prefixes.
    """
    admitted_pairs: Dict = {}
    for key, pair in pending.items():
        if budget.exhausted:
            break
        budget.charge()
        admitted_pairs[key] = pair
    admitted_chains: Dict = {}
    for signature, item in pending_chains.items():
        if budget.exhausted:
            break
        budget.charge(len(signature))
        admitted_chains[signature] = item
    return admitted_pairs, admitted_chains


__all__ = [
    "BUDGET_EXHAUSTED",
    "RequestBudget",
    "admit_work",
    "is_budget_result",
]
