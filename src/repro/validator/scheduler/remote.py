"""The steal coordinator server, its served proof store, and the remote worker.

Three pieces carry the ``"steal"`` backend's protocol across hosts:

:class:`StealCoordinator`
    An asyncio server owning the shared work deques.  The executor's
    ``send(worker_id, tag, item)`` calls land here as per-slot entries;
    a connected worker that reports ready is served its *own* slot's
    newest entry first (LIFO-local) and otherwise steals the oldest
    entry of the most-loaded other slot (FIFO-steal) — the same policy
    the executor applies to its parent-side deques, now applied to the
    fleet.  Results and slot deaths flow back to the parent through a
    thread-safe queue.  The coordinator never requeues a lost item
    itself: a disconnect while holding slot *s*'s item surfaces as a
    death event for *s*, and the executor's ``outstanding`` bookkeeping
    — the single source of truth — requeues it through the existing
    respawn/requeue/quarantine supervision.  (A coordinator-side requeue
    would race that supervision into double-executing the item.)

:class:`ServedStore`
    The coordinator-side proof store behind the ``("store", ...)`` wire
    role: remote workers' :class:`~repro.validator.cache.RemoteStore`
    clients send batched get/put/touch traffic here instead of shipping
    cache state inside work-item payloads.  Backed by the run's sqlite
    store when ``config.cache_dir`` names one, by a snapshot of the
    JSON store (loaded under the shared sidecar lock), or by a plain
    in-memory map when the run has no persistent cache.

:func:`run_worker`
    The remote worker loop (``python -m
    repro.validator.scheduler.worker --connect HOST:PORT``): connect,
    handshake, then validate one item at a time, consulting the served
    proof store for pair items before validating.  ``--reconnect``
    makes the worker outlive coordinator restarts (each corpus batch
    binds a fresh server on the same port), which is how a two-process
    loopback fleet serves a whole guard sweep.

Fault sites (all consulted coordinator-side, so their schedules count
deterministically in one process): ``"handshake"`` rejects a joining
connection, ``"conn-drop"`` severs a connection right after an item is
dispatched to it (the disconnect path then emits the death that drives
respawn/requeue), and ``"conn-delay"`` holds a completed result for
``seconds`` before delivering it.
"""

from __future__ import annotations

import asyncio
import collections
import json
import os
import pickle
import queue
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple

from .. import faults
from . import transport
from .transport import (
    TRANSPORT_SCHEMA,
    ConnectionClosed,
    FrameError,
    HandshakeError,
    config_fingerprint,
    read_frame,
    recv_frame,
    send_frame,
    split_address,
    write_frame,
)


class ServedStore:
    """One shared proof store, served to the fleet over the steal wire.

    Operates on *encoded* rows — ``(key text, payload text, stamp)`` —
    the same canonical serializations both disk backends already store,
    so the wire never depends on pickled validator classes.  Three
    flavors behind one surface:

    * ``sqlite``: delegates to the run's
      :class:`~repro.validator.cache.SqliteStore` (WAL mode lets the
      driver's own cache connection and this one share the file); its
      locked-flush retry machinery is reused as-is.
    * ``json``: loads the file once under the shared sidecar ``flock``
      helper (:func:`~repro.validator.cache.sidecar_flock`), serves
      from memory, and merge-saves back at close through
      :class:`~repro.validator.cache.JsonStore`.
    * ``memory``: a plain dict, for runs with no persistent cache —
      workers still share one cache instead of each re-proving pairs.
    """

    def __init__(self, path: Optional[os.PathLike] = None,
                 backend: str = "auto",
                 fault_plan: Optional[faults.FaultPlan] = None) -> None:
        from .. import cache as cache_mod

        self._cache_mod = cache_mod
        self.fault_plan = fault_plan
        self.kind = "memory"
        #: Batched get / put round trips served (coordinator telemetry).
        self.gets_served = 0
        self.puts_served = 0
        #: text key -> (payload text, recency stamp).
        self._memory: Dict[str, Tuple[str, int]] = {}
        self._sqlite = None
        self._json = None
        if path is not None:
            file_path, resolved = cache_mod._resolve_cache_path(path, backend)
            if resolved == "sqlite":
                self.kind = "sqlite"
                self._sqlite = cache_mod.SqliteStore(
                    file_path, fault_plan=fault_plan)
            else:
                self.kind = "json"
                self._json = cache_mod.JsonStore(
                    file_path, fault_plan=fault_plan)
                with cache_mod.sidecar_flock(file_path):
                    loaded = self._json.load()
                for key, result in loaded.items():
                    self._memory[cache_mod._encode_key(key)] = (
                        cache_mod._encode_result(result), 0)

    def get_many(self, key_texts: List[str]) -> Dict[str, str]:
        """Payload texts for every present key (misses are omitted)."""
        self.gets_served += 1
        mod = self._cache_mod
        if self._sqlite is not None:
            found = {}
            for text in key_texts:
                try:
                    result = self._sqlite.fetch(mod._decode_key(text))
                except (KeyError, TypeError, ValueError):
                    continue
                if result is not None:
                    found[text] = mod._encode_result(result)
            return found
        return {text: self._memory[text][0]
                for text in key_texts if text in self._memory}

    def put_many(self, rows: List[Tuple[str, str, int]]) -> int:
        """Store a batch of encoded entries; returns rows written.

        Sqlite delegation retries locked flushes internally
        (:data:`~repro.validator.scheduler.retry.LOCKED_FLUSH_RETRY`);
        the memory/json flavors consult the ``"cache-flush"`` fault
        site here so an injected locked error travels back over the
        wire and exercises the *client's* retry of the same policy.
        """
        self.puts_served += 1
        mod = self._cache_mod
        if self._sqlite is not None:
            items = []
            stamps = {}
            for text, payload, stamp in rows:
                try:
                    key = mod._decode_key(text)
                    result = mod._decode_result(json.loads(payload))
                except (KeyError, TypeError, ValueError):
                    continue
                items.append((key, result))
                stamps[key] = int(stamp)
            return self._sqlite.upsert(items, stamps)
        faults.maybe_fire(self.fault_plan, "cache-flush", detail="served-store")
        for text, payload, stamp in rows:
            self._memory[text] = (payload, int(stamp))
        return len(rows)

    def touch_many(self, rows: List[Tuple[str, int]]) -> int:
        """Refresh recency stamps for consumed entries."""
        mod = self._cache_mod
        if self._sqlite is not None:
            stamps = {}
            for text, stamp in rows:
                try:
                    stamps[mod._decode_key(text)] = int(stamp)
                except (KeyError, TypeError, ValueError):
                    continue
            self._sqlite.touch(stamps)
            return len(stamps)
        touched = 0
        for text, stamp in rows:
            held = self._memory.get(text)
            if held is not None and held[1] < stamp:
                self._memory[text] = (held[0], int(stamp))
                touched += 1
        return touched

    def count(self) -> int:
        if self._sqlite is not None:
            return self._sqlite.entry_count()
        return len(self._memory)

    def max_stamp(self) -> int:
        if self._sqlite is not None:
            return self._sqlite.max_stamp()
        return max((stamp for _, stamp in self._memory.values()), default=0)

    def evict(self, max_bytes: int) -> int:
        if self._sqlite is not None:
            return self._sqlite.evict_to_budget(max_bytes)
        return 0  # the memory/json flavors are bounded by their run

    def close(self) -> None:
        mod = self._cache_mod
        if self._sqlite is not None:
            self._sqlite.close()
            return
        if self._json is not None:
            entries = {}
            stamps = {}
            for text, (payload, stamp) in self._memory.items():
                try:
                    key = mod._decode_key(text)
                    entries[key] = mod._decode_result(json.loads(payload))
                except (KeyError, TypeError, ValueError):
                    continue
                stamps[key] = stamp
            try:
                self._json.save(entries, stamps, 0)
            except OSError:
                self._json.errors += 1


class _Conn:
    """Coordinator-side state of one connected worker."""

    __slots__ = ("reader", "writer", "slot", "lease", "parked")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        #: Bound slot id, or ``None`` for a steal-only connection (the
        #: fleet outnumbers the executor's slots).
        self.slot: Optional[int] = None
        #: ``(slot, tag, detail)`` of the item this connection holds.
        self.lease: Optional[Tuple[int, int, str]] = None
        self.parked = False


class StealCoordinator:
    """Asyncio server owning the shared deques of a steal fleet.

    Thread contract: every method except :attr:`results` reads is meant
    to run on the server's event loop —
    :class:`~repro.validator.scheduler.transport.TcpStealPool` calls
    :meth:`enqueue` / :meth:`clear_slot` / :meth:`kill_slot` via
    ``call_soon_threadsafe`` and blocks on the thread-safe
    :attr:`results` queue for ``("result", slot, tag, ok, payload)``
    and ``("death", slot, message)`` events.
    """

    def __init__(self, slots: int, config=None, *, store=None,
                 plan: Optional[faults.FaultPlan] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.slots = slots
        self.config = config
        self.plan = plan if plan is not None \
            else getattr(config, "fault_plan", None)
        self.store = store
        self.host = host
        self.port = port
        #: What joining peers must present: the code-level fingerprint
        #: (rule registry, engines, schema versions).
        self.expected_fingerprint = config_fingerprint()
        #: Advertised in the welcome: additionally pins this run's
        #: verdict-relevant config knobs.
        self.run_fingerprint = (config_fingerprint(config)
                                if config is not None
                                else self.expected_fingerprint)
        #: Events for the parent thread (see class docstring).
        self.results: "queue.Queue" = queue.Queue()
        self.deques: List[Deque[Tuple[int, int, bytes, str]]] = [
            collections.deque() for _ in range(slots)]
        self.live_workers = 0
        self.workers_joined = 0
        self.workers_left = 0
        self.store_clients = 0
        self.rejected = 0
        self.address: Optional[Tuple[str, int]] = None
        self._conns = set()
        self._slot_conns: Dict[int, _Conn] = {}
        self._idle: List[_Conn] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._closing = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the server (and build the served store); returns (host, port)."""
        if self.store is None:
            self.store = ServedStore(
                getattr(self.config, "cache_dir", None),
                backend=getattr(self.config, "cache_backend", "auto"),
                fault_plan=self.plan)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def shutdown(self) -> None:
        """Stop accepting, wave workers goodbye, persist the served store."""
        self._closing = True
        if self._server is not None:
            self._server.close()
        for conn in list(self._conns):
            try:
                await write_frame(conn.writer, ("close",))
            except Exception:
                pass
            try:
                conn.writer.close()
            except Exception:
                pass
        if self.store is not None:
            self.store.close()
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=2.0)
            except Exception:
                pass
        # The serve loops are still parked in read_frame on connections
        # we just closed; cancel them so the event loop shuts down clean
        # (their finally blocks run the normal disconnect bookkeeping).
        current = asyncio.current_task()
        pending = [task for task in asyncio.all_tasks()
                   if task is not current and not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    # -- parent-thread entry points (via call_soon_threadsafe) -------------
    def enqueue(self, slot: int, tag: int, payload: bytes, detail: str) -> None:
        """Queue one pickled item for ``slot`` and wake an idle worker."""
        self.deques[slot].append((slot, tag, payload, detail))
        self._pump()

    def clear_slot(self, slot: int) -> None:
        """Respawn bookkeeping: forget a dead slot's queue and binding."""
        self.deques[slot].clear()
        self._slot_conns.pop(slot, None)

    def kill_slot(self, slot: int) -> None:
        """Sever the connection serving ``slot`` (fault injection)."""
        target = None
        for conn in self._conns:
            if conn.lease is not None and conn.lease[0] == slot:
                target = conn
                break
        if target is None:
            target = self._slot_conns.get(slot)
        if target is not None:
            try:
                target.writer.close()
            except Exception:
                pass

    # -- scheduling --------------------------------------------------------
    def _pick(self, conn: _Conn) -> Optional[Tuple[int, int, bytes, str]]:
        """LIFO from the connection's own slot, else FIFO-steal the most loaded."""
        if conn.slot is not None and self.deques[conn.slot]:
            return self.deques[conn.slot].pop()
        victims = [slot for slot in range(self.slots)
                   if slot != conn.slot and self.deques[slot]]
        if not victims:
            return None
        victim = max(victims, key=lambda slot: len(self.deques[slot]))
        return self.deques[victim].popleft()

    def _park(self, conn: _Conn) -> None:
        if not conn.parked:
            conn.parked = True
            self._idle.append(conn)

    def _pump(self) -> None:
        """Match queued work to parked connections."""
        while self._idle:
            conn = self._idle[0]
            entry = self._pick(conn)
            if entry is None:
                return
            self._idle.pop(0)
            conn.parked = False
            asyncio.ensure_future(self._assign(conn, entry))

    async def _assign(self, conn: _Conn,
                      entry: Tuple[int, int, bytes, str]) -> None:
        slot, tag, payload, detail = entry
        conn.lease = (slot, tag, detail)
        try:
            await write_frame(conn.writer, ("item", tag, payload))
        except Exception:
            # The connection is dying mid-dispatch; keep the lease so
            # the disconnect path emits the death that requeues the item.
            try:
                conn.writer.close()
            except Exception:
                pass
            return
        # "conn-drop": the network loses this worker right after the
        # item reaches it.  Any firing action severs the connection —
        # the disconnect path below turns that into a slot death, which
        # the executor answers with respawn + requeue (and quarantine
        # past max_pair_retries), exactly like a dead pipe worker.
        if faults.should_fire(self.plan, "conn-drop", detail=detail) is not None:
            try:
                conn.writer.close()
            except Exception:
                pass

    # -- connection handling -----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            hello = await read_frame(reader)
        except (FrameError, OSError):
            writer.close()
            return
        reason = None
        role = "worker"
        if (not isinstance(hello, tuple) or len(hello) != 4
                or hello[0] != "hello"):
            reason = f"malformed hello {hello!r}"
        else:
            _, schema, fingerprint, role = hello
            try:
                faults.maybe_fire(self.plan, "handshake", detail=str(role))
            except BaseException as error:  # InjectedCrash included
                reason = f"injected handshake fault: {error}"
            if reason is None and schema != TRANSPORT_SCHEMA:
                reason = (f"transport schema {schema!r} does not match "
                          f"coordinator schema {TRANSPORT_SCHEMA}")
            if reason is None and fingerprint != self.expected_fingerprint:
                reason = ("config fingerprint mismatch: the worker's rule "
                          "registry, engine set or store schema differs "
                          "from the coordinator's")
        if reason is not None:
            self.rejected += 1
            try:
                await write_frame(writer, ("reject", reason))
            except Exception:
                pass
            writer.close()
            return
        try:
            await write_frame(writer, ("welcome", self.run_fingerprint))
        except Exception:
            writer.close()
            return
        try:
            if role == "store":
                await self._serve_store(reader, writer)
            else:
                await self._serve_worker(reader, writer)
        except asyncio.CancelledError:
            # Only shutdown cancels handler tasks; swallowing here keeps
            # the streams connection_made callback (which calls
            # task.exception() unguarded) from spamming the loop's
            # exception handler.
            return

    async def _serve_worker(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        conn = _Conn(reader, writer)
        self._conns.add(conn)
        for slot in range(self.slots):
            if slot not in self._slot_conns:
                conn.slot = slot
                self._slot_conns[slot] = conn
                break
        self.live_workers += 1
        self.workers_joined += 1
        try:
            while True:
                try:
                    msg = await read_frame(reader)
                except (FrameError, OSError):
                    break
                if not isinstance(msg, tuple) or not msg or msg[0] == "bye":
                    break
                kind = msg[0]
                if kind == "ready":
                    entry = self._pick(conn)
                    if entry is not None:
                        await self._assign(conn, entry)
                    else:
                        self._park(conn)
                elif kind == "result":
                    _, tag, ok, payload = msg
                    lease, conn.lease = conn.lease, None
                    if lease is None:
                        continue  # stale: the slot was already recycled
                    slot, _tag, detail = lease
                    # "conn-delay": the network holds a finished result.
                    spec = faults.should_fire(self.plan, "conn-delay",
                                              detail=detail)
                    if spec is not None and spec.seconds > 0:
                        await asyncio.sleep(spec.seconds)
                    self.results.put(("result", slot, tag, ok, payload))
                    entry = self._pick(conn)
                    if entry is not None:
                        await self._assign(conn, entry)
                    else:
                        self._park(conn)
        finally:
            self._drop(conn)

    def _drop(self, conn: _Conn) -> None:
        self._conns.discard(conn)
        if conn.parked:
            self._idle.remove(conn)
            conn.parked = False
        if conn.slot is not None and self._slot_conns.get(conn.slot) is conn:
            del self._slot_conns[conn.slot]
        lease, conn.lease = conn.lease, None
        self.live_workers -= 1
        self.workers_left += 1
        if lease is not None and not self._closing:
            self.results.put((
                "death", lease[0],
                f"remote worker disconnected holding {lease[2]!r} "
                f"(slot {lease[0]})"))
        try:
            conn.writer.close()
        except Exception:
            pass

    async def _serve_store(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self.store_clients += 1
        try:
            while True:
                try:
                    msg = await read_frame(reader)
                except (FrameError, OSError):
                    break
                if not isinstance(msg, tuple) or not msg or msg[0] == "bye":
                    break
                kind = msg[0]
                try:
                    if kind == "get":
                        reply = ("entries", self.store.get_many(list(msg[1])))
                    elif kind == "put":
                        reply = ("ok", self.store.put_many(list(msg[1])))
                    elif kind == "touch":
                        reply = ("ok", self.store.touch_many(list(msg[1])))
                    elif kind == "count":
                        reply = ("ok", self.store.count())
                    elif kind == "maxstamp":
                        reply = ("ok", self.store.max_stamp())
                    elif kind == "evict":
                        reply = ("ok", self.store.evict(int(msg[1])))
                    else:
                        reply = ("err", f"unknown store op {kind!r}")
                except Exception as error:
                    reply = ("err", f"{type(error).__name__}: {error}")
                try:
                    await write_frame(writer, reply)
                except (FrameError, OSError):
                    break
        finally:
            try:
                writer.close()
            except Exception:
                pass


# -- the remote worker ------------------------------------------------------

def _validate_worker_item(item: Tuple, cache) -> object:
    """Validate one item, consulting the shared proof store for pairs.

    Chain items share one normalization across their pairs and are
    validated in full (their per-pair verdicts are settled parent-side);
    pair items check the coordinator's store first — a hit is
    content-identical on the signature surface, so parity with a
    cache-less run is preserved by construction.
    """
    from .executors import _validate_item

    if cache is not None and item[0] == "pair":
        _, before, after, config = item
        key = cache.key(before, after, config)
        hit = cache.get(key, before.name)
        if hit is not None:
            return hit
        result = _validate_item(item)
        cache.put(key, result)
        return result
    return _validate_item(item)


def run_worker(address, *, fingerprint: Optional[str] = None,
               schema: Optional[int] = None, reconnect: bool = False,
               patience: float = 30.0, use_store: bool = True,
               poll: float = 0.05) -> int:
    """Join a coordinator and serve items until told (or left) to stop.

    Returns the number of items served.  With ``reconnect``, the worker
    retries both refused connections and closed ones until ``patience``
    seconds pass without reaching a coordinator — that is what lets two
    long-lived worker processes serve every per-batch coordinator of a
    guard sweep on a fixed port.  A handshake rejection is retried the
    same way (the coordinator may be mid-restart); a worker that is
    *never* accepted gives up when its patience runs out.
    """
    from .executors import item_detail
    from ..cache import ValidationCache

    faults.mark_worker_process()
    if isinstance(address, str):
        host, port = split_address(address)
    else:
        host, port = address
    served = 0
    deadline = time.monotonic() + patience
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
        except OSError:
            if not reconnect or time.monotonic() > deadline:
                return served
            time.sleep(poll)
            continue
        accepted = False
        cache = None
        try:
            send_frame(sock, ("hello",
                              TRANSPORT_SCHEMA if schema is None else schema,
                              fingerprint or config_fingerprint(), "worker"))
            reply = recv_frame(sock)
            if not (isinstance(reply, tuple) and reply
                    and reply[0] == "welcome"):
                raise HandshakeError(f"coordinator rejected us: {reply!r}")
            accepted = True
            if use_store:
                cache = ValidationCache(f"remote://{host}:{port}")
            send_frame(sock, ("ready",))
            while True:
                msg = recv_frame(sock)
                if not isinstance(msg, tuple) or not msg or msg[0] == "close":
                    break
                if msg[0] != "item":
                    continue
                _, tag, payload = msg
                _tag, item = pickle.loads(payload)
                plan = getattr(item[-1], "fault_plan", None)
                faults.maybe_fire(plan, "worker", detail=item_detail(item))
                try:
                    message = ("result", tag, True,
                               _validate_worker_item(item, cache))
                except Exception as error:
                    message = ("result", tag, False,
                               f"{type(error).__name__}: {error}")
                send_frame(sock, message)
                served += 1
        except (FrameError, OSError):
            pass
        finally:
            if cache is not None:
                try:
                    cache.save_if_dirty()
                    cache.close()
                except Exception:
                    pass
            try:
                sock.close()
            except OSError:
                pass
        if not reconnect:
            return served
        if accepted:
            deadline = time.monotonic() + patience
        elif time.monotonic() > deadline:
            return served
        time.sleep(poll)


def spawn_workers(address, count: int, *, reconnect: bool = True,
                  patience: float = 60.0, use_store: bool = True
                  ) -> List[subprocess.Popen]:
    """Launch ``count`` loopback worker subprocesses joined to ``address``.

    The benchmark/guard helper: resolves ``PYTHONPATH`` from the
    installed package so the subprocesses import the same tree, and
    leaves the workers in ``--reconnect`` mode so one fleet serves
    every batch of a sweep.  Callers own termination
    (``proc.terminate()``).
    """
    import repro

    if not isinstance(address, str):
        address = f"{address[0]}:{address[1]}"
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (src_root + os.pathsep + existing
                         if existing else src_root)
    command = [sys.executable, "-m", "repro.validator.scheduler.worker",
               "--connect", address, "--patience", str(patience)]
    if reconnect:
        command.append("--reconnect")
    if not use_store:
        command.append("--no-store")
    return [subprocess.Popen(command, env=env) for _ in range(count)]


__all__ = [
    "ServedStore",
    "StealCoordinator",
    "run_worker",
    "spawn_workers",
]
