"""Shared bounded-retry policy with deterministic exponential backoff.

Transient failures — a worker death, a ``database is locked`` flush, a
pool spawn race — should cost a short, bounded pause, not a wholesale
degradation; but *persistent* failures must still hit the caller's
fallback (serial rerun, memory-tier cache) after a known number of
attempts.  Everything that retries in the validator routes through
:func:`retry_call` with a frozen :class:`RetryPolicy`, so the retry
budget and backoff shape live in one place and chaos runs stay
reproducible: jitter comes from ``random.Random(seed)``, never from
wall-clock entropy.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts, and how long to wait between them.

    ``max_attempts`` counts *total* attempts (1 = no retries).  Delay
    before retry ``n`` (1-based) is
    ``min(base_delay * multiplier**(n-1), max_delay)`` scaled by a
    seeded jitter factor in ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def backoff(self, seed: int = 0) -> Iterator[float]:
        """Yield the (deterministic) delay before each retry."""
        # Numeric tuple hashing is deterministic (PYTHONHASHSEED only
        # randomizes str/bytes), and random.Random needs a scalar seed.
        rng = random.Random(hash((seed, self.max_attempts, self.base_delay)))
        delay = self.base_delay
        while True:
            scale = 1.0
            if self.jitter:
                scale = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield min(delay, self.max_delay) * scale
            delay *= self.multiplier


#: Broken process pool / spawn race: retry the batch on a fresh pool
#: twice before degrading to serial.
POOL_RETRY = RetryPolicy(max_attempts=3, base_delay=0.02, max_delay=0.25)

#: ``database is locked`` on a sqlite flush: writers back off briefly —
#: the lock holder is another flush, gone within milliseconds.
LOCKED_FLUSH_RETRY = RetryPolicy(max_attempts=4, base_delay=0.02,
                                 max_delay=0.2)


def retry_call(
    fn: Callable[[], T],
    *,
    policy: Optional[RetryPolicy] = None,
    retry_if: Optional[Callable[[BaseException], bool]] = None,
    seed: int = 0,
    should_abort: Optional[Callable[[], bool]] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` under ``policy``, re-raising when retries are spent.

    ``retry_if`` filters which exceptions are transient (default: any
    ``Exception``; ``BaseException``s like timeouts always propagate).
    ``should_abort`` is checked before every retry — an expired
    :class:`~repro.validator.scheduler.budget.RequestBudget` must settle
    denials, not spin retries past its deadline.  ``on_retry(attempt,
    error)`` observes each scheduled retry (counters, logs).
    """
    policy = policy or RetryPolicy()
    delays = policy.backoff(seed)
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except Exception as error:
            if attempt >= policy.max_attempts:
                raise
            if retry_if is not None and not retry_if(error):
                raise
            if should_abort is not None and should_abort():
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(next(delays))
    raise AssertionError("unreachable")  # pragma: no cover


__all__ = ["LOCKED_FLUSH_RETRY", "POOL_RETRY", "RetryPolicy", "retry_call"]
