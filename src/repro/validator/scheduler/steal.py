"""Process plumbing for the work-stealing executor backend.

:class:`StealPool` owns a persistent set of worker processes, each fed
**one item at a time**: the parent keeps per-worker deques of pending
work (see :class:`~repro.validator.scheduler.executors.StealExecutor`)
and dispatches the next item the moment a worker reports a result, so a
long chain item occupies exactly one worker while the others drain the
rest of the queue — unlike fixed ``Pool.map`` sharding, where the chunk
behind a straggler sits idle.  Single-item dispatch is also what lets
doomed items be *cancelled*: an undispached item is just a deque entry
the parent can drop.

Work items are pickled in the parent inside :meth:`StealPool.send`, so
an unpicklable payload raises synchronously where the executor can catch
it and degrade to serial (a queue's background feeder thread would
otherwise swallow the error and hang the run).  :meth:`StealPool.receive`
polls worker liveness while waiting, so a worker that dies mid-item
raises :class:`BrokenStealPool` instead of blocking forever.  When the
death is *attributable* (the exception names which worker died holding
which item), the executor's supervisor can :meth:`respawn` just that
worker and requeue the item instead of degrading the whole backend to
serial; an unattributable break still degrades wholesale, exactly like a
broken process pool.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
from typing import Dict, Optional, Tuple


class BrokenStealPool(RuntimeError):
    """A steal worker died or misbehaved.

    ``worker_id`` names the casualty when the failure is attributable to
    one worker holding one in-flight item — the supervisor then respawns
    that worker and requeues the item.  ``None`` means the pool's state
    is unknown (queue plumbing failure, multiple deaths in one poll):
    the executor degrades to serial, the historical behavior.
    """

    def __init__(self, message: str, worker_id: Optional[int] = None) -> None:
        super().__init__(message)
        self.worker_id = worker_id


def _steal_worker_main(worker_id: int, inbox, outbox) -> None:
    """Worker loop: unpickle one item, validate it, ship the outcome back.

    Runs in a child process.  A ``None`` payload is the shutdown
    sentinel.  Item-level exceptions are reported back as failures (the
    parent retries or degrades) rather than killing the worker — with
    one deliberate exception: an injected ``"worker"``-site crash fault
    hard-exits the process *before* the try block, because a crash that
    merely reported an error would never exercise the supervisor's
    respawn path.  :class:`~repro.validator.faults.PairTimeout` is a
    ``BaseException`` and is settled inside ``validate_bounded`` before
    it could reach the ``except Exception`` here.
    """
    from .executors import _validate_item, item_detail  # deferred: executors imports us
    from .. import faults

    faults.mark_worker_process()
    while True:
        payload = inbox.get()
        if payload is None:
            break
        tag, item = pickle.loads(payload)
        plan = getattr(item[-1], "fault_plan", None)
        faults.maybe_fire(plan, "worker", detail=item_detail(item))
        try:
            message = (worker_id, tag, True, _validate_item(item))
        except Exception as error:
            message = (worker_id, tag, False, f"{type(error).__name__}: {error}")
        outbox.put(message)


class StealPool:
    """A persistent pool of single-item workers for work stealing.

    The pool only moves items and results; *which* item a worker gets
    next — its own deque, or one stolen from a loaded sibling — is the
    executor's scheduling policy, and *whether* a dead worker is
    respawned or the backend degrades is the executor's supervision
    policy (:meth:`respawn` is the mechanism).  Tests monkeypatch this
    class to inject worker deaths without spawning processes.
    """

    def __init__(self, workers: int) -> None:
        context = multiprocessing.get_context()
        self._context = context
        self._outbox = context.Queue()
        self._inboxes = []
        self._processes = []
        #: Workers restarted after a death (supervision telemetry).
        self.respawns = 0
        try:
            for worker_id in range(workers):
                self._spawn(worker_id)
        except BaseException:
            self.close()
            raise

    def _spawn(self, worker_id: int) -> None:
        """Start worker ``worker_id`` with a fresh inbox.

        A *fresh* inbox matters for respawns: the dead worker's inbox
        may still hold a pickled in-flight item, and the replacement
        must not double-process it — the supervisor requeues the item
        from its own ``outstanding`` bookkeeping instead.
        """
        inbox = self._context.Queue()
        process = self._context.Process(
            target=_steal_worker_main,
            args=(worker_id, inbox, self._outbox),
            daemon=True, name=f"steal-worker-{worker_id}")
        process.start()
        if worker_id < len(self._inboxes):
            self._inboxes[worker_id] = inbox
            self._processes[worker_id] = process
        else:
            self._inboxes.append(inbox)
            self._processes.append(process)

    def send(self, worker_id: int, tag: int, item: Tuple) -> None:
        """Dispatch one item to ``worker_id`` (pickles here, in the parent)."""
        self._inboxes[worker_id].put(pickle.dumps((tag, item)))

    def receive(self, outstanding: Dict[int, Tuple]) -> Tuple[int, int, bool, object]:
        """The next completed item: ``(worker id, tag, ok, payload)``.

        Blocks until a result arrives, checking the liveness of every
        worker in ``outstanding`` (worker id -> dispatched item) while
        waiting; a dead worker holding an item raises
        :class:`BrokenStealPool` naming it, so the supervisor can
        respawn and requeue instead of degrading.  Results already
        queued by a worker that died afterwards are still delivered
        first.
        """
        while True:
            try:
                return self._outbox.get(timeout=0.1)
            except queue.Empty:
                for worker_id in outstanding:
                    if not self._processes[worker_id].is_alive():
                        raise BrokenStealPool(
                            f"steal worker {worker_id} died mid-item",
                            worker_id=worker_id)

    def respawn(self, worker_id: int) -> None:
        """Replace a dead worker with a fresh process (and fresh inbox)."""
        old_process = self._processes[worker_id]
        if old_process.is_alive():
            old_process.terminate()
        old_process.join(timeout=1.0)
        old_inbox = self._inboxes[worker_id]
        try:
            old_inbox.close()
            old_inbox.cancel_join_thread()
        except Exception:
            pass
        self._spawn(worker_id)
        self.respawns += 1

    def kill_worker(self, worker_id: int) -> None:
        """Hard-kill one worker (fault injection's ``"steal-dispatch"`` site)."""
        process = self._processes[worker_id]
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)

    def close(self) -> None:
        """Shut the workers down; terminate any that ignore the sentinel."""
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except Exception:
                pass
        for process in self._processes:
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
        for channel in self._inboxes + [self._outbox]:
            try:
                channel.close()
                channel.cancel_join_thread()
            except Exception:
                pass
        self._inboxes = []
        self._processes = []


__all__ = ["BrokenStealPool", "StealPool"]
