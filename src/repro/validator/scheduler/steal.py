"""Process plumbing for the work-stealing executor backend.

:class:`StealPool` owns a persistent set of worker processes, each fed
**one item at a time**: the parent keeps per-worker deques of pending
work (see :class:`~repro.validator.scheduler.executors.StealExecutor`)
and dispatches the next item the moment a worker reports a result, so a
long chain item occupies exactly one worker while the others drain the
rest of the queue — unlike fixed ``Pool.map`` sharding, where the chunk
behind a straggler sits idle.  Single-item dispatch is also what lets
doomed items be *cancelled*: an undispached item is just a deque entry
the parent can drop.

Work items are pickled in the parent inside :meth:`StealPool.send`, so
an unpicklable payload raises synchronously where the executor can catch
it and degrade to serial (a queue's background feeder thread would
otherwise swallow the error and hang the run).  :meth:`StealPool.receive`
polls worker liveness while waiting, so a worker that dies mid-item
raises :class:`BrokenStealPool` instead of blocking forever; the
executor treats that exactly like a broken process pool.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
from typing import Dict, Tuple


class BrokenStealPool(RuntimeError):
    """A steal worker died or misbehaved; the executor degrades to serial."""


def _steal_worker_main(worker_id: int, inbox, outbox) -> None:
    """Worker loop: unpickle one item, validate it, ship the outcome back.

    Runs in a child process.  A ``None`` payload is the shutdown
    sentinel.  Item-level exceptions are reported back as failures (the
    parent degrades and reproduces them serially) rather than killing
    the worker.
    """
    from .executors import _validate_item  # deferred: executors imports us

    while True:
        payload = inbox.get()
        if payload is None:
            break
        tag, item = pickle.loads(payload)
        try:
            message = (worker_id, tag, True, _validate_item(item))
        except Exception as error:
            message = (worker_id, tag, False, f"{type(error).__name__}: {error}")
        outbox.put(message)


class StealPool:
    """A persistent pool of single-item workers for work stealing.

    The pool only moves items and results; *which* item a worker gets
    next — its own deque, or one stolen from a loaded sibling — is the
    executor's scheduling policy.  Tests monkeypatch this class to
    inject worker deaths without spawning processes.
    """

    def __init__(self, workers: int) -> None:
        context = multiprocessing.get_context()
        self._outbox = context.Queue()
        self._inboxes = []
        self._processes = []
        try:
            for worker_id in range(workers):
                inbox = context.Queue()
                process = context.Process(
                    target=_steal_worker_main,
                    args=(worker_id, inbox, self._outbox),
                    daemon=True, name=f"steal-worker-{worker_id}")
                process.start()
                self._inboxes.append(inbox)
                self._processes.append(process)
        except BaseException:
            self.close()
            raise

    def send(self, worker_id: int, tag: int, item: Tuple) -> None:
        """Dispatch one item to ``worker_id`` (pickles here, in the parent)."""
        self._inboxes[worker_id].put(pickle.dumps((tag, item)))

    def receive(self, outstanding: Dict[int, Tuple]) -> Tuple[int, int, bool, object]:
        """The next completed item: ``(worker id, tag, ok, payload)``.

        Blocks until a result arrives, checking the liveness of every
        worker in ``outstanding`` (worker id -> dispatched item) while
        waiting; a dead worker holding an item raises
        :class:`BrokenStealPool`.  Results already queued by a worker
        that died afterwards are still delivered first.
        """
        while True:
            try:
                return self._outbox.get(timeout=0.1)
            except queue.Empty:
                for worker_id in outstanding:
                    if not self._processes[worker_id].is_alive():
                        raise BrokenStealPool(
                            f"steal worker {worker_id} died mid-item")

    def close(self) -> None:
        """Shut the workers down; terminate any that ignore the sentinel."""
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except Exception:
                pass
        for process in self._processes:
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
        for channel in self._inboxes + [self._outbox]:
            try:
                channel.close()
                channel.cancel_join_thread()
            except Exception:
                pass
        self._inboxes = []
        self._processes = []


__all__ = ["BrokenStealPool", "StealPool"]
