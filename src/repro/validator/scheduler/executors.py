"""Execution backends: *how* a planned batch of validation work runs.

The planning layer (:mod:`repro.validator.scheduler.plan`) produces a
deduplicated, content-keyed :class:`~repro.validator.scheduler.plan.WorkPlan`;
an :class:`Executor` turns it into verdicts in the shared
:class:`~repro.validator.cache.ValidationCache`; the settlement layer
(:mod:`repro.validator.scheduler.settle`) reassembles per-function
records.  Because verdicts are content-addressed and settlement replays
the same strategy runners regardless of backend, **every executor
produces byte-identical record signatures** — backends may only change
where and in what order queries run, never what they decide
(``benchmarks/stepwise_guard.py --executor-parity`` enforces this on all
twelve corpora).

Three backends ship today:

``SerialExecutor``
    Runs every work item in-process.  Also the degradation target: any
    pool-level failure lands here through the same interface.
``PoolExecutor``
    Fans batches out over a ``ProcessPoolExecutor``.  Worker crashes,
    unpicklable payloads and platforms without process support degrade
    to serial in-place — re-running items is always safe because
    validation is deterministic and side-effect free, and verdicts are
    only merged into the cache *after* a batch completes, so a retried
    batch can neither lose nor double-count a cache query.
``WaveExecutor``
    Speculative pipeline-position scheduling for the stepwise strategy:
    wave *i* validates the *current* adjacent pair of every still-live
    function, then rejected functions are cancelled out of later waves
    and settled from the whole-query fallback.  The eager backends
    validate every planned pair up front — including the pairs after a
    rejection that the stepwise walk never consumes — so on
    high-rejection corpora the wave backend validates measurably fewer
    pairs for identical records.  Wraps an inner backend (serial or
    pool) for the actual batch execution.
``StealExecutor``
    Work stealing over a persistent pool of single-item workers
    (:mod:`repro.validator.scheduler.steal`): the priority-ordered item
    list is dealt into per-worker deques; a worker pops its own deque
    LIFO (its next planned item) and, when empty, steals FIFO from the
    most loaded sibling (that worker's farthest-future item), so a long
    chain item occupies one worker while the others drain the queue
    instead of idling behind a fixed shard boundary.  The wave backend's
    doomed-pair cancellation rides on the shared queue: a rejection
    streams back, releases the rejecting functions' later pairs, and
    undispatched items whose every demander is doomed are dropped from
    the deques.  Any pool failure degrades the *unfinished remainder* to
    serial — completed verdicts are content-addressed and kept.

The cross-host half of the ROADMAP's multi-host item ships behind the
same seam: ``config.steal_transport="tcp"`` swaps the steal backend's
in-process pipes for :class:`~repro.validator.scheduler.transport.TcpStealPool`
— a coordinator socket remote ``python -m
repro.validator.scheduler.worker`` processes join dynamically — without
touching planning, settlement, cancellation or the supervision logic
below (the pool contract is identical, so a remote worker death walks
the same respawn/requeue/quarantine path a local one does).
"""

from __future__ import annotations

import collections
import sys
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ...analysis.manager import AnalysisManager, CHECKPOINT_FINGERPRINTS
from ...ir.module import Function
from .. import faults
from ..cache import CacheKey, ValidationCache
from ..config import ValidatorConfig
from ..report import FunctionRecord
from ..validate import (UNCACHEABLE_REASONS, ChainOutcome, ValidationResult,
                        quarantined_result, validate, validate_bounded,
                        validate_chain)
from .budget import RequestBudget, admit_work
from .retry import POOL_RETRY
from .plan import (
    ChainSignature,
    PairProvider,
    WorkPlan,
    chain_amortizes,
    pending_whole_queries,
    resolved_executor,
)
from .settle import settle_chain_results
from . import steal

#: A sharded-chain worker's return value: one (possibly censored) verdict
#: per adjacent pair, the (possibly censored) whole-pair verdict, and the
#: chain graph's work telemetry.
ChainItemResult = Tuple[List[Optional[ValidationResult]],
                        Optional[ValidationResult], Dict[str, int]]


def _validate_item(item: Tuple):
    """Work-item entry point: validate one item (pair or whole chain).

    Runs in pool worker processes (pickled by reference, so it must stay
    a module-level function) and in-process for the serial backend.
    Pair items run through :func:`validate_bounded`, so
    ``config.pair_timeout`` and the ``"pair"`` fault site apply wherever
    the item lands — serial, process pool or steal worker; chain items
    share one normalization across all their pairs, so per-pair bounds
    do not apply to them.
    """
    if item[0] == "chain":
        _, versions, config = item
        outcome = validate_chain(versions, config)
        settled, whole = settle_chain_results(outcome, versions, config)
        return settled, whole, outcome.chain_stats
    _, before, after, config = item
    return validate_bounded(before, after, config)


def item_detail(item: Tuple) -> str:
    """The function name a work item is about (fault-site match detail)."""
    if item[0] == "chain":
        return item[1][0].name
    return item[1].name


def _quarantined_payload(item: Tuple, casualties: int, why: str):
    """A work item's result payload once the supervisor quarantines it."""
    if item[0] == "chain":
        _, versions, _config = item
        denial = quarantined_result(versions[0].name, casualties, why)
        return [denial] * (len(versions) - 1), denial, {}
    return quarantined_result(item[1].name, casualties, why)


@dataclass
class ExecutionOutcome:
    """What one :meth:`Executor.execute` run put into the cache.

    ``fresh`` holds every key this execution validated (settlement counts
    the first consumption of each as a miss, further ones as hits);
    ``chain_fresh`` the subset contributed by chain items.  The
    settlement provider appends inline-validated keys to ``fresh`` as it
    discovers them, so ``validated_queries`` snapshots the executor's own
    contribution first.
    """

    fresh: Set[CacheKey] = field(default_factory=set)
    chain_fresh: Set[CacheKey] = field(default_factory=set)
    chain_stats_by_signature: Dict[ChainSignature, Dict[str, int]] = field(
        default_factory=dict)
    #: Distinct queries this execution answered (pairs + chain-contributed
    #: pairs + settle-round wholes) — ``shard_stats["distinct_pairs"]``.
    validated_queries: int = 0
    #: Synthetic denials (``"timeout"`` / ``"quarantined"``) keyed like
    #: cache entries but routed *around* the cache: settlement consumes
    #: them exactly like budget denials, and a rerun re-validates them.
    denied: Dict[CacheKey, ValidationResult] = field(default_factory=dict)

    def adopt(self, cache: ValidationCache, key: CacheKey,
              result: ValidationResult, chain: bool = False) -> None:
        """File one fresh verdict: cacheable ones into the cache, synthetic
        denials into the ``denied`` side channel (never both)."""
        if result.reason in UNCACHEABLE_REASONS:
            self.denied[key] = result
            return
        cache.put(key, result)
        self.fresh.add(key)
        if chain:
            self.chain_fresh.add(key)


class Executor(ABC):
    """A backend that executes a :class:`WorkPlan` against a cache.

    The default :meth:`execute` is the eager two-round schedule: round 1
    validates every planned pair/chain item at once (maximal batch
    parallelism), the settle round fans out the whole-query fallbacks of
    functions whose adjacent pair rejected.  Subclasses either implement
    :meth:`run_batch` (how a batch of items runs) or override
    :meth:`execute` for a different schedule (see :class:`WaveExecutor`).
    """

    name = "abstract"

    def __init__(self) -> None:
        #: Work items handed to this backend (including degraded ones).
        self.items_run = 0
        #: Work items that actually ran on a process pool.
        self.pooled_items = 0
        #: Batches executed (an eager run has <= 2, a wave run one per wave).
        self.batches = 0
        #: Wave batches executed (wave backend only).
        self.waves = 0
        #: Function-wave slots cancelled after a rejection (wave only).
        self.waves_cancelled = 0
        #: Pool failures that degraded execution to serial.
        self.degraded = 0
        #: Planned pair queries never validated (wave cancellation).
        self.pairs_skipped = 0
        #: Dead workers (or broken pools) replaced by the supervisor
        #: instead of degrading the backend.
        self.workers_respawned = 0
        #: Poison items isolated after ``max_pair_retries`` casualties.
        self.pairs_quarantined = 0
        #: Items re-executed after a transient failure (requeues and
        #: retried pool batches).
        self.item_retries = 0

    # -- the backend-specific part ----------------------------------------
    @abstractmethod
    def run_batch(self, items: List[Tuple], config: ValidatorConfig) -> List:
        """Run one batch of work items, returning outcomes in order."""

    def close(self) -> None:
        """Release backend resources (worker pools)."""

    def stats(self) -> Dict[str, int]:
        """Per-backend counters for ``report.shard_stats``."""
        return {
            "items_run": self.items_run,
            "pooled_items": self.pooled_items,
            "batches": self.batches,
            "waves": self.waves,
            "waves_cancelled": self.waves_cancelled,
            "pool_degraded": self.degraded,
            "pairs_skipped": self.pairs_skipped,
            "workers_respawned": self.workers_respawned,
            "pairs_quarantined": self.pairs_quarantined,
            "item_retries": self.item_retries,
        }

    # -- the shared schedule ----------------------------------------------
    def execute(self, plan: WorkPlan, cache: ValidationCache,
                budget: Optional[RequestBudget] = None) -> ExecutionOutcome:
        """Eagerly validate the whole plan, then run the settle round.

        With a ``budget`` (the service daemon's per-request hook) only
        the work the budget still admits is executed — pairs first, then
        chain items, each charged before it runs — and the settle round
        is skipped once the budget is exhausted: the denied queries are
        answered with synthetic budget rejections at settlement time, so
        the affected records salvage their validated ``kept_prefix``
        instead of failing the whole request.
        """
        outcome = ExecutionOutcome()
        pending, pending_chains = plan.pending, plan.pending_chains
        if budget is not None:
            pending, pending_chains = admit_work(pending, pending_chains,
                                                 budget)
        self._run_pairs_and_chains(plan, cache, outcome,
                                   pending, pending_chains)
        if budget is None or not budget.exhausted:
            self._run_settle_round(plan, cache, outcome)
        outcome.validated_queries = len(outcome.fresh)
        return outcome

    def _run_pairs_and_chains(self, plan: WorkPlan, cache: ValidationCache,
                              outcome: ExecutionOutcome,
                              pending: Dict[CacheKey, Tuple[Function, Function]],
                              pending_chains: Dict[ChainSignature,
                                                   Tuple[List[Function], CacheKey]],
                              ) -> None:
        """Round 1: validate pair + chain items, merge into the cache.

        Chain items return one settled verdict per adjacent pair (raw
        rejects beyond the consumed prefix are censored — see
        :func:`~repro.validator.scheduler.settle.settle_chain_results`);
        only verdicts for keys nobody stored yet are adopted, so
        identical pairs keep a single entry.
        """
        if not pending and not pending_chains:
            return
        config = plan.config
        items: List[Tuple] = [("pair", before, after, config)
                              for before, after in pending.values()]
        items += [("chain", versions, config)
                  for versions, _ in pending_chains.values()]
        results = self.run_batch(items, config)
        for key, result in zip(pending, results[:len(pending)]):
            outcome.adopt(cache, key, result)
        for (signature, (_, whole_key)), item_result in zip(
                pending_chains.items(), results[len(pending):]):
            settled, whole_result, chain_stats = item_result
            outcome.chain_stats_by_signature[signature] = chain_stats
            for key, result in zip(signature + (whole_key,),
                                   settled + [whole_result]):
                if result is None or cache.peek(key) is not None:
                    continue
                outcome.adopt(cache, key, result, chain=True)

    def _run_settle_round(self, plan: WorkPlan, cache: ValidationCache,
                          outcome: ExecutionOutcome) -> None:
        """Stepwise settle round: whole fallbacks of rejected functions."""
        pending_whole = pending_whole_queries(plan, cache)
        if not pending_whole:
            return
        items = [("pair", before, after, plan.config)
                 for before, after in pending_whole.values()]
        results = self.run_batch(items, plan.config)
        for key, result in zip(pending_whole, results):
            outcome.adopt(cache, key, result)


class SerialExecutor(Executor):
    """Run every work item in-process, in order."""

    name = "serial"

    def run_batch(self, items: List[Tuple], config: ValidatorConfig) -> List:
        self.batches += 1
        self.items_run += len(items)
        return [_validate_item(item) for item in items]


class PoolExecutor(Executor):
    """Fan batches out over a ``ProcessPoolExecutor``; degrade to serial.

    The pool is created lazily on the first multi-item batch and reused
    across batches (wave schedules run many small batches; respawning
    workers per wave would dominate).  *Any* failure — a platform that
    cannot spawn processes, an unpicklable payload, a worker that raises
    or dies mid-batch — marks the backend degraded and re-runs the whole
    batch serially in-process: validation is deterministic and
    side-effect free, results only merge into the cache after the batch
    completes, so the retry can neither lose nor double-count a cache
    query, and a genuine per-item error reproduces serially anyway.
    """

    name = "pool"

    def __init__(self, workers: int) -> None:
        super().__init__()
        self.workers = workers
        self._pool = None

    def run_batch(self, items: List[Tuple], config: ValidatorConfig) -> List:
        self.batches += 1
        self.items_run += len(items)
        if len(items) <= 1 or self.degraded:
            return [_validate_item(item) for item in items]
        try:
            from concurrent.futures import ProcessPoolExecutor
        except ImportError:  # pragma: no cover - stdlib always has it
            return [_validate_item(item) for item in items]
        # Deep operand chains make pickling recursive; give the parent the
        # same recursion headroom validation itself gets.
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, config.recursion_limit))
        plan = config.fault_plan
        delays = POOL_RETRY.backoff(getattr(plan, "seed", 0))
        try:
            # A broken pool is usually transient (a spawn race, one dead
            # worker): retry the whole batch on a fresh pool before
            # giving the backend up — safe because validation is
            # deterministic and side-effect free, and verdicts only
            # merge into the cache after the batch completes.
            for attempt in range(1, POOL_RETRY.max_attempts + 1):
                try:
                    faults.maybe_fire(plan, "pool-batch")
                    if self._pool is None:
                        self._pool = ProcessPoolExecutor(max_workers=self.workers)
                    chunksize = max(1, len(items) // (self.workers * 4))
                    results = list(self._pool.map(_validate_item, items,
                                                  chunksize=chunksize))
                    self.pooled_items += len(items)
                    return results
                except Exception:
                    self.close()
                    if attempt >= POOL_RETRY.max_attempts:
                        raise
                    self.workers_respawned += 1
                    self.item_retries += len(items)
                    time.sleep(next(delays))
            raise AssertionError("unreachable")  # pragma: no cover
        except Exception:
            # Persistently broken: platforms without working process
            # spawning, unpicklable payloads, a poison item that kills
            # every fresh pool.  Degrade to serial execution through the
            # same interface (a genuine per-item error reproduces there).
            self.degraded += 1
            self.close()
            return [_validate_item(item) for item in items]
        finally:
            sys.setrecursionlimit(old_limit)

    def close(self) -> None:
        if self._pool is not None:
            pool, self._pool = self._pool, None
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken pools may throw
                pass


class WaveExecutor(Executor):
    """Speculative pipeline-position scheduling over an inner backend.

    For the stepwise strategy, a rejected adjacent pair makes every later
    pair of that function unnecessary for its record: the settlement walk
    stops at the first rejection and falls back to the whole query.  The
    eager schedule still validates those doomed pairs (they were planned
    before any verdict existed).  This backend instead keeps a cursor per
    function and repeatedly validates one *wave*: the deduplicated batch
    of every live function's current pair.  After each wave, functions
    whose pair rejected are cancelled out of the remaining waves and
    settled from the whole-query fallback, so a high-rejection corpus
    stops paying for pairs no record will ever consume.  Pairs remain
    deduplicated across functions and answered through the shared cache,
    so records stay byte-identical to the eager backends'.

    Non-stepwise strategies have one query per function — waves cannot
    cancel anything — and fall through to the eager schedule.
    """

    name = "wave"

    def __init__(self, inner: Executor) -> None:
        super().__init__()
        self.inner = inner

    def run_batch(self, items: List[Tuple], config: ValidatorConfig) -> List:
        return self.inner.run_batch(items, config)

    def close(self) -> None:
        self.inner.close()

    def stats(self) -> Dict[str, int]:
        counters = self.inner.stats()
        counters["waves"] = self.waves
        counters["waves_cancelled"] = self.waves_cancelled
        counters["pairs_skipped"] = self.pairs_skipped
        return counters

    @property
    def pooled_items(self) -> int:
        return self.inner.pooled_items

    @pooled_items.setter
    def pooled_items(self, value: int) -> None:
        # The base-class __init__ assigns 0; pooling is tracked by the
        # inner backend, so the write is accepted and ignored.
        pass

    @property
    def degraded(self) -> int:
        return self.inner.degraded

    @degraded.setter
    def degraded(self, value: int) -> None:
        pass

    def execute(self, plan: WorkPlan, cache: ValidationCache,
                budget: Optional[RequestBudget] = None) -> ExecutionOutcome:
        if plan.strategy != "stepwise":
            return super().execute(plan, cache, budget)
        outcome = ExecutionOutcome()
        # The planner does not pack chains for the wave backend, but an
        # explicitly handed plan may hold some: run them up front so the
        # cursor walk below consumes their verdicts from the cache.
        if plan.pending_chains:
            self._run_pairs_and_chains(plan, cache, outcome, {},
                                       plan.pending_chains)

        cursors: Dict[int, int] = {}
        live = [function_plan for function_plan in plan.function_plans()
                if function_plan.pair_keys]
        while live:
            if budget is not None and budget.exhausted:
                break  # remaining waves are denied at settlement time
            batch: Dict[CacheKey, Tuple[Function, Function]] = {}
            next_live = []
            for function_plan in live:
                cursor = cursors.get(id(function_plan), 0)
                demands = False
                rejected = False
                while cursor < len(function_plan.pair_keys):
                    result = cache.peek(function_plan.pair_keys[cursor])
                    if result is None:
                        # A synthetic denial (timeout/quarantine) never
                        # enters the cache but has decided this pair: the
                        # walk treats it as the rejection it settles as.
                        result = outcome.denied.get(
                            function_plan.pair_keys[cursor])
                    if result is None:
                        demands = True
                        break
                    if not result.is_success:
                        rejected = True
                        break
                    cursor += 1
                cursors[id(function_plan)] = cursor
                if rejected:
                    # Cancel this function's remaining waves; its record
                    # settles from the whole-query fallback below.
                    self.waves_cancelled += (len(function_plan.pair_keys)
                                             - cursor - 1)
                    continue
                if not demands:
                    continue  # every pair accepted: the walk is complete
                key = function_plan.pair_keys[cursor]
                if key not in batch:
                    batch[key] = (function_plan.versions[cursor],
                                  function_plan.versions[cursor + 1])
                next_live.append(function_plan)
            live = next_live
            if not batch:
                break
            if budget is not None:
                remaining = budget.remaining_pairs()
                if remaining is not None and remaining < len(batch):
                    batch = dict(list(batch.items())[:remaining])
                budget.charge(len(batch))
                if not batch:
                    break
            self.waves += 1
            results = self.run_batch(
                [("pair", before, after, plan.config)
                 for before, after in batch.values()], plan.config)
            for key, result in zip(batch, results):
                outcome.adopt(cache, key, result)

        if budget is None or not budget.exhausted:
            self._run_settle_round(plan, cache, outcome)
        self.pairs_skipped = sum(1 for key in plan.pending
                                 if key not in outcome.fresh
                                 and key not in outcome.denied)
        outcome.validated_queries = len(outcome.fresh)
        return outcome


class StealExecutor(Executor):
    """Work stealing over a persistent pool of single-item workers.

    Items are dealt into per-worker deques as contiguous runs of the
    priority order (stepwise: chain items first, then pairs by earliest
    pipeline position — the pairs whose verdicts can cancel the most
    later work).  Each worker is fed one item at a time: on completion
    it pops the next item off its own deque's top (**LIFO-local** — the
    next item in its planned run), and an empty worker steals from the
    *bottom* of the most loaded sibling's deque (**FIFO-steal** — the
    victim's farthest-future item, the classic stealing discipline that
    minimizes contention on what the owner touches next).  A long chain
    item therefore occupies exactly one worker while every other item
    migrates to idle workers, instead of stalling a fixed shard.

    For the stepwise strategy the shared queue also carries the wave
    trick: results stream back one at a time, a rejection releases the
    demand its doomed functions placed on their later pairs, and an
    undispatched pair whose every demanding function is doomed is
    dropped from the deques (``pairs_skipped``).  Because pairs are
    content-deduplicated across functions, an item is only cancelled
    when *no* live function can still consume it, and the settle round
    plus :func:`~repro.validator.scheduler.settle.settle_plan` reassemble
    records byte-identical to serial — the skipped pairs are exactly the
    ones no record's walk ever reads.

    *Any* pool failure — spawn failure, unpicklable payload, a worker
    dying mid-item — degrades the backend and runs every **unfinished**
    item serially in-process.  Completed verdicts are kept: validation
    is deterministic and side-effect free and each verdict merged into
    the cache exactly once as it arrived, so the serial remainder can
    neither lose nor double-count a cache query.  With ``concurrency``
    of 0 or 1 no processes are spawned at all: the scheduling loop runs
    in-process in priority order (still cancelling doomed pairs), which
    is also the deterministic single-worker parity baseline.
    """

    name = "steal"

    def __init__(self, workers: int) -> None:
        super().__init__()
        self.workers = max(1, workers or 0)
        self._pool = None
        #: Items a worker took from a sibling's deque.
        self.items_stolen = 0
        #: Times an idle worker looked for work beyond its own deque
        #: (successful or not).
        self.steal_attempts = 0
        #: TCP-transport membership counters, snapshotted at close.
        self._remote_stats: Dict[str, int] = {}

    def stats(self) -> Dict[str, int]:
        counters = super().stats()
        counters["items_stolen"] = self.items_stolen
        counters["steal_attempts"] = self.steal_attempts
        counters.update(self._remote_stats)
        return counters

    def close(self) -> None:
        if self._pool is not None:
            pool, self._pool = self._pool, None
            coordinator = getattr(pool, "coordinator", None)
            if coordinator is not None:
                # Snapshot the membership counters before the server dies
                # — shard_stats outlives the per-batch coordinator.
                self._remote_stats = {
                    "remote_workers_joined": coordinator.workers_joined,
                    "remote_workers_left": coordinator.workers_left,
                    "handshakes_rejected": coordinator.rejected,
                }
            try:
                pool.close()
            except Exception:  # pragma: no cover - broken pools may throw
                pass

    def _make_pool(self, config: ValidatorConfig):
        """Build the transport `config.steal_transport` selects."""
        if getattr(config, "steal_transport", "pipe") == "tcp":
            from . import transport
            return transport.TcpStealPool(self.workers, config)
        return steal.StealPool(self.workers)

    def run_batch(self, items: List[Tuple], config: ValidatorConfig) -> List:
        results: List = [None] * len(items)

        def collect(tag: int, result) -> None:
            results[tag] = result

        self._run_stealing(list(enumerate(items)), config, collect)
        return results

    def _run_stealing(self, tagged_items: List[Tuple[int, Tuple]],
                      config: ValidatorConfig,
                      on_result: Callable[[int, object], None],
                      is_cancelled: Optional[Callable[[int], bool]] = None,
                      ) -> None:
        """Schedule priority-ordered ``(tag, item)`` work, streaming results.

        ``on_result`` fires once per completed item, in completion order;
        ``is_cancelled`` is consulted at every dispatch so items doomed
        by earlier results are dropped without running.

        Supervision: a worker death *attributable* to one in-flight item
        (the :class:`~repro.validator.scheduler.steal.BrokenStealPool`
        names the worker) costs one worker respawn and a requeue of that
        item — the batch keeps running on the surviving workers.  An
        item that keeps killing its workers past
        ``config.max_pair_retries`` is quarantined (a synthetic uncached
        ``"quarantined"`` denial) instead of taking the backend down
        with it.  Only *unattributable* failures — queue plumbing, an
        item-level exception a live worker reported, spawn failure —
        still degrade the whole backend to serial, the historical
        behavior.
        """
        self.batches += 1
        if self.workers <= 1 or self.degraded or len(tagged_items) <= 1:
            for tag, item in tagged_items:
                if is_cancelled is not None and is_cancelled(tag):
                    continue
                self.items_run += 1
                on_result(tag, _validate_item(item))
            return
        done: Set[int] = set()
        plan = config.fault_plan
        #: tag -> workers this item has killed (crash or corrupt retry).
        casualties: Dict[int, int] = {}
        # Deep operand chains make pickling recursive; give the parent the
        # same recursion headroom validation itself gets.
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, config.recursion_limit))
        try:
            if self._pool is None:
                self._pool = self._make_pool(config)
            pool = self._pool
            # Contiguous runs of the priority order, reversed so the
            # deque's right end (the owner's LIFO "top") holds the run's
            # first item and its left end (the steal side) the last.
            chunk_size = -(-len(tagged_items) // self.workers)
            deques = [collections.deque(reversed(tagged_items[start:start + chunk_size]))
                      for start in range(0, len(tagged_items), chunk_size)]
            deques += [collections.deque()
                       for _ in range(self.workers - len(deques))]

            def next_item(worker_id: int) -> Optional[Tuple[int, Tuple]]:
                while True:
                    if deques[worker_id]:
                        tag, item = deques[worker_id].pop()
                    else:
                        self.steal_attempts += 1
                        victim = max(range(self.workers),
                                     key=lambda v: len(deques[v]))
                        if not deques[victim]:
                            return None  # nothing left anywhere: go idle
                        tag, item = deques[victim].popleft()
                        self.items_stolen += 1
                    if is_cancelled is not None and is_cancelled(tag):
                        continue
                    return tag, item

            outstanding: Dict[int, Tuple[int, Tuple]] = {}

            def dispatch_to(worker_id: int) -> None:
                dispatch = next_item(worker_id)
                if dispatch is None:
                    return
                pool.send(worker_id, dispatch[0], dispatch[1])
                outstanding[worker_id] = dispatch
                if plan is not None:
                    # The "steal-dispatch" crash site kills the worker
                    # *after* it was handed this item — a parent-side
                    # schedule, so "kill one worker once" means exactly
                    # once across respawns (worker-side counters reset
                    # with each fresh process).
                    spec = faults.should_fire(plan, "steal-dispatch",
                                              detail=item_detail(dispatch[1]))
                    if spec is not None and spec.action == "crash":
                        kill = getattr(pool, "kill_worker", None)
                        if kill is not None:
                            kill(worker_id)

            def absorb_casualty(worker_id: int, tag: int, item: Tuple,
                                why: str) -> None:
                """Requeue a worker-killing item, or quarantine it."""
                casualties[tag] = casualties.get(tag, 0) + 1
                if is_cancelled is not None and is_cancelled(tag):
                    return  # nobody will consume it; drop instead
                if casualties[tag] > config.max_pair_retries:
                    self.pairs_quarantined += 1
                    done.add(tag)
                    self.items_run += 1
                    on_result(tag, _quarantined_payload(item, casualties[tag],
                                                        why))
                else:
                    self.item_retries += 1
                    deques[worker_id].append((tag, item))

            for worker_id in range(self.workers):
                dispatch_to(worker_id)
            while outstanding:
                try:
                    worker_id, tag, ok, payload = pool.receive(outstanding)
                except steal.BrokenStealPool as death:
                    hurt = getattr(death, "worker_id", None)
                    respawn = getattr(pool, "respawn", None)
                    if hurt is None or respawn is None \
                            or hurt not in outstanding:
                        raise  # unattributable: degrade wholesale below
                    lost_tag, lost_item = outstanding.pop(hurt)
                    respawn(hurt)
                    self.workers_respawned += 1
                    absorb_casualty(hurt, lost_tag, lost_item,
                                    f"steal worker {hurt} died mid-item")
                    dispatch_to(hurt)
                    continue
                dispatched = outstanding.pop(worker_id, None)
                if ok and dispatched is not None and plan is not None:
                    spec = faults.maybe_fire(plan, "payload",
                                             detail=item_detail(dispatched[1]))
                    if spec is not None and spec.action == "corrupt":
                        # The transient-failure path in miniature: the
                        # result arrived mangled, so the item retries on
                        # the worker's own deque (and quarantines if the
                        # corruption follows it).
                        absorb_casualty(worker_id, dispatched[0],
                                        dispatched[1],
                                        "corrupted result payload")
                        dispatch_to(worker_id)
                        continue
                if not ok:
                    raise steal.BrokenStealPool(
                        f"steal worker {worker_id} failed: {payload}")
                done.add(tag)
                self.items_run += 1
                self.pooled_items += 1
                on_result(tag, payload)
                dispatch_to(worker_id)
        except Exception:
            # Spawn failures, unpicklable payloads and unattributable
            # deaths all land here: keep every streamed-back verdict and
            # run the unfinished remainder serially in priority order.
            self.degraded += 1
            self.close()
            for tag, item in tagged_items:
                if tag in done:
                    continue
                if is_cancelled is not None and is_cancelled(tag):
                    continue
                self.items_run += 1
                on_result(tag, _validate_item(item))
        finally:
            sys.setrecursionlimit(old_limit)

    def execute(self, plan: WorkPlan, cache: ValidationCache,
                budget: Optional[RequestBudget] = None) -> ExecutionOutcome:
        if plan.strategy != "stepwise":
            return super().execute(plan, cache, budget)
        outcome = ExecutionOutcome()
        config = plan.config
        pending, pending_chains = plan.pending, plan.pending_chains
        if budget is not None:
            # Admission-time budgeting: chains are the longest items, so
            # they are admitted first here (charged per covered pair) and
            # the remaining pair allowance fills up with plain pairs.
            _, pending_chains = admit_work({}, pending_chains, budget)
            pending, _ = admit_work(pending, {}, budget)

        # Demand bookkeeping for streaming cancellation: which functions
        # demand each key, at which pipeline positions, and per function
        # the cutoff position past which its walk can no longer reach
        # (the stepwise walk stops at its first rejection, so a rejection
        # at position p releases every demand at positions > p whatever
        # the earlier pairs decide).
        key_positions: Dict[CacheKey, List[Tuple[int, int]]] = {}
        released: List[int] = []
        for function_index, function_plan in enumerate(plan.function_plans()):
            cutoff = len(function_plan.pair_keys)
            for position, key in enumerate(function_plan.pair_keys):
                key_positions.setdefault(key, []).append(
                    (function_index, position))
                if cutoff == len(function_plan.pair_keys):
                    result = cache.peek(key)
                    if result is not None and not result.is_success:
                        cutoff = position + 1
            released.append(cutoff)

        def release(key: CacheKey) -> None:
            for function_index, position in key_positions.get(key, ()):
                if position + 1 < released[function_index]:
                    released[function_index] = position + 1

        def doomed(key: CacheKey) -> bool:
            demanders = key_positions.get(key)
            if not demanders:
                return False
            return all(position >= released[function_index]
                       for function_index, position in demanders)

        # One shared queue: chain items first (they cover whole
        # functions and are the longest), then pairs ordered by the
        # earliest pipeline position demanding them — the verdicts most
        # able to cancel later work arrive first.
        tagged: List[Tuple[int, Tuple]] = []
        kinds: List[Tuple] = []
        for signature, (versions, whole_key) in pending_chains.items():
            kinds.append(("chain", signature, whole_key))
            tagged.append((len(tagged), ("chain", versions, config)))
        pair_order = sorted(
            pending,
            key=lambda key: min(position for _, position in key_positions[key]))
        for key in pair_order:
            before, after = pending[key]
            kinds.append(("pair", key))
            tagged.append((len(tagged), ("pair", before, after, config)))

        def handle(tag: int, result) -> None:
            kind = kinds[tag]
            if kind[0] == "chain":
                _, signature, whole_key = kind
                settled, whole_result, chain_stats = result
                outcome.chain_stats_by_signature[signature] = chain_stats
                for key, settled_result in zip(signature + (whole_key,),
                                               settled + [whole_result]):
                    if settled_result is None or cache.peek(key) is not None:
                        continue
                    outcome.adopt(cache, key, settled_result, chain=True)
                    if not settled_result.is_success:
                        release(key)
            else:
                key = kind[1]
                outcome.adopt(cache, key, result)
                if not result.is_success:
                    release(key)

        def is_cancelled(tag: int) -> bool:
            # Wall-clock expiry cancels undispatched items mid-run; the
            # pair cap was already enforced at admission time, so only
            # the deadline axis is consulted here.
            if budget is not None and budget.expired:
                return True
            kind = kinds[tag]
            return kind[0] == "pair" and doomed(kind[1])

        if tagged:
            self._run_stealing(tagged, config, handle, is_cancelled)
        if budget is None or not budget.exhausted:
            self._run_settle_round(plan, cache, outcome)
        self.pairs_skipped += sum(1 for key in plan.pending
                                  if key not in outcome.fresh
                                  and key not in outcome.denied)
        outcome.validated_queries = len(outcome.fresh)
        return outcome


def create_executor(config: ValidatorConfig) -> Executor:
    """Build the backend ``config.executor`` / ``config.concurrency`` select.

    ``"auto"`` resolves to pool when ``concurrency > 1`` and serial
    otherwise; ``"wave"`` wraps whichever of the two the concurrency
    setting implies; ``"steal"`` spawns ``concurrency`` single-item
    workers (or runs its scheduling loop in-process for 0/1).  Invalid
    combinations were rejected when the config was constructed.
    """
    name = resolved_executor(config)
    pooled = bool(config.concurrency and config.concurrency > 1)
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        return PoolExecutor(config.concurrency)
    if name == "wave":
        inner = PoolExecutor(config.concurrency) if pooled else SerialExecutor()
        return WaveExecutor(inner)
    if name == "steal":
        return StealExecutor(config.concurrency)
    raise ValueError(f"unknown executor {name!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Lazy serial providers — the per-function execution path.
# ---------------------------------------------------------------------------

def validate_pair_cached(
    before: Function,
    after: Function,
    config: ValidatorConfig,
    cache: Optional[ValidationCache],
    manager: Optional[AnalysisManager],
) -> Tuple[ValidationResult, bool]:
    """Validate one pair through the optional cache; returns (result, hit)."""
    if cache is None:
        return validate_bounded(before, after, config, manager=manager), False
    key = cache.key(before, after, config)
    cached = cache.get(key, before.name)
    if cached is not None:
        return cached, True
    result = validate_bounded(before, after, config, manager=manager)
    cache.put(key, result)  # put refuses synthetic (timeout) denials
    return result, False


def serial_provider(config: ValidatorConfig, cache: Optional[ValidationCache],
                    manager: Optional[AnalysisManager]) -> PairProvider:
    """The lazy provider: validate on demand through the optional cache."""

    def provider(before: Function, after: Function) -> Tuple[ValidationResult, bool]:
        return validate_pair_cached(before, after, config, cache, manager)

    return provider


def chain_provider(versions: List[Function], config: ValidatorConfig,
                   cache: Optional[ValidationCache],
                   manager: Optional[AnalysisManager],
                   record: FunctionRecord) -> PairProvider:
    """Answer adjacent-pair queries from ONE chain-shared value graph.

    The chain graph is built (and normalized, once) lazily — on the first
    adjacent-pair query the cache cannot answer — so fully cached
    functions never pay for it, exactly as the per-pair path never
    validates on a hit; and only when enough pairs are uncached to
    amortize translating all k versions (:func:`chain_amortizes`), so a
    warm cache with one modified pipeline pass revalidates the straggler
    pairs in isolation instead of re-paying near-cold cost.  Raw chain
    *accepts* are consumed directly; raw chain *rejects* are consumed
    only when the outcome marks them authoritative (``rejects_trusted``)
    and otherwise re-checked with an isolated per-pair
    :func:`~repro.validator.validate.validate` before being trusted or
    cached, which keeps every consumed verdict identical to the per-pair
    strategy's (an iteration-capped normalization, or a reject that may
    merely reflect the union-scoped observability approximations, is
    never authoritative).  The whole-query fallback ``(original,
    final)`` is answered from the same graph on the same terms; anything
    else falls through to the per-pair path untouched.
    """
    state: Dict[str, ChainOutcome] = {}
    decision: Dict[str, bool] = {}
    fingerprints: Dict[int, str] = {}
    positions = {(id(before), id(after)): index
                 for index, (before, after) in enumerate(zip(versions, versions[1:]))}
    whole_pair = (id(versions[0]), id(versions[-1]))
    fallthrough = serial_provider(config, cache, manager)

    def fingerprint(function: Function) -> str:
        # Interior versions serve two pairs (and the worthwhile check
        # peeks every pair), so memoize by identity — the versions list
        # pins the objects alive.  The shared checkpoint table answers
        # first: the planner/snapshot layer already hashed every changed
        # checkpoint, so only the original version (absent from the
        # global table — the caller may mutate it) is hashed here, once.
        memoized = fingerprints.get(id(function))
        if memoized is None:
            memoized = CHECKPOINT_FINGERPRINTS.fingerprint(function)
            fingerprints[id(function)] = memoized
        return memoized

    def pair_key(before: Function, after: Function) -> CacheKey:
        return cache.key_for(fingerprint(before), fingerprint(after), config)

    def outcome() -> ChainOutcome:
        if "outcome" not in state:
            # Lazy fallback: on a chain build/normalize failure the
            # outcome comes back empty and every query below validates
            # per-pair on demand — pairs past the stepwise walk's first
            # rejection are then never paid for.
            state["outcome"] = validate_chain(versions, config, manager,
                                              eager_fallback=False)
            record.chain_stats = state["outcome"].chain_stats
        return state["outcome"]

    def chain_worthwhile() -> bool:
        """Is building the chain cheaper than validating the misses alone?

        With a warm cache and only a straggler or two missing (one
        pipeline pass changed since the last sweep), per-pair wins — the
        chain would re-pay near-cold cost for the whole function.
        Without a cache every pair is missing and the chain always wins.
        """
        if cache is None:
            return True
        if "build" not in decision:
            missing = sum(
                1 for left, right in zip(versions, versions[1:])
                if cache.peek(pair_key(left, right)) is None)
            decision["build"] = chain_amortizes(missing, len(versions))
        return decision["build"]

    def provider(before: Function, after: Function) -> Tuple[ValidationResult, bool]:
        position = positions.get((id(before), id(after)))
        is_whole = position is None and (id(before), id(after)) == whole_pair
        if position is None and not is_whole:
            return fallthrough(before, after)
        if is_whole and "outcome" not in state:
            # Every adjacent pair was answered from the cache (or the
            # stragglers validated per-pair), so no chain was built;
            # deciding the whole query per-pair mirrors the batch
            # driver's settle round exactly.
            return fallthrough(before, after)
        key: Optional[CacheKey] = None
        if cache is not None:
            key = pair_key(before, after)
            cached = cache.get(key, before.name)
            if cached is not None:
                return cached, True
        result: Optional[ValidationResult]
        if "outcome" not in state and not chain_worthwhile():
            # Too few uncached pairs to amortize a chain build: answer
            # this straggler in isolation below.
            result = None
        else:
            chain = outcome()
            if chain.fallback:
                result = None  # lazy fallback: validate this query in isolation
            elif is_whole:
                result = chain.whole_result
            else:
                result = chain.pair_results[position]
            if result is not None and not result.is_success and not chain.rejects_trusted:
                # The chain's normalization was cut off by the iteration
                # bound, or a rejecting pair holds a store only its
                # isolated pair graph can prune (root-scoped
                # observability), so this rejection is not authoritative
                # yet.
                result = None
        if result is None:
            result = validate_bounded(before, after, config, manager=manager)
        if cache is not None and key is not None:
            cache.put(key, result)  # put refuses synthetic (timeout) denials
        return result, False

    return provider


__all__ = [
    "ChainItemResult",
    "ExecutionOutcome",
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "WaveExecutor",
    "StealExecutor",
    "create_executor",
    "serial_provider",
    "chain_provider",
    "validate_pair_cached",
]
