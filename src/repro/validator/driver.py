"""The LLVM-MD driver: optimize, validate, keep or reject per function.

This is the paper's §2 pseudo-code::

    function llvm-md(var input) {
        output = opt -options input
        for each function f in input {
            extract f from input as fi and output as fo
            if (!validate fi fo) { replace fo by fi in output }
        }
        return output
    }

Our ``opt`` is the pass pipeline from :mod:`repro.transforms`; everything
else is the same: the validator treats the optimizer as a black box and
needs no instrumentation.  On top of the paper's monolithic
(original, fully-optimized) query, :func:`validate_function_pipeline` now
offers three *strategies*:

``"whole"``
    The paper's behavior: one validation of the composed pipeline.  A
    rejection rolls back every optimization and cannot name the pass at
    fault.
``"stepwise"``
    The pass manager checkpoints the function after every pass and each
    *adjacent* checkpoint pair is validated — every equivalence problem is
    only one pass's effect wide.  A rejection blames the failing pass and
    the longest validated prefix of the pipeline is *kept* instead of
    discarding all optimization work.  (Pair problems are not always
    easier than the composition — a later pass can undo an earlier one —
    so a rejected pair falls back to the whole query first; stepwise
    accepts a superset of what whole accepts, by construction.)
``"bisect"``
    Try the whole query first (no extra cost on the accepting fast path);
    on rejection, binary-search the checkpoint list with
    (original, checkpoint) probes to attribute blame to a single pass and
    keep the longest prefix the probes proved.

All strategies can share one :class:`~repro.analysis.manager.AnalysisManager`
so per-version analyses (dominators, loops, gates, ...) are computed once
per checkpoint no matter how many queries consume them, and every strategy
is written against one *pair provider* abstraction — a callable answering
``(before, after) -> (result, was_cached)`` — so the serial driver (which
validates lazily through the :class:`ValidationCache`) and the sharded
batch driver (which pre-validates a flattened work queue on a process
pool) assemble byte-identical per-function verdicts from the same code.

Under ``strategy="stepwise"`` with ``config.chain_graphs`` (the default),
the adjacent-pair queries are answered from ONE *chain-shared* value
graph per function: every pipeline checkpoint is hash-consed into a
single :class:`~repro.vgraph.graph.ValueGraph` and normalized once
(:func:`~repro.validator.validate.validate_chain`), replacing k
independent build+normalize runs.  The per-pair path remains both the
fallback (chain construction failures, untrusted rejection re-checks)
and the parity oracle — ``benchmarks/stepwise_guard.py --chain-parity``
enforces identical record signatures with the flag on vs off.

For corpus-scale traffic the module adds a batch layer on top:
:func:`validate_module_batch` validates many modules through one
:class:`ValidationCache` and, when ``config.concurrency > 1``, *shards*
the work: the deduplicated validation queries of **all** functions of
**all** modules — whole pairs under ``"whole"``/``"bisect"``, every
per-pass adjacent checkpoint pair under ``"stepwise"`` — are flattened
into one queue and fanned out over a ``ProcessPoolExecutor``, then merged
back into the shared cache and reassembled into per-function records
identical to the serial path's.  With ``config.cache_dir`` set the cache
is *persistent*: previously proved pairs are loaded from disk up front and
the merged results are saved back after the run, so repeated corpus sweeps
and CI re-runs skip everything proved before.
"""

from __future__ import annotations

import pickle
import sys
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.manager import AnalysisManager, function_fingerprint
from ..ir.cloning import clone_function, clone_globals_into
from ..ir.module import Function, Module
from ..ir.values import Value
from ..transforms.pass_manager import (
    PAPER_PIPELINE,
    PassManager,
    PassSnapshot,
    checkpoint_chain,
)
from .cache import CacheKey, ValidationCache
from .config import DEFAULT_CONFIG, ValidatorConfig
from .report import FunctionRecord, ValidationReport
from .validate import ChainOutcome, ValidationResult, validate, validate_chain

#: The validation strategies :func:`validate_function_pipeline` implements.
STRATEGIES = ("whole", "stepwise", "bisect")

#: A pair provider: answers one ``(before, after)`` validation query,
#: returning ``(result, was_answered_from_cache)``.
PairProvider = Callable[[Function, Function], Tuple[ValidationResult, bool]]


def _validate_pair_cached(
    before: Function,
    after: Function,
    config: ValidatorConfig,
    cache: Optional[ValidationCache],
    manager: Optional[AnalysisManager],
) -> Tuple[ValidationResult, bool]:
    """Validate one pair through the optional cache; returns (result, hit)."""
    if cache is None:
        return validate(before, after, config, manager=manager), False
    key = cache.key(before, after, config)
    cached = cache.get(key, before.name)
    if cached is not None:
        return cached, True
    result = validate(before, after, config, manager=manager)
    cache.put(key, result)
    return result, False


def _serial_provider(config: ValidatorConfig, cache: Optional[ValidationCache],
                     manager: Optional[AnalysisManager]) -> PairProvider:
    """The lazy provider: validate on demand through the optional cache."""

    def provider(before: Function, after: Function) -> Tuple[ValidationResult, bool]:
        return _validate_pair_cached(before, after, config, cache, manager)

    return provider


def _chain_amortizes(missing_pairs: int, versions: int) -> bool:
    """Does building the chain beat validating the misses in isolation?

    The chain translates all ``versions`` checkpoints once; the per-pair
    path translates two per uncached pair — so the chain pays off
    roughly when ``2 × misses >= k``.  The serial provider and the batch
    planner share this policy so both drivers choose chain vs straggler
    identically for the same cache state.
    """
    return 2 * missing_pairs >= versions


def _chain_provider(versions: List[Function], config: ValidatorConfig,
                    cache: Optional[ValidationCache],
                    manager: Optional[AnalysisManager],
                    record: FunctionRecord) -> PairProvider:
    """Answer adjacent-pair queries from ONE chain-shared value graph.

    The chain graph is built (and normalized, once) lazily — on the first
    adjacent-pair query the cache cannot answer — so fully cached
    functions never pay for it, exactly as the per-pair path never
    validates on a hit; and only when enough pairs are uncached to
    amortize translating all k versions (:func:`_chain_amortizes`), so a
    warm cache with one modified pipeline pass revalidates the straggler
    pairs in isolation instead of re-paying near-cold cost.  Raw chain
    *accepts* are consumed directly; raw chain *rejects* are consumed
    only when the outcome marks them authoritative (``rejects_trusted``)
    and otherwise re-checked with an isolated per-pair
    :func:`~repro.validator.validate.validate` before being trusted or
    cached, which keeps every consumed verdict identical to the per-pair
    strategy's (an iteration-capped normalization, or a reject that may
    merely reflect the union-scoped observability approximations, is
    never authoritative).  The whole-query fallback ``(original,
    final)`` is answered from the same graph on the same terms; anything
    else falls through to the per-pair path untouched.
    """
    state: Dict[str, ChainOutcome] = {}
    decision: Dict[str, bool] = {}
    fingerprints: Dict[int, str] = {}
    positions = {(id(before), id(after)): index
                 for index, (before, after) in enumerate(zip(versions, versions[1:]))}
    whole_pair = (id(versions[0]), id(versions[-1]))
    fallthrough = _serial_provider(config, cache, manager)

    def fingerprint(function: Function) -> str:
        # Interior versions serve two pairs (and the worthwhile check
        # peeks every pair), so memoize the full-IR print + hash by
        # identity — the versions list pins the objects alive.
        memoized = fingerprints.get(id(function))
        if memoized is None:
            memoized = function_fingerprint(function)
            fingerprints[id(function)] = memoized
        return memoized

    def pair_key(before: Function, after: Function) -> CacheKey:
        return cache.key_for(fingerprint(before), fingerprint(after), config)

    def outcome() -> ChainOutcome:
        if "outcome" not in state:
            # Lazy fallback: on a chain build/normalize failure the
            # outcome comes back empty and every query below validates
            # per-pair on demand — pairs past the stepwise walk's first
            # rejection are then never paid for.
            state["outcome"] = validate_chain(versions, config, manager,
                                              eager_fallback=False)
            record.chain_stats = state["outcome"].chain_stats
        return state["outcome"]

    def chain_worthwhile() -> bool:
        """Is building the chain cheaper than validating the misses alone?

        With a warm cache and only a straggler or two missing (one
        pipeline pass changed since the last sweep), per-pair wins — the
        chain would re-pay near-cold cost for the whole function.
        Without a cache every pair is missing and the chain always wins.
        """
        if cache is None:
            return True
        if "build" not in decision:
            missing = sum(
                1 for left, right in zip(versions, versions[1:])
                if cache.peek(pair_key(left, right)) is None)
            decision["build"] = _chain_amortizes(missing, len(versions))
        return decision["build"]

    def provider(before: Function, after: Function) -> Tuple[ValidationResult, bool]:
        position = positions.get((id(before), id(after)))
        is_whole = position is None and (id(before), id(after)) == whole_pair
        if position is None and not is_whole:
            return fallthrough(before, after)
        if is_whole and "outcome" not in state:
            # Every adjacent pair was answered from the cache (or the
            # stragglers validated per-pair), so no chain was built;
            # deciding the whole query per-pair mirrors the batch
            # driver's whole-fallback round exactly.
            return fallthrough(before, after)
        key: Optional[CacheKey] = None
        if cache is not None:
            key = pair_key(before, after)
            cached = cache.get(key, before.name)
            if cached is not None:
                return cached, True
        result: Optional[ValidationResult]
        if "outcome" not in state and not chain_worthwhile():
            # Too few uncached pairs to amortize a chain build: answer
            # this straggler in isolation below.
            result = None
        else:
            chain = outcome()
            if chain.fallback:
                result = None  # lazy fallback: validate this query in isolation
            elif is_whole:
                result = chain.whole_result
            else:
                result = chain.pair_results[position]
            if result is not None and not result.is_success and not chain.rejects_trusted:
                # The chain's normalization was cut off by the iteration
                # bound, or a rejecting pair holds a store only its
                # isolated pair graph can prune (root-scoped
                # observability), so this rejection is not authoritative
                # yet.
                result = None
        if result is None:
            result = validate(before, after, config, manager=manager)
        if cache is not None and key is not None:
            cache.put(key, result)
        return result, False

    return provider


def _merge_stats(results: Sequence[ValidationResult]) -> Dict[str, int]:
    """Sum the integer normalization counters of several results."""
    totals: Dict[str, int] = {}
    for result in results:
        for key, value in result.stats.items():
            totals[key] = totals.get(key, 0) + int(value)
    return totals


def _run_whole(
    function: Function,
    optimized: Function,
    provider: PairProvider,
    record: FunctionRecord,
) -> Function:
    """The paper's strategy: one query over the composed pipeline."""
    record.result, record.from_cache = provider(function, optimized)
    if record.result.is_success:
        record.kept_prefix = record.changed_steps
        return optimized
    return function


def _run_stepwise(
    function: Function,
    versions: List[Function],
    steps: List[PassSnapshot],
    provider: PairProvider,
    record: FunctionRecord,
) -> Function:
    """Validate adjacent checkpoint pairs; keep the longest proved prefix."""
    results: List[ValidationResult] = []
    hits: List[bool] = []
    failed_index: Optional[int] = None
    for index, step in enumerate(steps):
        result, hit = provider(versions[index], versions[index + 1])
        record.pass_verdicts[step.pass_name] = result
        results.append(result)
        hits.append(hit)
        if not result.is_success:
            failed_index = index
            break

    elapsed = sum(result.elapsed for result in results)
    if failed_index is None:
        record.kept_prefix = len(steps)
        record.from_cache = all(hits)
        record.result = ValidationResult(
            function.name, True, "stepwise-equal", elapsed=elapsed,
            graph_nodes=max(result.graph_nodes for result in results),
            stats=_merge_stats(results),
        )
        return versions[-1]

    # A checkpoint pair was rejected.  That does not prove the composition
    # invalid (pass i+1 may undo pass i, making the pair *harder* than the
    # whole), so try the whole query before settling for the prefix —
    # this is what makes stepwise accept a superset of whole.  With a
    # single changed step the failing pair *is* the whole pair: reuse its
    # verdict instead of validating the identical query a second time.
    if len(steps) == 1:
        whole_result, whole_hit = results[failed_index], hits[failed_index]
    else:
        whole_result, whole_hit = provider(versions[0], versions[-1])
    if whole_result.is_success:
        record.whole_fallback = True
        record.kept_prefix = len(steps)
        record.from_cache = whole_hit
        record.result = replace(whole_result, elapsed=elapsed + whole_result.elapsed)
        return versions[-1]

    failing = results[failed_index]
    record.blamed_pass = steps[failed_index].pass_name
    record.kept_prefix = failed_index
    record.from_cache = all(hits) and whole_hit
    record.result = ValidationResult(
        function.name, False, failing.reason,
        elapsed=elapsed + whole_result.elapsed,
        graph_nodes=failing.graph_nodes,
        stats=_merge_stats(results + [whole_result]),
        detail=(f"pass '{record.blamed_pass}' "
                f"(changed step {failed_index + 1}/{len(steps)}) rejected; "
                f"kept the {failed_index}-step validated prefix\n{failing.detail}"),
    )
    return versions[failed_index]


def _run_bisect(
    function: Function,
    versions: List[Function],
    steps: List[PassSnapshot],
    provider: PairProvider,
    record: FunctionRecord,
) -> Function:
    """Whole query first; on rejection, bisect the checkpoints for blame."""
    whole_result, whole_hit = provider(versions[0], versions[-1])
    record.from_cache = whole_hit
    record.pass_verdicts[steps[-1].pass_name] = whole_result
    if whole_result.is_success:
        record.kept_prefix = len(steps)
        record.result = whole_result
        return versions[-1]

    # versions[0] vs itself trivially validates, versions[-1] was just
    # rejected: binary-search for the first checkpoint whose composed
    # effect no longer validates against the original and blame the pass
    # that produced it.  (Like any bisection this assumes prefix verdicts
    # are monotone — true for a persistent miscompilation.)
    probes: List[ValidationResult] = [whole_result]
    lo, hi = 0, len(steps)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        result, _ = provider(versions[0], versions[mid])
        probes.append(result)
        record.pass_verdicts[steps[mid - 1].pass_name] = result
        if result.is_success:
            lo = mid
        else:
            hi = mid

    record.blamed_pass = steps[hi - 1].pass_name
    record.kept_prefix = lo
    record.result = ValidationResult(
        function.name, False, whole_result.reason,
        elapsed=sum(result.elapsed for result in probes),
        graph_nodes=whole_result.graph_nodes,
        stats=_merge_stats(probes),
        detail=(f"bisected the rejection to pass '{record.blamed_pass}' "
                f"(changed step {hi}/{len(steps)}); "
                f"kept the {lo}-step validated prefix\n{whole_result.detail}"),
    )
    return versions[lo]


def _driver_manager(config: ValidatorConfig) -> AnalysisManager:
    """A driver-owned analysis manager honoring the configured LRU bound."""
    return AnalysisManager(max_entries=config.analysis_cache_size or None)


def validate_function_pipeline(
    function: Function,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    skip_unchanged: bool = True,
    cache: Optional[ValidationCache] = None,
    strategy: str = "whole",
    manager: Optional[AnalysisManager] = None,
) -> Tuple[Function, FunctionRecord]:
    """Optimize one function and validate the result under ``strategy``.

    Returns ``(kept_function, record)``.  ``kept_function`` is the fully
    optimized clone when validation succeeded, the original function when
    everything was rejected, and — under ``"stepwise"``/``"bisect"`` — the
    checkpoint at the end of the longest *validated prefix* of the
    pipeline when only part of it could be proved.  The record carries the
    per-pass verdicts, the blamed pass and the kept-prefix length.

    When ``cache`` is given, previously validated identical pairs
    (monolithic or adjacent-checkpoint) are answered from it; when
    ``manager`` is given (or a snapshot strategy creates its own, bounded
    by ``config.analysis_cache_size``), every distinct function version's
    analyses are computed only once.
    """
    config = config or DEFAULT_CONFIG
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (known: {STRATEGIES})")
    record = FunctionRecord(name=function.name, strategy=strategy)
    if function.is_declaration:
        return function, record

    if strategy == "whole":
        optimized = clone_function(function)
        record.transformed_by = PassManager(passes).run_on_function(optimized)
        if skip_unchanged and not record.transformed:
            return function, record
        provider = _serial_provider(config, cache, manager)
        kept = _run_whole(function, optimized, provider, record)
        if manager is not None:
            record.analysis_stats = manager.stats()
        return kept, record

    snapshots = PassManager(passes).run_with_snapshots(function)
    record.transformed_by = {snap.pass_name: snap.changed for snap in snapshots}
    if skip_unchanged and not record.transformed:
        return function, record

    # The version chain: the original, then one checkpoint per *changed*
    # pass (unchanged passes are identity steps — nothing to validate).
    steps, versions = checkpoint_chain(function, snapshots)
    manager = manager if manager is not None else _driver_manager(config)
    if strategy == "stepwise" and config.chain_graphs and len(steps) >= 2:
        # Chain-shared graph: every checkpoint is built once into one
        # graph and all adjacent pairs are answered from its single
        # normalization (the per-pair provider remains the fallback for
        # the whole-query and for chain construction failures).
        provider = _chain_provider(versions, config, cache, manager, record)
    else:
        provider = _serial_provider(config, cache, manager)
    if not steps:
        # skip_unchanged=False and no pass changed anything: validate the
        # identity pair, for parity with the whole strategy.
        record.result, record.from_cache = provider(function, function)
        record.analysis_stats = manager.stats()
        return function, record
    runner = _run_stepwise if strategy == "stepwise" else _run_bisect
    kept = runner(function, versions, steps, provider, record)
    record.analysis_stats = manager.stats()
    return kept, record


def _remap_globals(function: Function, global_map: Dict[Value, Value]) -> None:
    """Re-point a kept optimized body at the result module's global clones."""
    if not global_map:
        return
    for inst in function.instructions():
        for index, operand in enumerate(inst.operands):
            replacement = global_map.get(operand)
            if replacement is not None:
                inst.operands[index] = replacement


def _remap_function_refs(result_module: Module) -> None:
    """Re-point call operands at the result module's own function objects.

    Cloned bodies initially share callee :class:`Function` references with
    the input module; rebinding them by name completes the driver's
    no-shared-mutable-structure guarantee (mutating the input module's
    functions can never change the result module's behavior).
    """
    by_name = result_module.functions
    for function in result_module.functions.values():
        for inst in function.instructions():
            for index, operand in enumerate(inst.operands):
                if isinstance(operand, Function):
                    replacement = by_name.get(operand.name)
                    if replacement is not None and replacement is not operand:
                        inst.operands[index] = replacement


def llvm_md(
    module: Module,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    label: str = "",
    function_names: Optional[Iterable[str]] = None,
    cache: Optional[ValidationCache] = None,
    strategy: str = "whole",
    manager: Optional[AnalysisManager] = None,
) -> Tuple[Module, ValidationReport]:
    """Run the semantics-preserving optimizer over a module.

    Every defined function is optimized with ``passes``; the optimized
    body is kept only as far as the validator can prove it equivalent to
    the original — entirely under ``strategy="whole"``, up to the longest
    validated pipeline prefix under ``"stepwise"``/``"bisect"``.  Returns
    the resulting module (a new :class:`Module`; the input is not mutated
    and shares no mutable structure — functions *and* globals are cloned)
    and the per-function :class:`ValidationReport`.

    With ``config.concurrency > 1`` the module's validation queries are
    sharded through :func:`validate_module_batch`'s process pool (the
    per-function records are identical to the serial path's; ``manager``
    is only consulted on the serial path).  With ``config.cache_dir`` set
    and no explicit ``cache``, a persistent cache is opened there and
    saved back after the run.
    """
    config = config or DEFAULT_CONFIG
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (known: {STRATEGIES})")
    if config.concurrency and config.concurrency > 1:
        selections = [list(function_names)] if function_names is not None else None
        (result_module, report), = validate_module_batch(
            [module], passes, config, labels=[label or module.name],
            cache=cache, strategy=strategy, function_names=selections)
        return result_module, report

    if cache is None and config.cache_dir is not None:
        cache = ValidationCache(config.cache_dir, max_bytes=config.cache_max_bytes)
    if manager is None and strategy != "whole":
        manager = _driver_manager(config)
    report = ValidationReport(label=label or module.name)
    result_module = Module(module.name)
    global_map = clone_globals_into(module, result_module)

    selected = set(function_names) if function_names is not None else None
    for function in module.functions.values():
        # Every function inserted into the result module is cloned (or a
        # freshly cloned checkpoint) with its global references remapped —
        # also declarations and unselected functions — so the result never
        # shares mutable structure with (or re-parents functions of) the
        # input module.
        if function.is_declaration or (selected is not None and function.name not in selected):
            result_module.add_function(clone_function(function, value_map=global_map))
            continue
        kept, record = validate_function_pipeline(
            function, passes, config, cache=cache, strategy=strategy, manager=manager)
        report.add(record)
        if kept is function:
            result_module.add_function(clone_function(function, value_map=global_map))
        else:
            _remap_globals(kept, global_map)
            result_module.add_function(kept)
    _remap_function_refs(result_module)
    if cache is not None:
        cache.save_if_dirty()
        report.cache_stats = cache.stats()
    if manager is not None:
        report.analysis_stats = manager.stats()
    return result_module, report


class _FunctionPlan:
    """One function's sharded-validation work: versions, keys, record."""

    __slots__ = ("function", "record", "versions", "steps", "fingerprints",
                 "pair_keys", "whole_key")

    def __init__(self, function: Function, record: FunctionRecord,
                 versions: List[Function], steps: Optional[List[PassSnapshot]],
                 fingerprints: List[str], pair_keys: List[CacheKey],
                 whole_key: CacheKey) -> None:
        self.function = function
        self.record = record
        self.versions = versions
        self.steps = steps
        #: Content fingerprint of each version, computed once in phase 1
        #: and reused by assembly-time key derivation.
        self.fingerprints = fingerprints
        #: Round-1 keys, in validation order (adjacent pairs under
        #: stepwise; the single whole pair otherwise).
        self.pair_keys = pair_keys
        #: Key of the (original, final) pair — stepwise round 2's fallback.
        self.whole_key = whole_key


def _settle_chain_results(outcome: ChainOutcome, versions: Sequence[Function],
                          config: ValidatorConfig,
                          ) -> Tuple[List[Optional[ValidationResult]],
                                     Optional[ValidationResult]]:
    """Turn raw chain verdicts into cache-safe verdicts.

    Raw accepts are exact and kept, and when the chain's rejections are
    authoritative too (``rejects_trusted``: a natural normalization
    fixpoint, and no rejecting pair holds a store only its isolated pair
    graph could prune) everything is cacheable as-is.  Otherwise —
    normalization cut off by the iteration bound, or the union-scoped
    store pruning missing a prune an isolated pair graph performs — the
    rejects on the
    *consumed prefix* (up to and including the first pair the stepwise
    walk would stop at) are re-checked with an isolated per-pair
    validation — the verdict the per-pair strategy would produce — and
    rejects beyond the consumed prefix are censored to ``None``: the
    walk never consumes them for this function, and caching an
    unconfirmed reject could poison another function whose walk *does*
    consume that content pair.  The whole (original, final) verdict gets
    the same treatment.

    Returns ``(pair_verdicts, whole_verdict)``.
    """
    if outcome.fallback:
        # Every pair result already is an isolated per-pair verdict; the
        # whole query is left to the batch driver's fallback round.
        return list(outcome.pair_results), None
    if outcome.rejects_trusted:
        return list(outcome.pair_results), outcome.whole_result
    settled: List[Optional[ValidationResult]] = []
    failed = False
    for index, result in enumerate(outcome.pair_results):
        if result.is_success:
            settled.append(result)
            continue
        if failed:
            settled.append(None)
            continue
        rechecked = validate(versions[index], versions[index + 1], config)
        settled.append(rechecked)
        if not rechecked.is_success:
            failed = True
    whole = outcome.whole_result
    if whole is not None and not whole.is_success:
        whole = validate(versions[0], versions[-1], config) if failed else None
    return settled, whole


#: A sharded-chain worker's return value: one (possibly censored) verdict
#: per adjacent pair, the (possibly censored) whole-pair verdict, and the
#: chain graph's work telemetry.
ChainItemResult = Tuple[List[Optional[ValidationResult]],
                        Optional[ValidationResult], Dict[str, int]]


def _validate_item(item: Tuple):
    """Process-pool worker: validate one work item (pair or whole chain)."""
    if item[0] == "chain":
        _, versions, config = item
        outcome = validate_chain(versions, config)
        settled, whole = _settle_chain_results(outcome, versions, config)
        return settled, whole, outcome.chain_stats
    _, before, after, config = item
    return validate(before, after, config)


def _run_validations(items: List[Tuple],
                     config: ValidatorConfig) -> Tuple[List, bool]:
    """Validate a list of work items; returns ``(results, used_process_pool)``.

    Items are tagged tuples — ``("pair", before, after, config)`` yields a
    :class:`ValidationResult`, ``("chain", versions, config)`` yields a
    :data:`ChainItemResult`.  Uses a ``ProcessPoolExecutor`` with
    ``config.concurrency`` workers when configured.  Any pool-level
    failure — a platform that cannot spawn processes, an object that
    fails to pickle, a worker crash — falls back to validating serially
    in-process: re-running the items is always safe (validation is
    deterministic and side-effect free) and a genuine per-item error
    would reproduce serially anyway.
    """
    if config.concurrency and config.concurrency > 1 and len(items) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool
        except ImportError:  # pragma: no cover - stdlib always has it
            return [_validate_item(item) for item in items], False
        # Deep operand chains make pickling recursive; give the parent the
        # same recursion headroom validation itself gets.
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, config.recursion_limit))
        try:
            chunksize = max(1, len(items) // (config.concurrency * 4))
            with ProcessPoolExecutor(max_workers=config.concurrency) as pool:
                return list(pool.map(_validate_item, items, chunksize=chunksize)), True
        except (OSError, ValueError, TypeError, AttributeError, RecursionError,
                pickle.PicklingError, BrokenProcessPool):
            # Platforms without working process spawning, unpicklable
            # payloads and worker crashes all degrade to serial execution.
            pass
        finally:
            sys.setrecursionlimit(old_limit)
    return [_validate_item(item) for item in items], False


def validate_module_batch(
    modules: Sequence[Module],
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    labels: Optional[Sequence[str]] = None,
    cache: Optional[ValidationCache] = None,
    strategy: str = "whole",
    function_names: Optional[Sequence[Optional[Iterable[str]]]] = None,
) -> List[Tuple[Module, ValidationReport]]:
    """Optimize and validate a batch of modules through one shared cache.

    The batch layer is what lets module-level validation scale to large
    corpora:

    * every function of every module is optimized first (checkpointing
      each pass under ``strategy="stepwise"``/``"bisect"``), and the
      resulting validation queries — whole (original, optimized) pairs,
      or every per-pass *adjacent checkpoint pair* under stepwise — are
      flattened into one work queue and *deduplicated* by content hash:
      identical pairs (common in template-heavy or generated corpora, and
      in repeated single-pass effects) are validated once; with
      ``config.chain_graphs`` (the default) a multi-step stepwise
      function ships as ONE packed chain work item instead — the worker
      builds all of its checkpoints into one shared graph, normalizes it
      once, and returns every adjacent-pair verdict (plus the whole-pair
      verdict) together;
    * the distinct pairs are validated either serially or, when
      ``config.concurrency > 1``, sharded over a ``ProcessPoolExecutor``
      with that many workers (falling back to serial execution if the
      platform cannot spawn processes or a payload cannot be pickled);
      under stepwise, a second round fans out the whole-query fallbacks of
      functions whose checkpoint pair was rejected;
    * worker results are merged back into the shared cache and per-module
      reports are assembled from it — records identical to what serial
      per-module :func:`llvm_md` calls would have produced (verdicts,
      blame, kept prefixes, per-pass verdicts), with ``from_cache``
      marking deduplicated queries and each query counted exactly once in
      the cache's hit/miss totals.

    With ``config.cache_dir`` set and no explicit ``cache``, the cache is
    persistent: previously proved pairs load from disk and the merged
    results are saved back after assembly.  ``function_names`` optionally
    restricts validation per module (one entry per module; ``None``
    validates every defined function), mirroring ``llvm_md``.

    Returns ``[(result_module, report), ...]`` in input order.
    """
    config = config or DEFAULT_CONFIG
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (known: {STRATEGIES})")
    if labels is not None and len(labels) != len(modules):
        raise ValueError("labels must match modules one to one")
    if function_names is not None and len(function_names) != len(modules):
        raise ValueError("function_names must match modules one to one")
    if cache is None:
        cache = ValidationCache(config.cache_dir, max_bytes=config.cache_max_bytes)

    # Phase 1: optimize everything, planning the queries each function
    # needs.  Whole/bisect plan the (original, final) pair; stepwise plans
    # every adjacent checkpoint pair — packed as ONE chain work item per
    # multi-step function when ``config.chain_graphs`` is on, so a worker
    # builds all of that function's checkpoints into one shared graph and
    # normalizes it once instead of once per pair.  Fingerprints are
    # computed once per version and shared by all the keys derived from
    # them.
    chain_mode = strategy == "stepwise" and config.chain_graphs
    plans: List[Tuple[Module, ValidationReport, Dict[Value, Value], List[_FunctionPlan]]] = []
    pending: Dict[CacheKey, Tuple[Function, Function]] = {}
    #: Chain work items, keyed by the tuple of the chain's pair keys
    #: (content-identical chains are validated once, like identical
    #: pairs); the value carries the version chain and the whole-pair key.
    pending_chains: Dict[Tuple[CacheKey, ...],
                         Tuple[List[Function], CacheKey]] = {}
    for index, module in enumerate(modules):
        label = labels[index] if labels is not None else module.name
        selected: Optional[set] = None
        if function_names is not None and function_names[index] is not None:
            selected = set(function_names[index])
        report = ValidationReport(label=label)
        result_module = Module(module.name)
        global_map = clone_globals_into(module, result_module)
        work: List[_FunctionPlan] = []
        for function in module.functions.values():
            if function.is_declaration or (selected is not None and function.name not in selected):
                result_module.add_function(clone_function(function, value_map=global_map))
                continue
            record = FunctionRecord(name=function.name, strategy=strategy)
            if strategy == "whole":
                optimized = clone_function(function)
                record.transformed_by = PassManager(passes).run_on_function(optimized)
                report.add(record)
                if not record.transformed:
                    result_module.add_function(clone_function(function, value_map=global_map))
                    continue
                steps = None
                versions = [function, optimized]
                fingerprints = [function_fingerprint(function),
                                function_fingerprint(optimized)]
            else:
                snapshots = PassManager(passes).run_with_snapshots(function)
                record.transformed_by = {snap.pass_name: snap.changed
                                         for snap in snapshots}
                report.add(record)
                if not record.transformed:
                    result_module.add_function(clone_function(function, value_map=global_map))
                    continue
                steps, versions = checkpoint_chain(function, snapshots)
                fingerprints = [function_fingerprint(function)]
                fingerprints += [snap.fingerprint() for snap in steps]
            whole_key = cache.key_for(fingerprints[0], fingerprints[-1], config)
            if strategy == "stepwise":
                pair_keys = [cache.key_for(fingerprints[i], fingerprints[i + 1], config)
                             for i in range(len(versions) - 1)]
                pair_versions = list(zip(versions, versions[1:]))
            else:
                pair_keys = [whole_key]
                pair_versions = [(versions[0], versions[-1])]
            if chain_mode and len(pair_keys) >= 2:
                # One packed work item covers every adjacent pair of this
                # function — but only when enough pairs still need
                # validating to amortize it: the chain translates all k
                # versions once while the per-pair path translates two
                # per miss, so with a warm cache and a straggler or two
                # the misses ship as plain pair items instead (and a
                # fully cached chain costs nothing, exactly like the
                # serial path's lazy chain construction).
                missing = [(key, pair)
                           for key, pair in zip(pair_keys, pair_versions)
                           if cache.peek(key) is None]
                if _chain_amortizes(len(missing), len(versions)):
                    chain_signature = tuple(pair_keys)
                    if chain_signature not in pending_chains:
                        pending_chains[chain_signature] = (versions, whole_key)
                else:
                    for key, (before, after) in missing:
                        if key not in pending:
                            pending[key] = (before, after)
            else:
                for key, (before, after) in zip(pair_keys, pair_versions):
                    if cache.peek(key) is None and key not in pending:
                        pending[key] = (before, after)
            work.append(_FunctionPlan(function, record, versions, steps,
                                      fingerprints, pair_keys, whole_key))
        plans.append((result_module, report, global_map, work))

    # Phase 2, round 1: validate the distinct work items (sharded when
    # configured) and merge the outcomes back into the shared cache.
    # Chain items return one settled verdict per adjacent pair (raw
    # rejects beyond the consumed prefix are censored — see
    # :func:`_settle_chain_results`); only verdicts for keys nobody
    # stored yet are adopted, so identical pairs keep a single entry.
    items: List[Tuple] = [("pair", before, after, config)
                          for before, after in pending.values()]
    items += [("chain", versions, config)
              for versions, _ in pending_chains.values()]
    outcomes, pooled_round1 = _run_validations(items, config)
    fresh: set = set()
    for key, result in zip(pending, outcomes[:len(pending)]):
        cache.put(key, result)
        fresh.add(key)
    #: Keys whose verdict a chain item contributed (disjoint from
    #: ``pending`` — those were stored just above, so the peek guard
    #: skips them — and from round 2's ``pending_whole``, which only
    #: admits keys still unanswered after this loop).  Tracked directly
    #: rather than derived by subtraction, which miscounts when a chain
    #: adopts a key another structure also covers.
    chain_fresh: set = set()
    chain_stats_by_signature: Dict[Tuple[CacheKey, ...], Dict[str, int]] = {}
    for (chain_signature, (_, chain_whole_key)), item_result in zip(
            pending_chains.items(), outcomes[len(pending):]):
        settled, whole_result, chain_stats = item_result
        chain_stats_by_signature[chain_signature] = chain_stats
        for key, result in zip(chain_signature + (chain_whole_key,),
                               settled + [whole_result]):
            if result is None or cache.peek(key) is not None:
                continue
            cache.put(key, result)
            fresh.add(key)
            chain_fresh.add(key)

    # Round 2 (stepwise only): functions whose adjacent-pair walk hits a
    # rejection fall back to the whole (original, final) query — the serial
    # strategy's superset guarantee.  Those queries only become known once
    # round 1's verdicts are in, so fan them out as a second wave.
    pending_whole: Dict[CacheKey, Tuple[Function, Function]] = {}
    pooled_round2 = False
    if strategy == "stepwise":
        for _, _, _, work in plans:
            for plan in work:
                rejected = False
                for key in plan.pair_keys:
                    result = cache.peek(key)
                    if result is not None and not result.is_success:
                        rejected = True
                        break
                if rejected and cache.peek(plan.whole_key) is None \
                        and plan.whole_key not in pending_whole:
                    pending_whole[plan.whole_key] = (plan.versions[0], plan.versions[-1])
        if pending_whole:
            items = [("pair", before, after, config)
                     for before, after in pending_whole.values()]
            outcomes, pooled_round2 = _run_validations(items, config)
            for key, result in zip(pending_whole, outcomes):
                cache.put(key, result)
                fresh.add(key)

    # Phase 3: assemble result modules and reports from the cache through
    # the same strategy runners the serial driver uses.  The first
    # consumer of a freshly validated pair pays for it (a miss); every
    # further consumption of the same key — within a module, across
    # modules, or from an earlier batch / the disk backend — is a cache
    # hit, so totals count each query exactly once.  Queries the rounds
    # could not anticipate (bisect probes, chain verdicts censored beyond
    # another function's consumed prefix) validate inline through a
    # bounded analysis manager.
    chain_pairs_fresh = len(chain_fresh)
    consumed: set = set()
    manager = _driver_manager(config)
    inline_validations = 0
    # Every version the runners can hand the provider was fingerprinted in
    # phase 1; the memo keeps assembly from re-printing/re-hashing per pair
    # (ids stay unambiguous because the plans pin the versions alive).
    fingerprint_memo: Dict[int, str] = {}
    for _, _, _, work in plans:
        for plan in work:
            for version, fingerprint in zip(plan.versions, plan.fingerprints):
                fingerprint_memo[id(version)] = fingerprint

    def _fingerprint(function: Function) -> str:
        memoized = fingerprint_memo.get(id(function))
        return memoized if memoized is not None else function_fingerprint(function)

    def provider(before: Function, after: Function) -> Tuple[ValidationResult, bool]:
        nonlocal inline_validations
        key = cache.key_for(_fingerprint(before), _fingerprint(after), config)
        stored = cache.peek(key)
        if stored is None:
            result = validate(before, after, config, manager=manager)
            cache.put(key, result)
            cache.misses += 1
            inline_validations += 1
            fresh.add(key)
            consumed.add(key)
            return result, False
        if key in fresh and key not in consumed:
            cache.misses += 1
            hit = False
        else:
            cache.hits += 1
            hit = True
        consumed.add(key)
        return replace(stored, function_name=before.name), hit

    results: List[Tuple[Module, ValidationReport]] = []
    for result_module, report, global_map, work in plans:
        for plan in work:
            chain_stats = chain_stats_by_signature.pop(tuple(plan.pair_keys), None)
            if chain_stats is not None:
                # Attached to the (first) function whose chain item
                # actually ran — the same function whose lazy chain the
                # serial path would have built.
                plan.record.chain_stats = chain_stats
            if strategy == "whole":
                kept = _run_whole(plan.function, plan.versions[-1], provider, plan.record)
            elif strategy == "stepwise":
                kept = _run_stepwise(plan.function, plan.versions, plan.steps,
                                     provider, plan.record)
            else:
                kept = _run_bisect(plan.function, plan.versions, plan.steps,
                                   provider, plan.record)
            if kept is plan.function:
                result_module.add_function(
                    clone_function(plan.function, value_map=global_map))
            else:
                _remap_globals(kept, global_map)
                result_module.add_function(kept)
        _remap_function_refs(result_module)
        results.append((result_module, report))

    pooled = pooled_round1 or pooled_round2
    shard_stats = {
        "distinct_pairs": len(pending) + chain_pairs_fresh + len(pending_whole),
        "pooled_pairs": ((len(pending) + chain_pairs_fresh) if pooled_round1 else 0)
                        + (len(pending_whole) if pooled_round2 else 0),
        "chain_items": len(pending_chains),
        "inline_validations": inline_validations,
        "workers": config.concurrency if pooled else 0,
    }
    cache.save_if_dirty()
    analysis_stats = manager.stats()
    for _, report in results:
        report.shard_stats = dict(shard_stats)
        report.analysis_stats = dict(analysis_stats)
        report.cache_stats = cache.stats()
    return results


__all__ = [
    "llvm_md",
    "validate_function_pipeline",
    "validate_module_batch",
    "ValidationCache",
    "function_fingerprint",
    "STRATEGIES",
]
