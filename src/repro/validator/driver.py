"""The LLVM-MD driver: optimize, validate, keep or reject per function.

This is the paper's §2 pseudo-code::

    function llvm-md(var input) {
        output = opt -options input
        for each function f in input {
            extract f from input as fi and output as fo
            if (!validate fi fo) { replace fo by fi in output }
        }
        return output
    }

Our ``opt`` is the pass pipeline from :mod:`repro.transforms`; everything
else is the same: the validator treats the optimizer as a black box, needs
no instrumentation, and runs once over the result of the whole pipeline.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from ..ir.cloning import clone_function
from ..ir.module import Function, Module
from ..transforms.pass_manager import PAPER_PIPELINE, PassManager
from .config import DEFAULT_CONFIG, ValidatorConfig
from .report import FunctionRecord, ValidationReport
from .validate import validate


def validate_function_pipeline(
    function: Function,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    skip_unchanged: bool = True,
) -> Tuple[Function, FunctionRecord]:
    """Optimize one function and validate the result.

    Returns ``(kept_function, record)`` where ``kept_function`` is the
    optimized clone when validation succeeded and the original function
    otherwise.
    """
    config = config or DEFAULT_CONFIG
    record = FunctionRecord(name=function.name)
    if function.is_declaration:
        return function, record

    optimized = clone_function(function)
    manager = PassManager(passes)
    record.transformed_by = manager.run_on_function(optimized)

    if skip_unchanged and not record.transformed:
        # Nothing changed; validation is trivial and the paper does not
        # count such functions in its per-optimization charts.
        return function, record

    record.result = validate(function, optimized, config)
    kept = optimized if record.result.is_success else function
    return kept, record


def llvm_md(
    module: Module,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    label: str = "",
    function_names: Optional[Iterable[str]] = None,
) -> Tuple[Module, ValidationReport]:
    """Run the semantics-preserving optimizer over a module.

    Every defined function is optimized with ``passes``; the optimized body
    is kept only if the validator can prove it equivalent to the original.
    Returns the resulting module (a new :class:`Module`; the input is not
    mutated) and the per-function :class:`ValidationReport`.
    """
    config = config or DEFAULT_CONFIG
    report = ValidationReport(label=label or module.name)
    result_module = Module(module.name)
    for global_var in module.globals.values():
        result_module.add_global(global_var)

    selected = set(function_names) if function_names is not None else None
    for function in module.functions.values():
        if function.is_declaration:
            result_module.add_function(function)
            continue
        if selected is not None and function.name not in selected:
            result_module.add_function(function)
            continue
        kept, record = validate_function_pipeline(function, passes, config)
        report.add(record)
        if kept is function:
            # Keep the original body: clone it so the result module does not
            # share mutable structure with the input module.
            result_module.add_function(clone_function(function))
        else:
            result_module.add_function(kept)
    return result_module, report


__all__ = ["llvm_md", "validate_function_pipeline"]
