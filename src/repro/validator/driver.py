"""The LLVM-MD driver: optimize, validate, keep or reject per function.

This is the paper's §2 pseudo-code::

    function llvm-md(var input) {
        output = opt -options input
        for each function f in input {
            extract f from input as fi and output as fo
            if (!validate fi fo) { replace fo by fi in output }
        }
        return output
    }

Our ``opt`` is the pass pipeline from :mod:`repro.transforms`; everything
else is the same: the validator treats the optimizer as a black box, needs
no instrumentation, and runs once over the result of the whole pipeline.

For corpus-scale traffic the module adds a batch layer on top:
:func:`validate_module_batch` validates many modules through one
:class:`ValidationCache` (results keyed on the *content* of the function
pair plus the rule configuration, so identical pairs are validated once)
and can fan the actual validation work out to a process pool via
``config.concurrency``.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir.cloning import clone_function
from ..ir.module import Function, Module
from ..ir.printer import print_function
from ..transforms.pass_manager import PAPER_PIPELINE, PassManager
from .config import DEFAULT_CONFIG, ValidatorConfig
from .report import FunctionRecord, ValidationReport
from .validate import ValidationResult, validate

#: Cache key: content hashes of both functions plus everything about the
#: configuration that can change a verdict.
CacheKey = Tuple[str, str, Tuple[str, ...], str, str, int, int]


def function_fingerprint(function: Function) -> str:
    """A content hash of a function's printed IR (stable across clones)."""
    return hashlib.sha256(print_function(function).encode("utf-8")).hexdigest()


class ValidationCache:
    """Memoizes validation results by function-pair content.

    The key is ``(original-hash, optimized-hash, rule-groups, matcher,
    engine, max-iterations, recursion-limit)``: everything the verdict
    can depend on (a too-small recursion limit turns a deep build into a
    ``build-error`` rejection, so it is part of the key too).  Two
    different functions with identical bodies share an entry, so batch
    validation of a corpus full of near-duplicate traffic only pays for
    the distinct pairs.
    """

    def __init__(self) -> None:
        self._results: Dict[CacheKey, ValidationResult] = {}
        #: Number of lookups answered from the cache.
        self.hits = 0
        #: Number of lookups that had to validate.
        self.misses = 0

    def __len__(self) -> int:
        return len(self._results)

    def key(self, before: Function, after: Function,
            config: ValidatorConfig) -> CacheKey:
        """The cache key for one validation query."""
        return (
            function_fingerprint(before),
            function_fingerprint(after),
            tuple(config.rule_groups),
            config.matcher,
            config.engine,
            config.max_iterations,
            config.recursion_limit,
        )

    def peek(self, key: CacheKey) -> Optional[ValidationResult]:
        """The stored result for ``key`` (no hit/miss accounting)."""
        return self._results.get(key)

    def get(self, key: CacheKey, function_name: str) -> Optional[ValidationResult]:
        """A cached result renamed for ``function_name``, or ``None``."""
        cached = self._results.get(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        return replace(cached, function_name=function_name)

    def put(self, key: CacheKey, result: ValidationResult) -> None:
        """Store one validation outcome."""
        self._results[key] = result

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters as a plain dict (for reports)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._results)}


def validate_function_pipeline(
    function: Function,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    skip_unchanged: bool = True,
    cache: Optional[ValidationCache] = None,
) -> Tuple[Function, FunctionRecord]:
    """Optimize one function and validate the result.

    Returns ``(kept_function, record)`` where ``kept_function`` is the
    optimized clone when validation succeeded and the original function
    otherwise.  When ``cache`` is given, a previously validated identical
    pair is answered from it and the record is marked ``from_cache``.
    """
    config = config or DEFAULT_CONFIG
    record = FunctionRecord(name=function.name)
    if function.is_declaration:
        return function, record

    optimized = clone_function(function)
    manager = PassManager(passes)
    record.transformed_by = manager.run_on_function(optimized)

    if skip_unchanged and not record.transformed:
        # Nothing changed; validation is trivial and the paper does not
        # count such functions in its per-optimization charts.
        return function, record

    if cache is not None:
        key = cache.key(function, optimized, config)
        cached = cache.get(key, function.name)
        if cached is not None:
            record.result = cached
            record.from_cache = True
        else:
            record.result = validate(function, optimized, config)
            cache.put(key, record.result)
    else:
        record.result = validate(function, optimized, config)
    kept = optimized if record.result.is_success else function
    return kept, record


def llvm_md(
    module: Module,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    label: str = "",
    function_names: Optional[Iterable[str]] = None,
    cache: Optional[ValidationCache] = None,
) -> Tuple[Module, ValidationReport]:
    """Run the semantics-preserving optimizer over a module.

    Every defined function is optimized with ``passes``; the optimized body
    is kept only if the validator can prove it equivalent to the original.
    Returns the resulting module (a new :class:`Module`; the input is not
    mutated) and the per-function :class:`ValidationReport`.
    """
    config = config or DEFAULT_CONFIG
    report = ValidationReport(label=label or module.name)
    result_module = Module(module.name)
    for global_var in module.globals.values():
        result_module.add_global(global_var)

    selected = set(function_names) if function_names is not None else None
    for function in module.functions.values():
        # Every function inserted into the result module is cloned — also
        # declarations and unselected functions — so the result never
        # shares mutable structure with (or re-parents functions of) the
        # input module.
        if function.is_declaration or (selected is not None and function.name not in selected):
            result_module.add_function(clone_function(function))
            continue
        kept, record = validate_function_pipeline(function, passes, config, cache=cache)
        report.add(record)
        if kept is function:
            result_module.add_function(clone_function(function))
        else:
            result_module.add_function(kept)
    if cache is not None:
        report.cache_stats = cache.stats()
    return result_module, report


def _validate_pair(item: Tuple[Function, Function, ValidatorConfig]) -> ValidationResult:
    """Process-pool worker: validate one (before, after) pair."""
    before, after, config = item
    return validate(before, after, config)


def validate_module_batch(
    modules: Sequence[Module],
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    labels: Optional[Sequence[str]] = None,
    cache: Optional[ValidationCache] = None,
) -> List[Tuple[Module, ValidationReport]]:
    """Optimize and validate a batch of modules through one shared cache.

    The batch layer is what lets module-level validation scale to large
    corpora:

    * every function of every module is optimized first, and the
      resulting (original, optimized) pairs are *deduplicated* by content
      hash — identical pairs (common in template-heavy or generated
      corpora) are validated once;
    * the distinct pairs are validated either serially or, when
      ``config.concurrency > 1``, on a ``ProcessPoolExecutor`` with that
      many workers (falling back to serial execution if the platform
      cannot spawn processes);
    * results are assembled into per-module reports identical to what
      per-module :func:`llvm_md` calls would have produced, with
      ``from_cache`` records marking the deduplicated functions.

    Returns ``[(result_module, report), ...]`` in input order.
    """
    config = config or DEFAULT_CONFIG
    cache = cache if cache is not None else ValidationCache()
    if labels is not None and len(labels) != len(modules):
        raise ValueError("labels must match modules one to one")

    # Phase 1: optimize everything, recording the work each module needs.
    plans = []  # per module: (result_module, report, [(function, optimized, record, key)])
    pending: Dict[CacheKey, Tuple[Function, Function]] = {}
    for index, module in enumerate(modules):
        label = labels[index] if labels is not None else module.name
        report = ValidationReport(label=label)
        result_module = Module(module.name)
        for global_var in module.globals.values():
            result_module.add_global(global_var)
        work = []
        for function in module.functions.values():
            if function.is_declaration:
                result_module.add_function(clone_function(function))
                continue
            record = FunctionRecord(name=function.name)
            optimized = clone_function(function)
            record.transformed_by = PassManager(passes).run_on_function(optimized)
            report.add(record)
            if not record.transformed:
                result_module.add_function(clone_function(function))
                continue
            key = cache.key(function, optimized, config)
            if cache.peek(key) is None and key not in pending:
                pending[key] = (function, optimized)
            work.append((function, optimized, record, key))
        plans.append((result_module, report, work))

    # Phase 2: validate the distinct pairs (optionally in parallel).
    items = [(before, after, config) for before, after in pending.values()]
    outcomes = _run_validations(items, config)
    for key, result in zip(pending, outcomes):
        cache.put(key, result)

    # Phase 3: assemble result modules and reports from the cache.  The
    # first consumer of a freshly validated pair paid for the validation
    # (a miss); every further function with the same key — within this
    # module, across modules, or from an earlier batch — is a cache hit.
    fresh = set(pending)
    consumed: set = set()
    results: List[Tuple[Module, ValidationReport]] = []
    for result_module, report, work in plans:
        for function, optimized, record, key in work:
            stored = cache.peek(key)
            if key in fresh and key not in consumed:
                cache.misses += 1
                record.from_cache = False
            else:
                cache.hits += 1
                record.from_cache = True
            consumed.add(key)
            record.result = replace(stored, function_name=function.name)
            if record.result.is_success:
                result_module.add_function(optimized)
            else:
                result_module.add_function(clone_function(function))
        report.cache_stats = cache.stats()
        results.append((result_module, report))
    return results


def _run_validations(items: List[Tuple[Function, Function, ValidatorConfig]],
                     config: ValidatorConfig) -> List[ValidationResult]:
    """Validate a list of pairs, using a process pool when configured."""
    if config.concurrency and config.concurrency > 1 and len(items) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=config.concurrency) as pool:
                return list(pool.map(_validate_pair, items))
        except (ImportError, OSError, ValueError):  # pragma: no cover
            # Platforms without working process spawning (or pickling
            # restrictions) fall back to serial validation.
            pass
    return [_validate_pair(item) for item in items]


__all__ = [
    "llvm_md",
    "validate_function_pipeline",
    "validate_module_batch",
    "ValidationCache",
    "function_fingerprint",
]
