"""The LLVM-MD driver: optimize, validate, keep or reject per function.

This is the paper's §2 pseudo-code::

    function llvm-md(var input) {
        output = opt -options input
        for each function f in input {
            extract f from input as fi and output as fo
            if (!validate fi fo) { replace fo by fi in output }
        }
        return output
    }

Our ``opt`` is the pass pipeline from :mod:`repro.transforms`; everything
else is the same: the validator treats the optimizer as a black box and
needs no instrumentation.  On top of the paper's monolithic
(original, fully-optimized) query, :func:`validate_function_pipeline` now
offers three *strategies*:

``"whole"``
    The paper's behavior: one validation of the composed pipeline.  A
    rejection rolls back every optimization and cannot name the pass at
    fault.
``"stepwise"``
    The pass manager checkpoints the function after every pass and each
    *adjacent* checkpoint pair is validated — every equivalence problem is
    only one pass's effect wide.  A rejection blames the failing pass and
    the longest validated prefix of the pipeline is *kept* instead of
    discarding all optimization work.  (Pair problems are not always
    easier than the composition — a later pass can undo an earlier one —
    so a rejected pair falls back to the whole query first; stepwise
    accepts a superset of what whole accepts, by construction.)
``"bisect"``
    Try the whole query first (no extra cost on the accepting fast path);
    on rejection, binary-search the checkpoint list with
    (original, checkpoint) probes to attribute blame to a single pass and
    keep the longest prefix the probes proved.

All strategies can share one :class:`~repro.analysis.manager.AnalysisManager`
so per-version analyses (dominators, loops, gates, ...) are computed once
per checkpoint no matter how many queries consume them — in stepwise mode
the "after" of step *i* is the "before" of step *i+1*, so every interior
checkpoint's analyses are built once and reused.  The
:class:`ValidationCache` keys each adjacent pair by content, exactly as it
keys whole pairs.

For corpus-scale traffic the module adds a batch layer on top:
:func:`validate_module_batch` validates many modules through one
:class:`ValidationCache` (results keyed on the *content* of the function
pair plus the rule configuration, so identical pairs are validated once)
and can fan the actual validation work out to a process pool via
``config.concurrency``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.manager import AnalysisManager, function_fingerprint
from ..ir.cloning import clone_function, clone_globals_into
from ..ir.module import Function, Module
from ..ir.values import Value
from ..transforms.pass_manager import PAPER_PIPELINE, PassManager, PassSnapshot
from .config import DEFAULT_CONFIG, ValidatorConfig
from .report import FunctionRecord, ValidationReport
from .validate import ValidationResult, validate

#: The validation strategies :func:`validate_function_pipeline` implements.
STRATEGIES = ("whole", "stepwise", "bisect")

#: Cache key: content hashes of both functions plus everything about the
#: configuration that can change a verdict.
CacheKey = Tuple[str, str, Tuple[str, ...], str, str, int, int]


class ValidationCache:
    """Memoizes validation results by function-pair content.

    The key is ``(original-hash, optimized-hash, rule-groups, matcher,
    engine, max-iterations, recursion-limit)``: everything the verdict
    can depend on (a too-small recursion limit turns a deep build into a
    ``build-error`` rejection, so it is part of the key too).  Two
    different functions with identical bodies share an entry, so batch
    validation of a corpus full of near-duplicate traffic only pays for
    the distinct pairs.  Stepwise validation feeds each adjacent
    checkpoint pair through the same keying, so repeated single-pass
    effects are also validated once.
    """

    def __init__(self) -> None:
        self._results: Dict[CacheKey, ValidationResult] = {}
        #: Number of lookups answered from the cache.
        self.hits = 0
        #: Number of lookups that had to validate.
        self.misses = 0

    def __len__(self) -> int:
        return len(self._results)

    def key(self, before: Function, after: Function,
            config: ValidatorConfig) -> CacheKey:
        """The cache key for one validation query."""
        return (
            function_fingerprint(before),
            function_fingerprint(after),
            tuple(config.rule_groups),
            config.matcher,
            config.engine,
            config.max_iterations,
            config.recursion_limit,
        )

    def peek(self, key: CacheKey) -> Optional[ValidationResult]:
        """The stored result for ``key`` (no hit/miss accounting)."""
        return self._results.get(key)

    def get(self, key: CacheKey, function_name: str) -> Optional[ValidationResult]:
        """A cached result renamed for ``function_name``, or ``None``."""
        cached = self._results.get(key)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        return replace(cached, function_name=function_name)

    def put(self, key: CacheKey, result: ValidationResult) -> None:
        """Store one validation outcome."""
        self._results[key] = result

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters as a plain dict (for reports)."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._results)}


def _validate_pair_cached(
    before: Function,
    after: Function,
    config: ValidatorConfig,
    cache: Optional[ValidationCache],
    manager: Optional[AnalysisManager],
) -> Tuple[ValidationResult, bool]:
    """Validate one pair through the optional cache; returns (result, hit)."""
    if cache is None:
        return validate(before, after, config, manager=manager), False
    key = cache.key(before, after, config)
    cached = cache.get(key, before.name)
    if cached is not None:
        return cached, True
    result = validate(before, after, config, manager=manager)
    cache.put(key, result)
    return result, False


def _merge_stats(results: Sequence[ValidationResult]) -> Dict[str, int]:
    """Sum the integer normalization counters of several results."""
    totals: Dict[str, int] = {}
    for result in results:
        for key, value in result.stats.items():
            totals[key] = totals.get(key, 0) + int(value)
    return totals


def _run_whole(
    function: Function,
    optimized: Function,
    config: ValidatorConfig,
    cache: Optional[ValidationCache],
    manager: Optional[AnalysisManager],
    record: FunctionRecord,
) -> Function:
    """The paper's strategy: one query over the composed pipeline."""
    record.result, record.from_cache = _validate_pair_cached(
        function, optimized, config, cache, manager)
    if record.result.is_success:
        record.kept_prefix = record.changed_steps
        return optimized
    return function


def _run_stepwise(
    function: Function,
    versions: List[Function],
    steps: List[PassSnapshot],
    config: ValidatorConfig,
    cache: Optional[ValidationCache],
    manager: AnalysisManager,
    record: FunctionRecord,
) -> Function:
    """Validate adjacent checkpoint pairs; keep the longest proved prefix."""
    results: List[ValidationResult] = []
    hits: List[bool] = []
    failed_index: Optional[int] = None
    for index, step in enumerate(steps):
        result, hit = _validate_pair_cached(
            versions[index], versions[index + 1], config, cache, manager)
        record.pass_verdicts[step.pass_name] = result
        results.append(result)
        hits.append(hit)
        if not result.is_success:
            failed_index = index
            break

    elapsed = sum(result.elapsed for result in results)
    if failed_index is None:
        record.kept_prefix = len(steps)
        record.from_cache = all(hits)
        record.result = ValidationResult(
            function.name, True, "stepwise-equal", elapsed=elapsed,
            graph_nodes=max(result.graph_nodes for result in results),
            stats=_merge_stats(results),
        )
        return versions[-1]

    # A checkpoint pair was rejected.  That does not prove the composition
    # invalid (pass i+1 may undo pass i, making the pair *harder* than the
    # whole), so try the whole query before settling for the prefix —
    # this is what makes stepwise accept a superset of whole.
    whole_result, whole_hit = _validate_pair_cached(
        versions[0], versions[-1], config, cache, manager)
    if whole_result.is_success:
        record.whole_fallback = True
        record.kept_prefix = len(steps)
        record.from_cache = whole_hit
        record.result = replace(whole_result, elapsed=elapsed + whole_result.elapsed)
        return versions[-1]

    failing = results[failed_index]
    record.blamed_pass = steps[failed_index].pass_name
    record.kept_prefix = failed_index
    record.from_cache = all(hits) and whole_hit
    record.result = ValidationResult(
        function.name, False, failing.reason,
        elapsed=elapsed + whole_result.elapsed,
        graph_nodes=failing.graph_nodes,
        stats=_merge_stats(results + [whole_result]),
        detail=(f"pass '{record.blamed_pass}' "
                f"(changed step {failed_index + 1}/{len(steps)}) rejected; "
                f"kept the {failed_index}-step validated prefix\n{failing.detail}"),
    )
    return versions[failed_index]


def _run_bisect(
    function: Function,
    versions: List[Function],
    steps: List[PassSnapshot],
    config: ValidatorConfig,
    cache: Optional[ValidationCache],
    manager: AnalysisManager,
    record: FunctionRecord,
) -> Function:
    """Whole query first; on rejection, bisect the checkpoints for blame."""
    whole_result, whole_hit = _validate_pair_cached(
        versions[0], versions[-1], config, cache, manager)
    record.from_cache = whole_hit
    record.pass_verdicts[steps[-1].pass_name] = whole_result
    if whole_result.is_success:
        record.kept_prefix = len(steps)
        record.result = whole_result
        return versions[-1]

    # versions[0] vs itself trivially validates, versions[-1] was just
    # rejected: binary-search for the first checkpoint whose composed
    # effect no longer validates against the original and blame the pass
    # that produced it.  (Like any bisection this assumes prefix verdicts
    # are monotone — true for a persistent miscompilation.)
    probes: List[ValidationResult] = [whole_result]
    lo, hi = 0, len(steps)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        result, _ = _validate_pair_cached(
            versions[0], versions[mid], config, cache, manager)
        probes.append(result)
        record.pass_verdicts[steps[mid - 1].pass_name] = result
        if result.is_success:
            lo = mid
        else:
            hi = mid

    record.blamed_pass = steps[hi - 1].pass_name
    record.kept_prefix = lo
    record.result = ValidationResult(
        function.name, False, whole_result.reason,
        elapsed=sum(result.elapsed for result in probes),
        graph_nodes=whole_result.graph_nodes,
        stats=_merge_stats(probes),
        detail=(f"bisected the rejection to pass '{record.blamed_pass}' "
                f"(changed step {hi}/{len(steps)}); "
                f"kept the {lo}-step validated prefix\n{whole_result.detail}"),
    )
    return versions[lo]


def validate_function_pipeline(
    function: Function,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    skip_unchanged: bool = True,
    cache: Optional[ValidationCache] = None,
    strategy: str = "whole",
    manager: Optional[AnalysisManager] = None,
) -> Tuple[Function, FunctionRecord]:
    """Optimize one function and validate the result under ``strategy``.

    Returns ``(kept_function, record)``.  ``kept_function`` is the fully
    optimized clone when validation succeeded, the original function when
    everything was rejected, and — under ``"stepwise"``/``"bisect"`` — the
    checkpoint at the end of the longest *validated prefix* of the
    pipeline when only part of it could be proved.  The record carries the
    per-pass verdicts, the blamed pass and the kept-prefix length.

    When ``cache`` is given, previously validated identical pairs
    (monolithic or adjacent-checkpoint) are answered from it; when
    ``manager`` is given (or a snapshot strategy creates its own), every
    distinct function version's analyses are computed only once.
    """
    config = config or DEFAULT_CONFIG
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (known: {STRATEGIES})")
    record = FunctionRecord(name=function.name, strategy=strategy)
    if function.is_declaration:
        return function, record

    if strategy == "whole":
        optimized = clone_function(function)
        record.transformed_by = PassManager(passes).run_on_function(optimized)
        if skip_unchanged and not record.transformed:
            return function, record
        kept = _run_whole(function, optimized, config, cache, manager, record)
        if manager is not None:
            record.analysis_stats = manager.stats()
        return kept, record

    snapshots = PassManager(passes).run_with_snapshots(function)
    record.transformed_by = {snap.pass_name: snap.changed for snap in snapshots}
    if skip_unchanged and not record.transformed:
        return function, record

    # The version chain: the original, then one checkpoint per *changed*
    # pass (unchanged passes are identity steps — nothing to validate).
    steps = [snap for snap in snapshots if snap.changed]
    versions = [function] + [snap.function for snap in steps]
    manager = manager if manager is not None else AnalysisManager()
    if not steps:
        # skip_unchanged=False and no pass changed anything: validate the
        # identity pair, for parity with the whole strategy.
        record.result, record.from_cache = _validate_pair_cached(
            function, function, config, cache, manager)
        record.analysis_stats = manager.stats()
        return function, record
    runner = _run_stepwise if strategy == "stepwise" else _run_bisect
    kept = runner(function, versions, steps, config, cache, manager, record)
    record.analysis_stats = manager.stats()
    return kept, record


def _remap_globals(function: Function, global_map: Dict[Value, Value]) -> None:
    """Re-point a kept optimized body at the result module's global clones."""
    if not global_map:
        return
    for inst in function.instructions():
        for index, operand in enumerate(inst.operands):
            replacement = global_map.get(operand)
            if replacement is not None:
                inst.operands[index] = replacement


def _remap_function_refs(result_module: Module) -> None:
    """Re-point call operands at the result module's own function objects.

    Cloned bodies initially share callee :class:`Function` references with
    the input module; rebinding them by name completes the driver's
    no-shared-mutable-structure guarantee (mutating the input module's
    functions can never change the result module's behavior).
    """
    by_name = result_module.functions
    for function in result_module.functions.values():
        for inst in function.instructions():
            for index, operand in enumerate(inst.operands):
                if isinstance(operand, Function):
                    replacement = by_name.get(operand.name)
                    if replacement is not None and replacement is not operand:
                        inst.operands[index] = replacement


def llvm_md(
    module: Module,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    label: str = "",
    function_names: Optional[Iterable[str]] = None,
    cache: Optional[ValidationCache] = None,
    strategy: str = "whole",
    manager: Optional[AnalysisManager] = None,
) -> Tuple[Module, ValidationReport]:
    """Run the semantics-preserving optimizer over a module.

    Every defined function is optimized with ``passes``; the optimized
    body is kept only as far as the validator can prove it equivalent to
    the original — entirely under ``strategy="whole"``, up to the longest
    validated pipeline prefix under ``"stepwise"``/``"bisect"``.  Returns
    the resulting module (a new :class:`Module`; the input is not mutated
    and shares no mutable structure — functions *and* globals are cloned)
    and the per-function :class:`ValidationReport`.
    """
    config = config or DEFAULT_CONFIG
    if manager is None and strategy != "whole":
        manager = AnalysisManager()
    report = ValidationReport(label=label or module.name)
    result_module = Module(module.name)
    global_map = clone_globals_into(module, result_module)

    selected = set(function_names) if function_names is not None else None
    for function in module.functions.values():
        # Every function inserted into the result module is cloned (or a
        # freshly cloned checkpoint) with its global references remapped —
        # also declarations and unselected functions — so the result never
        # shares mutable structure with (or re-parents functions of) the
        # input module.
        if function.is_declaration or (selected is not None and function.name not in selected):
            result_module.add_function(clone_function(function, value_map=global_map))
            continue
        kept, record = validate_function_pipeline(
            function, passes, config, cache=cache, strategy=strategy, manager=manager)
        report.add(record)
        if kept is function:
            result_module.add_function(clone_function(function, value_map=global_map))
        else:
            _remap_globals(kept, global_map)
            result_module.add_function(kept)
    _remap_function_refs(result_module)
    if cache is not None:
        report.cache_stats = cache.stats()
    if manager is not None:
        report.analysis_stats = manager.stats()
    return result_module, report


def _validate_pair(item: Tuple[Function, Function, ValidatorConfig]) -> ValidationResult:
    """Process-pool worker: validate one (before, after) pair."""
    before, after, config = item
    return validate(before, after, config)


def validate_module_batch(
    modules: Sequence[Module],
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    labels: Optional[Sequence[str]] = None,
    cache: Optional[ValidationCache] = None,
) -> List[Tuple[Module, ValidationReport]]:
    """Optimize and validate a batch of modules through one shared cache.

    The batch layer is what lets module-level validation scale to large
    corpora:

    * every function of every module is optimized first, and the
      resulting (original, optimized) pairs are *deduplicated* by content
      hash — identical pairs (common in template-heavy or generated
      corpora) are validated once;
    * the distinct pairs are validated either serially or, when
      ``config.concurrency > 1``, on a ``ProcessPoolExecutor`` with that
      many workers (falling back to serial execution if the platform
      cannot spawn processes);
    * results are assembled into per-module reports identical to what
      per-module :func:`llvm_md` calls would have produced, with
      ``from_cache`` records marking the deduplicated functions.

    Returns ``[(result_module, report), ...]`` in input order.
    """
    config = config or DEFAULT_CONFIG
    cache = cache if cache is not None else ValidationCache()
    if labels is not None and len(labels) != len(modules):
        raise ValueError("labels must match modules one to one")

    # Phase 1: optimize everything, recording the work each module needs.
    plans = []  # per module: (result_module, report, global_map, [(function, optimized, record, key)])
    pending: Dict[CacheKey, Tuple[Function, Function]] = {}
    for index, module in enumerate(modules):
        label = labels[index] if labels is not None else module.name
        report = ValidationReport(label=label)
        result_module = Module(module.name)
        global_map = clone_globals_into(module, result_module)
        work = []
        for function in module.functions.values():
            if function.is_declaration:
                result_module.add_function(clone_function(function, value_map=global_map))
                continue
            record = FunctionRecord(name=function.name)
            optimized = clone_function(function)
            record.transformed_by = PassManager(passes).run_on_function(optimized)
            report.add(record)
            if not record.transformed:
                result_module.add_function(clone_function(function, value_map=global_map))
                continue
            key = cache.key(function, optimized, config)
            if cache.peek(key) is None and key not in pending:
                pending[key] = (function, optimized)
            work.append((function, optimized, record, key))
        plans.append((result_module, report, global_map, work))

    # Phase 2: validate the distinct pairs (optionally in parallel).
    items = [(before, after, config) for before, after in pending.values()]
    outcomes = _run_validations(items, config)
    for key, result in zip(pending, outcomes):
        cache.put(key, result)

    # Phase 3: assemble result modules and reports from the cache.  The
    # first consumer of a freshly validated pair paid for the validation
    # (a miss); every further function with the same key — within this
    # module, across modules, or from an earlier batch — is a cache hit.
    fresh = set(pending)
    consumed: set = set()
    results: List[Tuple[Module, ValidationReport]] = []
    for result_module, report, global_map, work in plans:
        for function, optimized, record, key in work:
            stored = cache.peek(key)
            if key in fresh and key not in consumed:
                cache.misses += 1
                record.from_cache = False
            else:
                cache.hits += 1
                record.from_cache = True
            consumed.add(key)
            record.result = replace(stored, function_name=function.name)
            if record.result.is_success:
                record.kept_prefix = record.changed_steps
                _remap_globals(optimized, global_map)
                result_module.add_function(optimized)
            else:
                result_module.add_function(clone_function(function, value_map=global_map))
        _remap_function_refs(result_module)
        report.cache_stats = cache.stats()
        results.append((result_module, report))
    return results


def _run_validations(items: List[Tuple[Function, Function, ValidatorConfig]],
                     config: ValidatorConfig) -> List[ValidationResult]:
    """Validate a list of pairs, using a process pool when configured."""
    if config.concurrency and config.concurrency > 1 and len(items) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=config.concurrency) as pool:
                return list(pool.map(_validate_pair, items))
        except (ImportError, OSError, ValueError):  # pragma: no cover
            # Platforms without working process spawning (or pickling
            # restrictions) fall back to serial validation.
            pass
    return [_validate_pair(item) for item in items]


__all__ = [
    "llvm_md",
    "validate_function_pipeline",
    "validate_module_batch",
    "ValidationCache",
    "function_fingerprint",
    "STRATEGIES",
]
