"""The LLVM-MD driver: optimize, validate, keep or reject per function.

This is the paper's §2 pseudo-code::

    function llvm-md(var input) {
        output = opt -options input
        for each function f in input {
            extract f from input as fi and output as fo
            if (!validate fi fo) { replace fo by fi in output }
        }
        return output
    }

Our ``opt`` is the pass pipeline from :mod:`repro.transforms`; everything
else is the same: the validator treats the optimizer as a black box and
needs no instrumentation.  On top of the paper's monolithic
(original, fully-optimized) query, :func:`validate_function_pipeline` now
offers three *strategies*:

``"whole"``
    The paper's behavior: one validation of the composed pipeline.  A
    rejection rolls back every optimization and cannot name the pass at
    fault.
``"stepwise"``
    The pass manager checkpoints the function after every pass and each
    *adjacent* checkpoint pair is validated — every equivalence problem is
    only one pass's effect wide.  A rejection blames the failing pass and
    the longest validated prefix of the pipeline is *kept* instead of
    discarding all optimization work.  (Pair problems are not always
    easier than the composition — a later pass can undo an earlier one —
    so a rejected pair falls back to the whole query first; stepwise
    accepts a superset of what whole accepts, by construction.)
``"bisect"``
    Try the whole query first (no extra cost on the accepting fast path);
    on rejection, binary-search the checkpoint list with
    (original, checkpoint) probes to attribute blame to a single pass and
    keep the longest prefix the probes proved.

All strategies can share one :class:`~repro.analysis.manager.AnalysisManager`
so per-version analyses (dominators, loops, gates, ...) are computed once
per checkpoint no matter how many queries consume them, and every strategy
is written against one *pair provider* abstraction — a callable answering
``(before, after) -> (result, was_cached)`` — so the serial driver (which
validates lazily through the :class:`ValidationCache`) and the batch
driver assemble byte-identical per-function verdicts from the same code.

Under ``strategy="stepwise"`` with ``config.chain_graphs`` (the default),
the adjacent-pair queries are answered from ONE *chain-shared* value
graph per function (:func:`~repro.validator.validate.validate_chain`);
the per-pair path remains both the fallback and the parity oracle —
``benchmarks/stepwise_guard.py --chain-parity`` enforces identical record
signatures with the flag on vs off.

For corpus-scale traffic, batch validation is orchestrated by the
:mod:`~repro.validator.scheduler` subsystem in three layers:

* **plan** (:func:`~repro.validator.scheduler.plan.build_plan`): pure,
  deterministic work-item generation — every selected function of every
  module is optimized, its queries derived, content-deduplicated and
  checked against the shared cache;
* **execute** (:mod:`~repro.validator.scheduler.executors`): a pluggable
  :class:`~repro.validator.scheduler.executors.Executor` backend —
  ``config.executor`` selects ``"serial"``, ``"pool"``
  (``ProcessPoolExecutor`` sharding) or ``"wave"`` (speculative
  pipeline-position waves that cancel the doomed later pairs of
  rejecting functions) — fills the cache with verdicts; pool failures
  degrade to serial through the same interface;
* **settle** (:func:`~repro.validator.scheduler.settle.settle_plan`):
  per-function records are reassembled from the cache through the same
  strategy runners the serial path uses, so every backend produces
  byte-identical :meth:`~repro.validator.report.FunctionRecord.signature`\\ s
  (``benchmarks/stepwise_guard.py --executor-parity`` enforces it).

With ``config.cache_dir`` set the cache is *persistent*: previously
proved pairs are loaded from disk up front and the merged results are
saved back after the run, so repeated corpus sweeps and CI re-runs skip
everything proved before.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..analysis.manager import AnalysisManager, function_fingerprint
from ..ir.cloning import clone_function, clone_globals_into
from ..ir.module import Function, Module
from ..transforms.pass_manager import (
    PAPER_PIPELINE,
    PassManager,
    checkpoint_chain,
)
from .cache import REMOTE_PREFIX, ValidationCache
from .config import DEFAULT_CONFIG, ValidatorConfig
from .report import FunctionRecord, ValidationReport
from .scheduler import (
    RequestBudget,
    build_plan,
    chain_provider,
    create_executor,
    remap_function_refs,
    remap_globals,
    resolved_executor,
    run_bisect,
    run_stepwise,
    run_whole,
    serial_provider,
    settle_plan,
)

#: The validation strategies :func:`validate_function_pipeline` implements.
STRATEGIES = ("whole", "stepwise", "bisect")


def _driver_manager(config: ValidatorConfig) -> AnalysisManager:
    """A driver-owned analysis manager honoring the configured LRU bound."""
    return AnalysisManager(max_entries=config.analysis_cache_size or None)


def validate_function_pipeline(
    function: Function,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    skip_unchanged: bool = True,
    cache: Optional[ValidationCache] = None,
    strategy: str = "whole",
    manager: Optional[AnalysisManager] = None,
) -> Tuple[Function, FunctionRecord]:
    """Optimize one function and validate the result under ``strategy``.

    Returns ``(kept_function, record)``.  ``kept_function`` is the fully
    optimized clone when validation succeeded, the original function when
    everything was rejected, and — under ``"stepwise"``/``"bisect"`` — the
    checkpoint at the end of the longest *validated prefix* of the
    pipeline when only part of it could be proved.  The record carries the
    per-pass verdicts, the blamed pass and the kept-prefix length.

    When ``cache`` is given, previously validated identical pairs
    (monolithic or adjacent-checkpoint) are answered from it; when
    ``manager`` is given (or a snapshot strategy creates its own, bounded
    by ``config.analysis_cache_size``), every distinct function version's
    analyses are computed only once.  This per-function entry point
    always executes lazily in-process; ``config.executor`` selects
    backends for the module/batch drivers.
    """
    config = config or DEFAULT_CONFIG
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (known: {STRATEGIES})")
    record = FunctionRecord(name=function.name, strategy=strategy)
    if function.is_declaration:
        return function, record

    if strategy == "whole":
        optimized = clone_function(function)
        record.transformed_by = PassManager(passes).run_on_function(optimized)
        if skip_unchanged and not record.transformed:
            return function, record
        provider = serial_provider(config, cache, manager)
        kept = run_whole(function, optimized, provider, record)
        if manager is not None:
            record.analysis_stats = manager.stats()
        return kept, record

    snapshots = PassManager(passes).run_with_snapshots(function)
    record.transformed_by = {snap.pass_name: snap.changed for snap in snapshots}
    if skip_unchanged and not record.transformed:
        return function, record

    # The version chain: the original, then one checkpoint per *changed*
    # pass (unchanged passes are identity steps — nothing to validate).
    steps, versions = checkpoint_chain(function, snapshots)
    manager = manager if manager is not None else _driver_manager(config)
    if strategy == "stepwise" and config.chain_graphs and len(steps) >= 2:
        # Chain-shared graph: every checkpoint is built once into one
        # graph and all adjacent pairs are answered from its single
        # normalization (the per-pair provider remains the fallback for
        # the whole-query and for chain construction failures).
        provider = chain_provider(versions, config, cache, manager, record)
    else:
        provider = serial_provider(config, cache, manager)
    if not steps:
        # skip_unchanged=False and no pass changed anything: validate the
        # identity pair, for parity with the whole strategy.
        record.result, record.from_cache = provider(function, function)
        record.analysis_stats = manager.stats()
        return function, record
    runner = run_stepwise if strategy == "stepwise" else run_bisect
    kept = runner(function, versions, steps, provider, record)
    record.analysis_stats = manager.stats()
    return kept, record


def llvm_md(
    module: Module,
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    label: str = "",
    function_names: Optional[Iterable[str]] = None,
    cache: Optional[ValidationCache] = None,
    strategy: str = "whole",
    manager: Optional[AnalysisManager] = None,
) -> Tuple[Module, ValidationReport]:
    """Run the semantics-preserving optimizer over a module.

    Every defined function is optimized with ``passes``; the optimized
    body is kept only as far as the validator can prove it equivalent to
    the original — entirely under ``strategy="whole"``, up to the longest
    validated pipeline prefix under ``"stepwise"``/``"bisect"``.  Returns
    the resulting module (a new :class:`Module`; the input is not mutated
    and shares no mutable structure — functions *and* globals are cloned)
    and the per-function :class:`ValidationReport`.

    With ``config.concurrency > 1`` (or an explicit non-serial
    ``config.executor``) the module's validation is delegated to
    :func:`validate_module_batch`'s scheduling subsystem — the
    per-function records are identical to the serial path's by
    construction; ``manager`` is only consulted on the serial path.  With
    ``config.cache_dir`` set and no explicit ``cache``, a persistent
    cache is opened there and saved back after the run.

    With ``config.incremental`` (stepwise only) the call routes through
    the process-shared :class:`~repro.validator.watch.Revalidator` for
    its config: repeated calls retain each function's checkpoint
    fingerprints and chain graph, so a re-run after a pipeline tweak
    skips the unchanged-prefix pairs outright and rebuilds only the
    dirtied suffix — with records signature-identical to a cold run.
    """
    config = config or DEFAULT_CONFIG
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (known: {STRATEGIES})")
    if config.incremental:
        # Route through the process-shared incremental revalidator: the
        # second llvm_md call with the same config pays only for what
        # changed.  Records are signature-identical to this serial path's.
        if strategy != "stepwise":
            raise ValueError(
                f"incremental revalidation requires strategy='stepwise' "
                f"(got {strategy!r}: only the checkpoint chain has a "
                f"dirty suffix to diff)")
        from .watch import shared_revalidator
        return shared_revalidator(config).revalidate(
            module, passes, label=label or module.name,
            function_names=function_names, cache=cache)
    if (config.concurrency and config.concurrency > 1) \
            or resolved_executor(config) != "serial":
        selections = [list(function_names)] if function_names is not None else None
        (result_module, report), = validate_module_batch(
            [module], passes, config, labels=[label or module.name],
            cache=cache, strategy=strategy, function_names=selections)
        return result_module, report

    if cache is None and config.cache_dir is not None:
        cache = ValidationCache(config.cache_dir, max_bytes=config.cache_max_bytes,
                                backend=config.cache_backend,
                                fault_plan=config.fault_plan)
    if manager is None and strategy != "whole":
        manager = _driver_manager(config)
    report = ValidationReport(label=label or module.name)
    result_module = Module(module.name)
    global_map = clone_globals_into(module, result_module)

    selected = set(function_names) if function_names is not None else None
    for function in module.functions.values():
        # Every function inserted into the result module is cloned (or a
        # freshly cloned checkpoint) with its global references remapped —
        # also declarations and unselected functions — so the result never
        # shares mutable structure with (or re-parents functions of) the
        # input module.
        if function.is_declaration or (selected is not None and function.name not in selected):
            result_module.add_function(clone_function(function, value_map=global_map))
            continue
        kept, record = validate_function_pipeline(
            function, passes, config, cache=cache, strategy=strategy, manager=manager)
        report.add(record)
        if kept is function:
            result_module.add_function(clone_function(function, value_map=global_map))
        else:
            remap_globals(kept, global_map)
            result_module.add_function(kept)
    remap_function_refs(result_module)
    if cache is not None:
        cache.save_if_dirty()
        report.cache_stats = cache.stats()
    if manager is not None:
        report.analysis_stats = manager.stats()
    return result_module, report


def validate_module_batch(
    modules: Sequence[Module],
    passes: Sequence[str] = PAPER_PIPELINE,
    config: Optional[ValidatorConfig] = None,
    labels: Optional[Sequence[str]] = None,
    cache: Optional[ValidationCache] = None,
    strategy: str = "whole",
    function_names: Optional[Sequence[Optional[Iterable[str]]]] = None,
    budget: Optional[RequestBudget] = None,
) -> List[Tuple[Module, ValidationReport]]:
    """Optimize and validate a batch of modules through one shared cache.

    The batch layer is what lets module-level validation scale to large
    corpora.  It is thin orchestration over the
    :mod:`~repro.validator.scheduler` subsystem:

    * **plan** — every function of every module is optimized first
      (checkpointing each pass under ``strategy="stepwise"``/``"bisect"``)
      and the resulting validation queries — whole (original, optimized)
      pairs, or every per-pass *adjacent checkpoint pair* under stepwise
      — are flattened into one work queue and *deduplicated* by content
      hash; with ``config.chain_graphs`` (the default) a multi-step
      stepwise function ships as ONE packed chain work item when enough
      of its pairs are uncached to amortize it;
    * **execute** — the ``config.executor`` backend validates the
      distinct items: ``"serial"`` in-process, ``"pool"`` sharded over a
      ``ProcessPoolExecutor`` with ``config.concurrency`` workers
      (degrading to serial if the platform cannot spawn processes, a
      payload cannot be pickled, or a worker raises/dies), ``"wave"``
      in speculative pipeline-position waves that cancel the later pairs
      of functions whose pair rejected, or ``"steal"`` over a persistent
      pool of single-item workers stealing from each other's deques
      (same degradation and cancellation guarantees, streaming); under
      stepwise, a settle round fans out the whole-query fallbacks of
      rejected functions;
    * **settle** — worker results are merged into the shared cache and
      per-module reports are assembled from it — records identical to
      what serial per-module :func:`llvm_md` calls would have produced
      (verdicts, blame, kept prefixes, per-pass verdicts), with
      ``from_cache`` marking deduplicated queries and each query counted
      exactly once in the cache's hit/miss totals.

    With ``config.cache_dir`` set and no explicit ``cache``, the cache is
    persistent: previously proved pairs load from disk and the merged
    results are saved back after assembly.  ``function_names`` optionally
    restricts validation per module (one entry per module; ``None``
    validates every defined function), mirroring ``llvm_md``.

    Returns ``[(result_module, report), ...]`` in input order.
    """
    config = config or DEFAULT_CONFIG
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r} (known: {STRATEGIES})")
    if labels is not None and len(labels) != len(modules):
        raise ValueError("labels must match modules one to one")
    if function_names is not None and len(function_names) != len(modules):
        raise ValueError("function_names must match modules one to one")
    if config.incremental:
        if strategy != "stepwise":
            raise ValueError(
                f"incremental revalidation requires strategy='stepwise' "
                f"(got {strategy!r}: only the checkpoint chain has a "
                f"dirty suffix to diff)")
        from .watch import shared_revalidator
        revalidator = shared_revalidator(config)
        return [revalidator.revalidate(
                    module, passes,
                    label=labels[index] if labels is not None else module.name,
                    function_names=(function_names[index]
                                    if function_names is not None else None),
                    cache=cache)
                for index, module in enumerate(modules)]
    if cache is None:
        if config.cache_dir is None and config.steal_connect is not None:
            # No local persistence requested but a served proof store is
            # reachable: consult it (batched gets at planning time,
            # write-behind flushes on save).
            cache = ValidationCache(f"{REMOTE_PREFIX}{config.steal_connect}",
                                    fault_plan=config.fault_plan)
        else:
            cache = ValidationCache(config.cache_dir,
                                    max_bytes=config.cache_max_bytes,
                                    backend=config.cache_backend,
                                    fault_plan=config.fault_plan)

    plan = build_plan(modules, passes, config, cache, labels=labels,
                      strategy=strategy, function_names=function_names)
    executor = create_executor(config)
    try:
        execution = executor.execute(plan, cache, budget=budget)
    finally:
        executor.close()
    manager = _driver_manager(config)
    results, inline_validations = settle_plan(plan, cache, execution, manager,
                                              budget=budget)

    executor_stats = executor.stats()
    pooled = executor_stats["pooled_items"] > 0
    shard_stats = {
        "executor": executor.name,
        "distinct_pairs": execution.validated_queries,
        "pooled_pairs": executor_stats["pooled_items"],
        "chain_items": len(plan.pending_chains),
        "inline_validations": inline_validations,
        "workers": config.concurrency if pooled else 0,
        "waves": executor_stats["waves"],
        "waves_cancelled": executor_stats["waves_cancelled"],
        "speculative_pairs_skipped": executor_stats["pairs_skipped"],
        "pool_degraded": executor_stats["pool_degraded"],
        "items_stolen": executor_stats.get("items_stolen", 0),
        "steal_attempts": executor_stats.get("steal_attempts", 0),
        "workers_respawned": executor_stats.get("workers_respawned", 0),
        "pairs_quarantined": executor_stats.get("pairs_quarantined", 0),
        "item_retries": executor_stats.get("item_retries", 0),
        "pairs_denied": len(execution.denied),
        "remote_workers_joined": executor_stats.get("remote_workers_joined", 0),
        "remote_workers_left": executor_stats.get("remote_workers_left", 0),
        "handshakes_rejected": executor_stats.get("handshakes_rejected", 0),
    }
    if budget is not None:
        shard_stats.update(budget.stats())
    cache.save_if_dirty()
    # Proof-store plumbing counters, read after the final save so the
    # closing flush is included.
    cache_counters = cache.stats()
    shard_stats["store_flushes"] = cache_counters.get("store_flushes", 0)
    shard_stats["store_lazy_loads"] = cache_counters.get("store_lazy_loads", 0)
    shard_stats["store_rpcs"] = cache_counters.get("store_rpcs", 0)
    shard_stats["store_batched_gets"] = cache_counters.get("store_batched_gets", 0)
    analysis_stats = manager.stats()
    for _, report in results:
        report.shard_stats = dict(shard_stats)
        report.analysis_stats = dict(analysis_stats)
        report.cache_stats = cache.stats()
    return results


__all__ = [
    "llvm_md",
    "validate_function_pipeline",
    "validate_module_batch",
    "ValidationCache",
    "function_fingerprint",
    "STRATEGIES",
]
