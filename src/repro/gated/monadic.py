"""Monadic view of memory: which instructions define a new memory state.

The paper makes side effects explicit by interpreting instructions as
commands in a state monad (§3.1): every memory-touching instruction takes
the current abstract memory state and the ones that write produce a new
one.  This module provides the small classification layer the value-graph
builder uses to thread that state:

* :func:`defines_memory` — does executing the instruction produce a new
  memory state (stores, calls that may write)?
* :func:`reads_memory` — does the instruction need the current memory
  state as an input (loads, calls that may read)?
* :class:`MemoryEffects` — per-function summary: which blocks and loops
  contain memory writes.  Used both by the builder (to know where memory
  μ/φ nodes are needed) and by tests.
"""

from __future__ import annotations

from typing import Dict, Set

from ..analysis.loops import LoopInfo
from ..ir.instructions import Call, Instruction, Load, Store
from ..ir.module import BasicBlock, Function


def defines_memory(inst: Instruction) -> bool:
    """Does this instruction produce a new abstract memory state?"""
    if isinstance(inst, Store):
        return True
    if isinstance(inst, Call):
        return inst.may_write_memory()
    return False


def reads_memory(inst: Instruction) -> bool:
    """Does this instruction take the abstract memory state as an input?"""
    if isinstance(inst, Load):
        return True
    if isinstance(inst, Call):
        return inst.may_read_memory()
    return False


class MemoryEffects:
    """Summary of where a function writes memory."""

    def __init__(self, function: Function):
        self.function = function
        self._writing_blocks: Set[int] = set()
        for block in function.blocks:
            if any(defines_memory(inst) for inst in block.instructions):
                self._writing_blocks.add(id(block))

    def block_writes(self, block: BasicBlock) -> bool:
        """Does ``block`` contain at least one memory write?"""
        return id(block) in self._writing_blocks

    def any_writes(self) -> bool:
        """Does the function write memory anywhere?"""
        return bool(self._writing_blocks)

    def loop_writes(self, loop_info: LoopInfo) -> Dict[int, bool]:
        """Map ``id(loop.header)`` → does the loop write memory?"""
        result: Dict[int, bool] = {}
        for loop in loop_info.loops:
            result[id(loop.header)] = any(self.block_writes(b) for b in loop.blocks)
        return result


__all__ = ["defines_memory", "reads_memory", "MemoryEffects"]
