"""Gate (path-condition) computation for Gated SSA construction.

A *gate* is the boolean condition under which control flows along a CFG
edge, expressed in terms of the branch conditions encountered on the way.
Gates are what turn ordinary φ-nodes into referentially transparent gated
φ-nodes (§3.2 of the paper): ``x3 = φ(x1, x2)`` becomes
``x3 = φ(c → x1, ¬c → x2)``.

The analysis produces small symbolic formulas (:class:`GateExpr`) over IR
values; the value-graph builder later translates them into graph nodes.
Formulas are computed over the CFG *with back edges removed*, which is a
DAG for reducible functions, using memoized path conditions:

* ``pc(S) = true`` for the region start ``S`` (the immediate dominator of
  the join for φ-gating, the loop header for loop-exit conditions),
* ``pc(X) = ⋁ over forward-edge predecessors P of (pc(P) ∧ econd(P→X))``.

If a path escapes the region (a predecessor that is not dominated by the
region start), the analysis falls back to an opaque ``Reached(block)``
condition.  This keeps construction total; such conditions only match if
both functions produce literally the same structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.dominators import DominatorTree
from ..analysis.loops import Loop
from ..ir.instructions import Branch
from ..ir.module import BasicBlock, Function
from ..ir.values import Value


class GateExpr:
    """Base class of gate formulas."""


class TrueGate(GateExpr):
    """The always-true gate."""

    def __repr__(self) -> str:
        return "true"


class FalseGate(GateExpr):
    """The never-true gate (used for statically impossible edges)."""

    def __repr__(self) -> str:
        return "false"


class CondGate(GateExpr):
    """A branch condition, possibly negated."""

    __slots__ = ("value", "negated")

    def __init__(self, value: Value, negated: bool = False):
        self.value = value
        self.negated = negated

    def __repr__(self) -> str:
        prefix = "!" if self.negated else ""
        return f"{prefix}{self.value.ref()}"


class ReachedGate(GateExpr):
    """Opaque "control reached this block" condition (fallback)."""

    __slots__ = ("block_name",)

    def __init__(self, block_name: str):
        self.block_name = block_name

    def __repr__(self) -> str:
        return f"reached({self.block_name})"


class AndGate(GateExpr):
    """Conjunction of gates."""

    __slots__ = ("operands",)

    def __init__(self, operands: List[GateExpr]):
        self.operands = operands

    def __repr__(self) -> str:
        return "(" + " & ".join(repr(op) for op in self.operands) + ")"


class OrGate(GateExpr):
    """Disjunction of gates."""

    __slots__ = ("operands",)

    def __init__(self, operands: List[GateExpr]):
        self.operands = operands

    def __repr__(self) -> str:
        return "(" + " | ".join(repr(op) for op in self.operands) + ")"


TRUE = TrueGate()
FALSE = FalseGate()


def make_and(operands: List[GateExpr]) -> GateExpr:
    """Conjunction with the obvious simplifications."""
    flat: List[GateExpr] = []
    for op in operands:
        if isinstance(op, TrueGate):
            continue
        if isinstance(op, FalseGate):
            return FALSE
        if isinstance(op, AndGate):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return AndGate(flat)


def make_or(operands: List[GateExpr]) -> GateExpr:
    """Disjunction with the obvious simplifications."""
    flat: List[GateExpr] = []
    for op in operands:
        if isinstance(op, FalseGate):
            continue
        if isinstance(op, TrueGate):
            return TRUE
        if isinstance(op, OrGate):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return OrGate(flat)


class GateAnalysis:
    """Computes edge conditions and region path conditions for a function."""

    def __init__(self, function: Function, dom: Optional[DominatorTree] = None):
        self.function = function
        self.dom = dom or DominatorTree.compute(function)
        self._preds: Dict[int, List[BasicBlock]] = {}
        for block in function.blocks:
            for successor in block.successors():
                self._preds.setdefault(id(successor), []).append(block)

    # -- edges -------------------------------------------------------------
    def edge_condition(self, source: BasicBlock, target: BasicBlock) -> GateExpr:
        """The condition attached to the edge ``source → target``."""
        terminator = source.terminator
        if not isinstance(terminator, Branch):
            return FALSE
        if not terminator.is_conditional:
            return TRUE if terminator.targets[0] is target else FALSE
        true_target, false_target = terminator.targets
        if true_target is target and false_target is target:
            return TRUE
        if true_target is target:
            return CondGate(terminator.condition, negated=False)
        if false_target is target:
            return CondGate(terminator.condition, negated=True)
        return FALSE

    def is_back_edge(self, source: BasicBlock, target: BasicBlock) -> bool:
        """An edge whose target dominates its source (a loop back edge)."""
        return self.dom.dominates(target, source)

    # -- path conditions ------------------------------------------------------
    def path_condition(self, start: BasicBlock, block: BasicBlock) -> GateExpr:
        """Condition for control to reach ``block`` from ``start``.

        Computed over forward edges only (back edges removed).  ``start``
        itself gets the condition *true*.
        """
        memo: Dict[int, GateExpr] = {id(start): TRUE}
        visiting: set = set()

        def compute(current: BasicBlock) -> GateExpr:
            key = id(current)
            if key in memo:
                return memo[key]
            if key in visiting:
                # A forward-edge cycle should not exist in a reducible CFG;
                # fall back to an opaque condition rather than diverging.
                return ReachedGate(current.name)
            visiting.add(key)
            disjuncts: List[GateExpr] = []
            for pred in self._preds.get(key, []):
                if self.is_back_edge(pred, current):
                    continue
                if not self.dom.dominates(start, pred):
                    # Path escaping the region: opaque fallback.
                    disjuncts.append(
                        make_and([ReachedGate(pred.name), self.edge_condition(pred, current)])
                    )
                    continue
                disjuncts.append(make_and([compute(pred), self.edge_condition(pred, current)]))
            visiting.discard(key)
            result = make_or(disjuncts)
            memo[key] = result
            return result

        return compute(block)

    # -- gating for φ-nodes --------------------------------------------------
    def phi_gates(self, block: BasicBlock) -> List[Tuple[BasicBlock, GateExpr]]:
        """Gate of each incoming edge of a (non-loop-header) join block.

        Conditions are relative to the block's immediate dominator, which is
        the closest "branch point" all incoming paths share.
        """
        start = self.dom.idom(block) or self.function.entry
        gates: List[Tuple[BasicBlock, GateExpr]] = []
        for pred in self._preds.get(id(block), []):
            gate = make_and(
                [self.path_condition(start, pred), self.edge_condition(pred, block)]
            )
            gates.append((pred, gate))
        return gates

    # -- loop exit conditions -----------------------------------------------------
    def loop_exit_condition(self, loop: Loop) -> GateExpr:
        """Condition (relative to the loop header, per iteration) that the loop exits.

        The disjunction over every exit edge of "control reaches the exiting
        block this iteration and takes the exit edge".  For the canonical
        ``while (b)`` loop this is simply ``¬b``.
        """
        disjuncts: List[GateExpr] = []
        for inside, outside in loop.exit_edges():
            path = self.path_condition(loop.header, inside)
            disjuncts.append(make_and([path, self.edge_condition(inside, outside)]))
        return make_or(disjuncts)


__all__ = [
    "GateExpr",
    "TrueGate",
    "FalseGate",
    "CondGate",
    "ReachedGate",
    "AndGate",
    "OrGate",
    "TRUE",
    "FALSE",
    "make_and",
    "make_or",
    "GateAnalysis",
]
