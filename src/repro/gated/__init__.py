"""Gated-SSA support: gate (path-condition) analysis and the monadic memory view."""

from .gates import (
    AndGate,
    CondGate,
    FALSE,
    FalseGate,
    GateAnalysis,
    GateExpr,
    OrGate,
    ReachedGate,
    TRUE,
    TrueGate,
    make_and,
    make_or,
)
from .monadic import MemoryEffects, defines_memory, reads_memory

__all__ = [
    "GateAnalysis",
    "GateExpr",
    "TrueGate",
    "FalseGate",
    "CondGate",
    "ReachedGate",
    "AndGate",
    "OrGate",
    "TRUE",
    "FALSE",
    "make_and",
    "make_or",
    "MemoryEffects",
    "defines_memory",
    "reads_memory",
]
