"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class IRError(ReproError):
    """Raised for malformed IR: bad operand types, broken SSA, etc."""


class ParseError(IRError):
    """Raised by the textual IR parser on a syntax error.

    Attributes
    ----------
    line:
        1-based line number of the offending token, when known.
    column:
        1-based column of the offending token, when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class VerificationError(IRError):
    """Raised by the IR verifier when a module violates a structural rule."""


class InterpreterError(ReproError):
    """Raised by the reference interpreter on a dynamic error.

    Examples include loading from an uninitialised address, division by
    zero, or exceeding the configured step budget.
    """


class AnalysisError(ReproError):
    """Raised by an analysis that cannot handle the given function.

    The most important case is :class:`IrreducibleCFGError`, mirroring the
    paper's front end which rejects irreducible control flow.
    """


class IrreducibleCFGError(AnalysisError):
    """Raised when gated-SSA construction meets an irreducible CFG."""


class TransformError(ReproError):
    """Raised when an optimization pass cannot be applied."""


class ValidationInternalError(ReproError):
    """Raised when the validator itself fails (as opposed to rejecting).

    The driver treats this the same way as a validation failure (the
    transformed function is rejected) but keeps the distinction for
    reporting purposes.
    """
