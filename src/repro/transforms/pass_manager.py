"""Pass manager and pass registry.

A *pass* is any callable taking a :class:`~repro.ir.module.Function` and
returning ``True`` if it changed the function.  Passes register themselves
under a short name (``"gvn"``, ``"licm"``, ...) so pipelines can be
described as lists of strings — the same way the paper describes its
pipeline (``ADCE, GVN, SCCP, LICM, LD, LU, DSE``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..errors import TransformError
from ..ir.module import Function, Module

#: Signature of a function pass.
FunctionPass = Callable[[Function], bool]

_REGISTRY: Dict[str, FunctionPass] = {}


def register_pass(name: str, pass_fn: Optional[FunctionPass] = None):
    """Register a pass under ``name``.

    Can be used as a decorator (``@register_pass("gvn")``) or called
    directly with the pass callable.
    """

    def decorator(fn: FunctionPass) -> FunctionPass:
        if name in _REGISTRY:
            raise TransformError(f"pass {name!r} registered twice")
        _REGISTRY[name] = fn
        return fn

    if pass_fn is not None:
        return decorator(pass_fn)
    return decorator


def get_pass(name: str) -> FunctionPass:
    """Look up a registered pass by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise TransformError(f"unknown pass {name!r} (known: {known})") from None


def available_passes() -> List[str]:
    """Names of every registered pass, sorted."""
    return sorted(_REGISTRY)


#: The optimization pipeline used throughout the paper's evaluation (§5.1).
PAPER_PIPELINE = ("adce", "gvn", "sccp", "licm", "loop-deletion", "loop-unswitch", "dse")


class PassManager:
    """Runs a sequence of function passes over functions or whole modules."""

    def __init__(self, pass_names: Sequence[str] = PAPER_PIPELINE):
        self.pass_names = list(pass_names)
        self._passes = [(name, get_pass(name)) for name in self.pass_names]

    def run_on_function(self, function: Function) -> Dict[str, bool]:
        """Run the pipeline on one function.

        Returns a map from pass name to whether that pass changed the
        function; the driver and the per-optimization experiments use it to
        count "transformed" functions the way the paper does (Figure 5
        counts only functions actually transformed by the optimization).
        """
        if function.is_declaration:
            return {name: False for name in self.pass_names}
        changed = {}
        for name, pass_fn in self._passes:
            changed[name] = bool(pass_fn(function))
        return changed

    def run_on_module(self, module: Module) -> Dict[str, Dict[str, bool]]:
        """Run the pipeline on every defined function of a module."""
        return {
            function.name: self.run_on_function(function)
            for function in module.defined_functions()
        }


def optimize(function: Function, pass_names: Iterable[str] = PAPER_PIPELINE) -> Function:
    """Run the named passes on ``function`` in place and return it.

    This is the convenience entry point used in examples and docstrings::

        after = optimize(before.clone(), ["instcombine", "gvn"])
    """
    for name in pass_names:
        get_pass(name)(function)
    return function


__all__ = [
    "FunctionPass",
    "PassManager",
    "PAPER_PIPELINE",
    "register_pass",
    "get_pass",
    "available_passes",
    "optimize",
]
