"""Pass manager and pass registry.

A *pass* is any callable taking a :class:`~repro.ir.module.Function` and
returning ``True`` if it changed the function.  Passes register themselves
under a short name (``"gvn"``, ``"licm"``, ...) so pipelines can be
described as lists of strings — the same way the paper describes its
pipeline (``ADCE, GVN, SCCP, LICM, LD, LU, DSE``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import TransformError
from ..ir.cloning import clone_function
from ..ir.module import Function, Module

#: Signature of a function pass.
FunctionPass = Callable[[Function], bool]

_REGISTRY: Dict[str, FunctionPass] = {}


def register_pass(name: str, pass_fn: Optional[FunctionPass] = None):
    """Register a pass under ``name``.

    Can be used as a decorator (``@register_pass("gvn")``) or called
    directly with the pass callable.
    """

    def decorator(fn: FunctionPass) -> FunctionPass:
        if name in _REGISTRY:
            raise TransformError(f"pass {name!r} registered twice")
        _REGISTRY[name] = fn
        return fn

    if pass_fn is not None:
        return decorator(pass_fn)
    return decorator


def get_pass(name: str) -> FunctionPass:
    """Look up a registered pass by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise TransformError(f"unknown pass {name!r} (known: {known})") from None


def available_passes() -> List[str]:
    """Names of every registered pass, sorted."""
    return sorted(_REGISTRY)


#: The optimization pipeline used throughout the paper's evaluation (§5.1).
PAPER_PIPELINE = ("adce", "gvn", "sccp", "licm", "loop-deletion", "loop-unswitch", "dse")


@dataclass
class PassSnapshot:
    """The function's state after one pipeline step.

    ``function`` is an immutable checkpoint: a fresh clone when the pass
    changed something, otherwise *the same object* as the previous step's
    checkpoint (so adjacent unchanged steps compare by identity and a
    shared :class:`~repro.analysis.manager.AnalysisManager` never analyses
    the identical version twice).

    Snapshots are the unit of work the sharded batch driver ships to its
    process pool, so the whole payload — step name, changed flag and the
    checkpoint function — must stay pickle-safe (plain data and IR
    objects; no open handles, locks or pass callables).
    """

    #: Bookkeeping step name of the pass this snapshot follows
    #: (uniquified for repeated passes: ``"gvn"``, ``"gvn#2"``, ...).
    pass_name: str
    #: Did the pass change the function?
    changed: bool
    #: Checkpoint of the function after the pass ran.
    function: Function
    #: Lazily computed content hash of :attr:`function` (see
    #: :meth:`fingerprint`); excluded from equality/repr.
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)

    def fingerprint(self) -> str:
        """The checkpoint's content fingerprint, computed at most once.

        Checkpoints are immutable by contract, so the hash can be cached;
        the batch driver derives every adjacent-pair cache key from these
        instead of re-printing each function once per pair it appears in.

        Changed-pass checkpoints are private clones, so their hash also
        enters the process-wide
        :data:`~repro.analysis.manager.CHECKPOINT_FINGERPRINTS` table —
        the planner, chain provider and incremental differ all consult it
        instead of re-hashing per consumer.  Unchanged snapshots alias
        the caller's original function object (which the caller may later
        mutate in place), so those stay out of the global memo and only
        use this snapshot-local cache.
        """
        if self._fingerprint is None:
            from ..analysis.manager import (CHECKPOINT_FINGERPRINTS,
                                            function_fingerprint)

            if self.changed:
                self._fingerprint = CHECKPOINT_FINGERPRINTS.remember(self.function)
            else:
                self._fingerprint = function_fingerprint(self.function)
        return self._fingerprint


def checkpoint_chain(function: Function, snapshots: Sequence[PassSnapshot]
                     ) -> Tuple[List[PassSnapshot], List[Function]]:
    """Flatten a snapshot list into the stepwise validation version chain.

    Returns ``(steps, versions)`` where ``steps`` keeps only the snapshots
    whose pass *changed* the function (unchanged passes are identity steps
    — nothing to validate) and ``versions`` is the original followed by
    one checkpoint per changed step: ``versions[i]``/``versions[i + 1]``
    is exactly the adjacent pair validating ``steps[i]``.  Both the serial
    and the sharded drivers build their work from this one helper, so they
    cannot disagree about which pairs a pipeline produces; every element
    is a pickle-safe process-pool payload.
    """
    steps = [snapshot for snapshot in snapshots if snapshot.changed]
    versions = [function] + [snapshot.function for snapshot in steps]
    return steps, versions


class PassManager:
    """Runs a sequence of function passes over functions or whole modules.

    A pipeline may list the same pass several times (real optimizers
    re-run cleanups).  Bookkeeping — the per-pass changed flags, snapshot
    names and therefore the validator's per-pass verdicts and blame — is
    keyed by a *step name* that uniquifies repeats (``"gvn"``, ``"gvn#2"``,
    ...), so a second occurrence never overwrites the first's flag or,
    worse, makes a changed function look untransformed.
    """

    def __init__(self, pass_names: Sequence[str] = PAPER_PIPELINE):
        self.pass_names = list(pass_names)
        self._passes = []
        seen: Dict[str, int] = {}
        for name in self.pass_names:
            seen[name] = seen.get(name, 0) + 1
            step_name = name if seen[name] == 1 else f"{name}#{seen[name]}"
            self._passes.append((step_name, get_pass(name)))

    @property
    def step_names(self) -> List[str]:
        """The uniquified bookkeeping name of every pipeline step."""
        return [step_name for step_name, _ in self._passes]

    def run_on_function(self, function: Function) -> Dict[str, bool]:
        """Run the pipeline on one function.

        Returns a map from step name to whether that pass changed the
        function; the driver and the per-optimization experiments use it to
        count "transformed" functions the way the paper does (Figure 5
        counts only functions actually transformed by the optimization).
        """
        if function.is_declaration:
            return {step_name: False for step_name, _ in self._passes}
        changed = {}
        for step_name, pass_fn in self._passes:
            changed[step_name] = bool(pass_fn(function))
        return changed

    def run_on_module(self, module: Module) -> Dict[str, Dict[str, bool]]:
        """Run the pipeline on every defined function of a module."""
        return {
            function.name: self.run_on_function(function)
            for function in module.defined_functions()
        }

    def run_with_snapshots(self, function: Function) -> List[PassSnapshot]:
        """Run the pipeline on a working clone, checkpointing every step.

        ``function`` itself is never mutated.  Returns one
        :class:`PassSnapshot` per pipeline step; the last snapshot's
        function is the fully optimized version (or ``function`` itself
        when no pass changed anything).  The checkpoints are what the
        stepwise and bisecting validation strategies consume: validating
        adjacent checkpoints shrinks each equivalence problem to one
        pass's effect, and a rejection names the offending pass instead of
        discarding the whole pipeline's work.
        """
        if function.is_declaration:
            return [PassSnapshot(step_name, False, function)
                    for step_name, _ in self._passes]
        working = clone_function(function)
        checkpoint = function
        snapshots = []
        for step_name, pass_fn in self._passes:
            changed = bool(pass_fn(working))
            if changed:
                checkpoint = clone_function(working)
            snapshots.append(PassSnapshot(step_name, changed, checkpoint))
        return snapshots


def optimize(function: Function, pass_names: Iterable[str] = PAPER_PIPELINE) -> Function:
    """Run the named passes on ``function`` in place and return it.

    This is the convenience entry point used in examples and docstrings::

        after = optimize(before.clone(), ["instcombine", "gvn"])
    """
    for name in pass_names:
        get_pass(name)(function)
    return function


__all__ = [
    "FunctionPass",
    "PassManager",
    "PassSnapshot",
    "PAPER_PIPELINE",
    "checkpoint_chain",
    "register_pass",
    "get_pass",
    "available_passes",
    "optimize",
]
