"""Constant folding helpers shared by the optimizer and the validator.

Both sides must agree on arithmetic: the optimizer folds ``3 + 3`` to
``6`` and the validator's normalization rules fold the corresponding
value-graph node the same way (the paper's "optimization-specific" rule
family ``add 3 2 ↓ 5``).  Keeping the evaluation in one module guarantees
they cannot drift apart.
"""

from __future__ import annotations

from typing import Optional

from ..ir.instructions import ICMP_PREDICATES
from ..ir.types import IntType, to_signed, to_unsigned
from ..ir.values import ConstantInt


def fold_int_binary(opcode: str, lhs: int, rhs: int, bits: int) -> Optional[int]:
    """Fold an integer binary operation over raw Python ints.

    Returns the signed result truncated to ``bits`` bits, or ``None`` when
    the operation cannot be folded (division by zero, unknown opcode) —
    the caller must then leave the expression alone.
    """
    unsigned_lhs = to_unsigned(lhs, bits)
    unsigned_rhs = to_unsigned(rhs, bits)
    signed_lhs = to_signed(lhs, bits)
    signed_rhs = to_signed(rhs, bits)
    if opcode == "add":
        result = signed_lhs + signed_rhs
    elif opcode == "sub":
        result = signed_lhs - signed_rhs
    elif opcode == "mul":
        result = signed_lhs * signed_rhs
    elif opcode == "sdiv":
        if signed_rhs == 0:
            return None
        quotient = abs(signed_lhs) // abs(signed_rhs)
        result = quotient if (signed_lhs < 0) == (signed_rhs < 0) else -quotient
    elif opcode == "udiv":
        if unsigned_rhs == 0:
            return None
        result = unsigned_lhs // unsigned_rhs
    elif opcode == "srem":
        if signed_rhs == 0:
            return None
        quotient = abs(signed_lhs) // abs(signed_rhs)
        quotient = quotient if (signed_lhs < 0) == (signed_rhs < 0) else -quotient
        result = signed_lhs - quotient * signed_rhs
    elif opcode == "urem":
        if unsigned_rhs == 0:
            return None
        result = unsigned_lhs % unsigned_rhs
    elif opcode == "and":
        result = unsigned_lhs & unsigned_rhs
    elif opcode == "or":
        result = unsigned_lhs | unsigned_rhs
    elif opcode == "xor":
        result = unsigned_lhs ^ unsigned_rhs
    elif opcode == "shl":
        result = unsigned_lhs << (unsigned_rhs % bits)
    elif opcode == "lshr":
        result = unsigned_lhs >> (unsigned_rhs % bits)
    elif opcode == "ashr":
        result = signed_lhs >> (unsigned_rhs % bits)
    else:
        return None
    return to_signed(result, bits)


def fold_icmp(predicate: str, lhs: int, rhs: int, bits: int) -> Optional[bool]:
    """Fold an integer comparison; returns ``None`` for unknown predicates."""
    if predicate not in ICMP_PREDICATES:
        return None
    signed_lhs, signed_rhs = to_signed(lhs, bits), to_signed(rhs, bits)
    unsigned_lhs, unsigned_rhs = to_unsigned(lhs, bits), to_unsigned(rhs, bits)
    table = {
        "eq": unsigned_lhs == unsigned_rhs,
        "ne": unsigned_lhs != unsigned_rhs,
        "slt": signed_lhs < signed_rhs,
        "sle": signed_lhs <= signed_rhs,
        "sgt": signed_lhs > signed_rhs,
        "sge": signed_lhs >= signed_rhs,
        "ult": unsigned_lhs < unsigned_rhs,
        "ule": unsigned_lhs <= unsigned_rhs,
        "ugt": unsigned_lhs > unsigned_rhs,
        "uge": unsigned_lhs >= unsigned_rhs,
    }
    return table[predicate]


def fold_cast(opcode: str, value: int, from_bits: int, to_bits: int) -> Optional[int]:
    """Fold an integer cast; returns ``None`` for unsupported casts."""
    if opcode == "zext":
        return to_unsigned(value, from_bits)
    if opcode == "sext":
        return to_signed(value, from_bits)
    if opcode == "trunc":
        return to_signed(value, to_bits)
    if opcode == "bitcast" and from_bits == to_bits:
        return value
    return None


def fold_binary_constants(opcode: str, lhs: ConstantInt, rhs: ConstantInt) -> Optional[ConstantInt]:
    """Fold a binary operation over two :class:`ConstantInt` operands."""
    if not isinstance(lhs.type, IntType):
        return None
    result = fold_int_binary(opcode, lhs.value, rhs.value, lhs.type.bits)
    if result is None:
        return None
    return ConstantInt(lhs.type, result)


def fold_icmp_constants(predicate: str, lhs: ConstantInt, rhs: ConstantInt) -> Optional[ConstantInt]:
    """Fold a comparison over two :class:`ConstantInt` operands into an i1."""
    if not isinstance(lhs.type, IntType):
        return None
    result = fold_icmp(predicate, lhs.value, rhs.value, lhs.type.bits)
    if result is None:
        return None
    return ConstantInt(IntType(1), 1 if result else 0)


def is_power_of_two(value: int) -> bool:
    """Is ``value`` a positive power of two?"""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """The exponent of a power of two (caller must check :func:`is_power_of_two`)."""
    return value.bit_length() - 1


__all__ = [
    "fold_int_binary",
    "fold_icmp",
    "fold_cast",
    "fold_binary_constants",
    "fold_icmp_constants",
    "is_power_of_two",
    "log2_exact",
]
