"""The optimizer substrate: LLVM-style intra-procedural passes.

Importing this package registers every pass with the pass registry, so
``optimize(function, ["adce", "gvn", ...])`` and :class:`PassManager`
pipelines work out of the box.  The set of passes matches the paper's
evaluation pipeline (ADCE, GVN, SCCP, LICM, loop deletion, loop
unswitching, DSE) plus the helpers it mentions (mem2reg to place φ-nodes,
instcombine/constprop, simplifycfg) and a family of intentionally buggy
passes used to demonstrate that the validator catches miscompilations.
"""

from .pass_manager import (
    PAPER_PIPELINE,
    PassManager,
    PassSnapshot,
    available_passes,
    checkpoint_chain,
    get_pass,
    optimize,
    register_pass,
)

# Importing the pass modules registers them.
from .adce import adce
from .buggy import ALL_BUGGY_PASSES
from .constfold import fold_int_binary, fold_icmp, fold_cast
from .dse import dse
from .gvn import gvn
from .instcombine import constant_propagation, instcombine, simplify_instruction
from .licm import licm
from .loop_deletion import loop_deletion
from .loop_unswitch import loop_unswitch
from .mem2reg import mem2reg
from .sccp import sccp
from .simplifycfg import simplifycfg

__all__ = [
    "PassManager",
    "PassSnapshot",
    "PAPER_PIPELINE",
    "checkpoint_chain",
    "register_pass",
    "get_pass",
    "available_passes",
    "optimize",
    "adce",
    "dse",
    "gvn",
    "instcombine",
    "constant_propagation",
    "simplify_instruction",
    "licm",
    "loop_deletion",
    "loop_unswitch",
    "mem2reg",
    "sccp",
    "simplifycfg",
    "ALL_BUGGY_PASSES",
    "fold_int_binary",
    "fold_icmp",
    "fold_cast",
]
