"""Dead-store elimination.

Removes a store when a later store definitely overwrites the same address
before any intervening instruction could observe the first value.  The
analysis is block-local (as the original LLVM DSE largely was) and relies
on the same :class:`~repro.analysis.alias.AliasAnalysis` the validator's
load/store rules use:

* a store ``S1`` followed in the same block by a store ``S2`` with
  *must-alias* pointers is dead if nothing between them may read the
  stored-to memory;
* additionally, stores to a non-escaping ``alloca`` that is never loaded
  afterwards (anywhere in the function) are removed — this is the case the
  paper's §4.2 example needs (the ``*t = 42`` store survives only because
  ``t2`` is read back).
"""

from __future__ import annotations

from typing import List

from ..analysis.alias import AliasAnalysis
from ..analysis.usedef import users_of
from ..ir.instructions import Alloca, Call, Load, Store
from ..ir.module import Function
from .pass_manager import register_pass


def _may_read_between(instructions, start: int, end: int, pointer, alias: AliasAnalysis) -> bool:
    """Could any instruction strictly between ``start`` and ``end`` read ``pointer``?"""
    for index in range(start + 1, end):
        inst = instructions[index]
        if isinstance(inst, Load):
            if not alias.no_alias(inst.pointer, pointer):
                return True
        elif isinstance(inst, Call):
            if not inst.is_readnone():
                return True
        elif isinstance(inst, Store):
            continue
    return False


def _block_local_dse(function: Function, alias: AliasAnalysis) -> int:
    removed = 0
    for block in function.blocks:
        instructions = block.instructions
        stores: List[int] = [i for i, inst in enumerate(instructions) if isinstance(inst, Store)]
        dead: List[Store] = []
        for position, index in enumerate(stores):
            store = instructions[index]
            for later_index in stores[position + 1 :]:
                later = instructions[later_index]
                if alias.must_alias(store.pointer, later.pointer):
                    if not _may_read_between(instructions, index, later_index, store.pointer, alias):
                        dead.append(store)
                    break
                if not alias.no_alias(store.pointer, later.pointer):
                    break
        for store in dead:
            block.remove(store)
            removed += 1
    return removed


def _dead_alloca_stores(function: Function, alias: AliasAnalysis) -> int:
    """Remove stores to allocas that are never loaded and never escape."""
    removed = 0
    for inst in list(function.instructions()):
        if not isinstance(inst, Alloca):
            continue
        loads_or_escapes = False
        stores: List[Store] = []
        for user in users_of(function, inst):
            if isinstance(user, Store) and user.pointer is inst and user.value is not inst:
                stores.append(user)
            elif isinstance(user, Load):
                loads_or_escapes = True
            else:
                loads_or_escapes = True
        if not loads_or_escapes:
            for store in stores:
                store.parent.remove(store)
                removed += 1
    return removed


@register_pass("dse")
def dse(function: Function) -> bool:
    """Run dead-store elimination.  Returns ``True`` if changed."""
    alias = AliasAnalysis()
    removed = _block_local_dse(function, alias)
    removed += _dead_alloca_stores(function, alias)
    return removed > 0


__all__ = ["dse"]
