"""Loop-invariant code motion (LICM).

Hoists computations out of loops into the loop preheader when every
operand is loop-invariant and the instruction is safe to execute
speculatively:

* pure arithmetic, comparisons, casts, selects and GEPs are always hoisted
  (division only when the divisor is a non-zero constant);
* loads are hoisted when the address is invariant and no store or
  memory-writing call inside the loop may alias it;
* calls are hoisted when their arguments are invariant and the callee is
  ``readnone``, or ``readonly`` with no may-writing instruction in the
  loop.

The last case reproduces the paper's main LICM false-alarm source: LLVM
hoists ``strlen``-style calls using function knowledge, while the
validator's memory model (one threaded memory state) cannot justify the
motion without call-specific rules (§5.3, Figure 7).
"""

from __future__ import annotations

from typing import List, Set

from ..analysis.alias import AliasAnalysis
from ..analysis.loops import Loop, LoopInfo
from ..ir.instructions import (
    BinaryOperator,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from ..ir.module import Function
from ..ir.values import ConstantInt, Value
from .pass_manager import register_pass


def _defined_in_loop(value: Value, loop: Loop) -> bool:
    return isinstance(value, Instruction) and value.parent is not None and loop.contains(value.parent)


def _operands_invariant(inst: Instruction, loop: Loop, hoisted: Set[int]) -> bool:
    for operand in inst.operands:
        if _defined_in_loop(operand, loop) and id(operand) not in hoisted:
            return False
    return True


def _loop_memory_writes(loop: Loop) -> List[Instruction]:
    writes: List[Instruction] = []
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, Store):
                writes.append(inst)
            elif isinstance(inst, Call) and inst.may_write_memory():
                writes.append(inst)
    return writes


def _safe_to_hoist(inst: Instruction, loop: Loop, hoisted: Set[int],
                   writes: List[Instruction], alias: AliasAnalysis) -> bool:
    if not _operands_invariant(inst, loop, hoisted):
        return False
    if isinstance(inst, (ICmp, Select, Cast, GetElementPtr)):
        return True
    if isinstance(inst, BinaryOperator):
        if inst.opcode in ("sdiv", "udiv", "srem", "urem"):
            return isinstance(inst.rhs, ConstantInt) and inst.rhs.value != 0
        return True
    if isinstance(inst, Load):
        for write in writes:
            if isinstance(write, Store):
                if not alias.no_alias(write.pointer, inst.pointer):
                    return False
            else:
                return False
        return True
    if isinstance(inst, Call):
        if inst.is_readnone():
            return True
        if inst.is_readonly():
            return not writes
        return False
    return False


def _hoist_loop(function: Function, loop: Loop, alias: AliasAnalysis) -> bool:
    preheader = loop.preheader()
    if preheader is None:
        return False
    writes = _loop_memory_writes(loop)
    hoisted: Set[int] = set()
    changed = False
    progress = True
    while progress:
        progress = False
        for block in loop.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, (Phi, Store)) or inst.is_terminator():
                    continue
                if not inst.has_result():
                    continue
                if id(inst) in hoisted:
                    continue
                if _safe_to_hoist(inst, loop, hoisted, writes, alias):
                    block.remove(inst)
                    preheader.insert_before_terminator(inst)
                    hoisted.add(id(inst))
                    progress = True
                    changed = True
    return changed


@register_pass("licm")
def licm(function: Function) -> bool:
    """Run loop-invariant code motion.  Returns ``True`` if changed."""
    if function.is_declaration:
        return False
    loop_info = LoopInfo.compute(function)
    if not loop_info.loops:
        return False
    alias = AliasAnalysis()
    changed = False
    # Innermost loops first, so hoisted code can cascade outwards.
    for loop in sorted(loop_info.loops, key=lambda l: -l.depth):
        if _hoist_loop(function, loop, alias):
            changed = True
    return changed


__all__ = ["licm"]
