"""Global value numbering with alias-aware load elimination.

This is the workhorse pass of the paper's pipeline (Figure 5 shows it both
transforms the most functions and is the hardest to validate).  The
implementation has two cooperating parts:

* **Scoped expression GVN** — pure expressions (arithmetic, comparisons,
  casts, selects, GEPs) are value-numbered along a preorder walk of the
  dominator tree with a scoped hash table, so an expression available in a
  dominating block replaces any later recomputation.  Commutative
  operators are canonicalized before hashing.

* **Alias-aware memory simplification** — within each block, stores are
  tracked so that loads can be forwarded from a must-aliasing store
  (store-to-load forwarding), and repeated loads of the same address with
  no intervening may-write are merged.  This uses the same
  :class:`~repro.analysis.alias.AliasAnalysis` that the validator's
  load/store rewrite rules use — e.g. distinct ``alloca``s never alias.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.alias import AliasAnalysis
from ..analysis.dominators import DominatorTree
from ..ir.instructions import (
    BinaryOperator,
    Call,
    Cast,
    COMMUTATIVE_OPS,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
    SWAPPED_PREDICATE,
)
from ..ir.module import BasicBlock, Function
from ..ir.values import ConstantInt, Value
from .pass_manager import register_pass


class _ValueNumbering:
    """Assigns stable numbers to values; structurally equal constants share one."""

    def __init__(self):
        self._numbers: Dict[object, int] = {}
        self._next = 0

    def number(self, value: Value) -> int:
        if isinstance(value, ConstantInt):
            key = ("const", value.type.bits, value.value)
        else:
            key = id(value)
        if key not in self._numbers:
            self._numbers[key] = self._next
            self._next += 1
        return self._numbers[key]

    def alias_to(self, value: Value, leader: Value) -> None:
        """Make ``value`` share the leader's number."""
        self._numbers[id(value)] = self.number(leader)


def _expression_key(inst: Instruction, numbering: _ValueNumbering) -> Optional[Tuple]:
    """A hashable key identifying the expression an instruction computes."""
    if isinstance(inst, BinaryOperator):
        lhs, rhs = numbering.number(inst.lhs), numbering.number(inst.rhs)
        if inst.opcode in COMMUTATIVE_OPS and lhs > rhs:
            lhs, rhs = rhs, lhs
        return ("bin", inst.opcode, lhs, rhs)
    if isinstance(inst, ICmp):
        lhs, rhs = numbering.number(inst.lhs), numbering.number(inst.rhs)
        predicate = inst.predicate
        if lhs > rhs:
            lhs, rhs = rhs, lhs
            predicate = SWAPPED_PREDICATE[predicate]
        return ("icmp", predicate, lhs, rhs)
    if isinstance(inst, Cast):
        return ("cast", inst.opcode, str(inst.type), numbering.number(inst.value))
    if isinstance(inst, Select):
        return (
            "select",
            numbering.number(inst.condition),
            numbering.number(inst.if_true),
            numbering.number(inst.if_false),
        )
    if isinstance(inst, GetElementPtr):
        return ("gep", numbering.number(inst.pointer)) + tuple(
            numbering.number(index) for index in inst.indices
        )
    return None


def _forward_memory(block: BasicBlock, function: Function, alias: AliasAnalysis) -> bool:
    """Block-local store-to-load forwarding and redundant-load elimination."""
    changed = False
    available_stores: List[Store] = []
    available_loads: List[Load] = []
    for inst in list(block.instructions):
        if isinstance(inst, Store):
            available_stores = [
                s for s in available_stores if alias.no_alias(s.pointer, inst.pointer)
            ]
            available_loads = [
                l for l in available_loads if alias.no_alias(l.pointer, inst.pointer)
            ]
            available_stores.append(inst)
        elif isinstance(inst, Load):
            replacement: Optional[Value] = None
            for store in reversed(available_stores):
                if alias.must_alias(store.pointer, inst.pointer) and store.value.type == inst.type:
                    replacement = store.value
                    break
            if replacement is None:
                for load in reversed(available_loads):
                    if alias.must_alias(load.pointer, inst.pointer) and load.type == inst.type:
                        replacement = load
                        break
            if replacement is not None:
                function.replace_all_uses(inst, replacement)
                block.remove(inst)
                changed = True
            else:
                available_loads.append(inst)
        elif isinstance(inst, Call):
            if not inst.is_readnone() and not inst.is_readonly():
                available_stores = []
                available_loads = []
    return changed


@register_pass("gvn")
def gvn(function: Function) -> bool:
    """Run GVN (+ alias-aware load elimination).  Returns ``True`` if changed."""
    if function.is_declaration:
        return False
    changed = False
    alias = AliasAnalysis()

    # Memory simplification first: it can expose more pure-expression
    # equivalences (a forwarded load becomes the stored expression).
    for block in function.blocks:
        if _forward_memory(block, function, alias):
            changed = True

    dom = DominatorTree.compute(function)
    numbering = _ValueNumbering()
    leaders: Dict[Tuple, Instruction] = {}

    def process(block: BasicBlock) -> List[Tuple]:
        nonlocal changed
        added: List[Tuple] = []
        for inst in list(block.instructions):
            if isinstance(inst, (Phi, Store, Call, Load)) or inst.is_terminator():
                continue
            if not inst.has_result() or inst.has_side_effects():
                continue
            key = _expression_key(inst, numbering)
            if key is None:
                continue
            leader = leaders.get(key)
            if leader is not None and leader.parent is not None:
                function.replace_all_uses(inst, leader)
                numbering.alias_to(inst, leader)
                block.remove(inst)
                changed = True
            else:
                leaders[key] = inst
                added.append(key)
        return added

    # Preorder walk of the dominator tree; keys added in a block are only
    # visible in its dominator subtree (popped on the way back up).
    def walk(block: BasicBlock) -> None:
        added = process(block)
        for child in dom.children(block):
            walk(child)
        for key in added:
            leaders.pop(key, None)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10_000))
    try:
        walk(function.entry)
    finally:
        sys.setrecursionlimit(old_limit)
    return changed


__all__ = ["gvn"]
