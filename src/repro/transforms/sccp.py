"""Sparse conditional constant propagation (SCCP).

The classical Wegman–Zadeck algorithm over the three-level lattice
``undefined ⊏ constant ⊏ overdefined``, tracking executable CFG edges so
that constants can propagate through branches that are statically decided.
After the fixpoint:

* every instruction whose lattice value is a constant is replaced by that
  constant,
* conditional branches on constant conditions are rewritten to
  unconditional branches,
* blocks that became unreachable are removed (φ-nodes in the survivors are
  fixed up accordingly).

SCCP subsumes plain constant propagation and constant folding, which is
why the paper's pipeline carries only SCCP.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.cfg import remove_unreachable_blocks
from ..ir.instructions import (
    BinaryOperator,
    Branch,
    Call,
    Cast,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import BasicBlock, Function
from ..ir.types import IntType
from ..ir.values import Argument, Constant, ConstantInt, UndefValue, Value
from .constfold import fold_binary_constants, fold_cast, fold_icmp_constants
from .pass_manager import register_pass

_UNDEFINED = "undefined"
_CONSTANT = "constant"
_OVERDEFINED = "overdefined"


class _Lattice:
    """Per-value lattice cell."""

    __slots__ = ("state", "constant")

    def __init__(self):
        self.state = _UNDEFINED
        self.constant: Optional[ConstantInt] = None

    def mark_constant(self, constant: ConstantInt) -> bool:
        """Lower to ``constant``; returns ``True`` if the cell changed."""
        if self.state == _OVERDEFINED:
            return False
        if self.state == _CONSTANT:
            if self.constant == constant:
                return False
            self.state = _OVERDEFINED
            self.constant = None
            return True
        self.state = _CONSTANT
        self.constant = constant
        return True

    def mark_overdefined(self) -> bool:
        """Lower to overdefined; returns ``True`` if the cell changed."""
        if self.state == _OVERDEFINED:
            return False
        self.state = _OVERDEFINED
        self.constant = None
        return True


class _SCCPSolver:
    def __init__(self, function: Function):
        self.function = function
        self.cells: Dict[int, _Lattice] = {}
        self.executable_edges: Set[Tuple[int, int]] = set()
        self.executable_blocks: Set[int] = set()
        self.block_worklist: List[BasicBlock] = []
        self.value_worklist: List[Instruction] = []
        # Static def→users map (the pass does not mutate the IR while solving).
        self.users: Dict[int, List[Instruction]] = {}
        for inst in function.instructions():
            for operand in inst.operands:
                self.users.setdefault(id(operand), []).append(inst)

    # -- lattice helpers -----------------------------------------------------
    def cell(self, value: Value) -> _Lattice:
        if id(value) not in self.cells:
            self.cells[id(value)] = _Lattice()
        return self.cells[id(value)]

    def value_state(self, value: Value) -> Tuple[str, Optional[ConstantInt]]:
        if isinstance(value, ConstantInt):
            return _CONSTANT, value
        if isinstance(value, UndefValue):
            return _UNDEFINED, None
        if isinstance(value, Constant):
            return _OVERDEFINED, None
        if isinstance(value, Argument):
            return _OVERDEFINED, None
        if isinstance(value, Instruction):
            cell = self.cell(value)
            return cell.state, cell.constant
        return _OVERDEFINED, None

    def _lowered(self, inst: Instruction, changed: bool) -> None:
        if changed:
            self.value_worklist.append(inst)

    # -- solver ---------------------------------------------------------------
    def solve(self) -> None:
        entry = self.function.entry
        self._mark_block_executable(entry)
        while self.block_worklist or self.value_worklist:
            while self.value_worklist:
                inst = self.value_worklist.pop()
                self._propagate_users(inst)
            while self.block_worklist:
                block = self.block_worklist.pop()
                for inst in block.instructions:
                    self.visit(inst)

    def _mark_block_executable(self, block: BasicBlock) -> None:
        if id(block) in self.executable_blocks:
            return
        self.executable_blocks.add(id(block))
        self.block_worklist.append(block)

    def _mark_edge_executable(self, source: BasicBlock, target: BasicBlock) -> None:
        edge = (id(source), id(target))
        if edge in self.executable_edges:
            return
        self.executable_edges.add(edge)
        if id(target) in self.executable_blocks:
            # Re-visit the φ-nodes: a new incoming edge may lower them.
            for phi in target.phis():
                self.visit(phi)
        else:
            self._mark_block_executable(target)

    def _propagate_users(self, value: Instruction) -> None:
        for inst in self.users.get(id(value), ()):
            if inst.parent is not None and id(inst.parent) in self.executable_blocks:
                self.visit(inst)

    # -- transfer functions ------------------------------------------------------
    def visit(self, inst: Instruction) -> None:
        if isinstance(inst, Phi):
            self._visit_phi(inst)
        elif isinstance(inst, Branch):
            self._visit_branch(inst)
        elif isinstance(inst, (BinaryOperator, ICmp, Cast, Select)):
            self._visit_foldable(inst)
        elif isinstance(inst, (Load, Call)):
            self._lowered(inst, self.cell(inst).mark_overdefined())
        elif isinstance(inst, (Store, Ret)):
            pass
        elif inst.has_result():
            self._lowered(inst, self.cell(inst).mark_overdefined())

    def _visit_phi(self, phi: Phi) -> None:
        cell = self.cell(phi)
        if cell.state == _OVERDEFINED:
            return
        merged_state = _UNDEFINED
        merged_const: Optional[ConstantInt] = None
        for value, pred in phi.incoming:
            if (id(pred), id(phi.parent)) not in self.executable_edges:
                continue
            state, constant = self.value_state(value)
            if state == _UNDEFINED:
                continue
            if state == _OVERDEFINED:
                self._lowered(phi, cell.mark_overdefined())
                return
            if merged_state == _UNDEFINED:
                merged_state, merged_const = _CONSTANT, constant
            elif merged_const != constant:
                self._lowered(phi, cell.mark_overdefined())
                return
        if merged_state == _CONSTANT and merged_const is not None:
            self._lowered(phi, cell.mark_constant(merged_const))

    def _visit_branch(self, branch: Branch) -> None:
        block = branch.parent
        if not branch.is_conditional:
            self._mark_edge_executable(block, branch.targets[0])
            return
        state, constant = self.value_state(branch.condition)
        if state == _CONSTANT and constant is not None:
            target = branch.targets[0] if constant.value != 0 else branch.targets[1]
            self._mark_edge_executable(block, target)
        elif state == _OVERDEFINED:
            self._mark_edge_executable(block, branch.targets[0])
            self._mark_edge_executable(block, branch.targets[1])
        # undefined: neither edge is executable yet.

    def _visit_foldable(self, inst: Instruction) -> None:
        cell = self.cell(inst)
        if cell.state == _OVERDEFINED:
            return
        states = [self.value_state(op) for op in inst.operands]
        if any(state == _OVERDEFINED for state, _ in states):
            # A select with a known constant condition only depends on one arm.
            if isinstance(inst, Select):
                cond_state, cond_const = states[0]
                if cond_state == _CONSTANT and cond_const is not None:
                    arm_state, arm_const = states[1] if cond_const.value != 0 else states[2]
                    if arm_state == _CONSTANT and arm_const is not None:
                        self._lowered(inst, cell.mark_constant(arm_const))
                        return
            self._lowered(inst, cell.mark_overdefined())
            return
        if any(state == _UNDEFINED for state, _ in states):
            return
        constants = [constant for _, constant in states]
        folded = self._fold(inst, constants)
        if folded is None:
            self._lowered(inst, cell.mark_overdefined())
        else:
            self._lowered(inst, cell.mark_constant(folded))

    @staticmethod
    def _fold(inst: Instruction, constants: List[ConstantInt]) -> Optional[ConstantInt]:
        if isinstance(inst, BinaryOperator):
            return fold_binary_constants(inst.opcode, constants[0], constants[1])
        if isinstance(inst, ICmp):
            return fold_icmp_constants(inst.predicate, constants[0], constants[1])
        if isinstance(inst, Cast):
            value = constants[0]
            if isinstance(inst.type, IntType) and isinstance(value.type, IntType):
                folded = fold_cast(inst.opcode, value.value, value.type.bits, inst.type.bits)
                if folded is not None:
                    return ConstantInt(inst.type, folded)
            return None
        if isinstance(inst, Select):
            condition, if_true, if_false = constants
            return if_true if condition.value != 0 else if_false
        return None


@register_pass("sccp")
def sccp(function: Function) -> bool:
    """Run SCCP on ``function``.  Returns ``True`` if changed."""
    if function.is_declaration:
        return False
    solver = _SCCPSolver(function)
    solver.solve()

    changed = False
    # Replace constant instructions.
    for block in function.blocks:
        for inst in list(block.instructions):
            if not inst.has_result() or inst.has_side_effects():
                continue
            cell = solver.cells.get(id(inst))
            if cell is not None and cell.state == _CONSTANT and cell.constant is not None:
                function.replace_all_uses(inst, cell.constant)
                block.remove(inst)
                changed = True

    # Rewrite branches whose condition is now a constant, and branches whose
    # only executable successor was decided by the solver.
    for block in function.blocks:
        terminator = block.terminator
        if not isinstance(terminator, Branch) or not terminator.is_conditional:
            continue
        condition = terminator.condition
        target: Optional[BasicBlock] = None
        if isinstance(condition, ConstantInt):
            target = terminator.targets[0] if condition.value != 0 else terminator.targets[1]
        if target is not None:
            dead_target = (
                terminator.targets[1] if target is terminator.targets[0] else terminator.targets[0]
            )
            block.remove(terminator)
            block.append(Branch(target))
            if dead_target is not target:
                for phi in dead_target.phis():
                    phi.remove_incoming(block)
            changed = True

    if remove_unreachable_blocks(function):
        changed = True
    return changed


__all__ = ["sccp"]
