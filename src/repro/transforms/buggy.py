"""Intentionally miscompiling passes (fault injection).

Translation validation is only interesting if it can actually catch
miscompilations.  These passes inject realistic, silent bugs — the kind a
broken optimizer would introduce — so the test-suite and the examples can
demonstrate that the validator rejects them (no false *negatives* on these
seeded bugs), while correct passes are mostly accepted.

Every injector is deterministic: it mutates the first opportunity it finds
and reports whether it changed anything.
"""

from __future__ import annotations

from ..analysis.alias import AliasAnalysis
from ..ir.instructions import BinaryOperator, Branch, ICmp, Load, Store
from ..ir.module import Function
from ..ir.values import ConstantInt
from .pass_manager import register_pass


@register_pass("bug-flip-operator")
def flip_operator(function: Function) -> bool:
    """Turn the first ``add`` into a ``sub`` (a classic strength-reduction typo)."""
    for inst in function.instructions():
        if isinstance(inst, BinaryOperator) and inst.opcode == "add" and inst.lhs is not inst.rhs:
            inst.opcode = "sub"
            return True
    return False


@register_pass("bug-off-by-one")
def off_by_one(function: Function) -> bool:
    """Add 1 to the first integer constant operand of a binary operator."""
    for inst in function.instructions():
        if isinstance(inst, BinaryOperator):
            for index, operand in enumerate(inst.operands):
                if isinstance(operand, ConstantInt):
                    inst.operands[index] = ConstantInt(operand.type, operand.value + 1)
                    return True
    return False


@register_pass("bug-swap-branch")
def swap_branch_targets(function: Function) -> bool:
    """Swap the targets of the first conditional branch (inverted condition bug)."""
    for inst in function.instructions():
        if isinstance(inst, Branch) and inst.is_conditional:
            if inst.targets[0] is not inst.targets[1]:
                inst.operands[1], inst.operands[2] = inst.operands[2], inst.operands[1]
                return True
    return False


@register_pass("bug-drop-store")
def drop_store(function: Function) -> bool:
    """Delete the first store whose value is later (possibly) loaded.

    Mimics an over-aggressive dead-store elimination that ignores aliasing.
    """
    alias = AliasAnalysis()
    loads = [inst for inst in function.instructions() if isinstance(inst, Load)]
    for inst in function.instructions():
        if isinstance(inst, Store):
            if any(not alias.no_alias(inst.pointer, load.pointer) for load in loads):
                inst.parent.remove(inst)
                return True
    return False


@register_pass("bug-bad-load-forwarding")
def bad_load_forwarding(function: Function) -> bool:
    """Forward a store's value to a later load even across a clobbering store.

    Mimics a GVN that forgot to check aliasing when forwarding loads.
    """
    for block in function.blocks:
        stores = [inst for inst in block.instructions if isinstance(inst, Store)]
        loads = [inst for inst in block.instructions if isinstance(inst, Load)]
        if len(stores) >= 2 and loads:
            first_store = stores[0]
            for load in loads:
                if (
                    block.instructions.index(load) > block.instructions.index(first_store)
                    and load.type == first_store.value.type
                ):
                    function.replace_all_uses(load, first_store.value)
                    block.remove(load)
                    return True
    return False


@register_pass("bug-weaken-compare")
def weaken_compare(function: Function) -> bool:
    """Replace the first ``slt`` comparison with ``sle`` (boundary bug)."""
    for inst in function.instructions():
        if isinstance(inst, ICmp) and inst.predicate == "slt":
            inst.predicate = "sle"
            return True
    return False


#: Names of all fault-injection passes, for tests and examples.
ALL_BUGGY_PASSES = (
    "bug-flip-operator",
    "bug-off-by-one",
    "bug-swap-branch",
    "bug-drop-store",
    "bug-bad-load-forwarding",
    "bug-weaken-compare",
)

__all__ = [
    "flip_operator",
    "off_by_one",
    "swap_branch_targets",
    "drop_store",
    "bad_load_forwarding",
    "weaken_compare",
    "ALL_BUGGY_PASSES",
]
