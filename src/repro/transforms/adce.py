"""Aggressive dead-code elimination.

Instructions are presumed dead until proven live.  The live roots are the
observable operations — stores, calls that may have side effects, and
terminators — plus everything they transitively depend on.  This subsumes
plain dead-code and dead-instruction elimination, which is why the paper's
pipeline only includes ADCE.

The implementation keeps branches live (it does not rewrite control flow),
matching the behaviour the validator has to cope with: ADCE removes value
computations, not control structure; structural cleanups are done by
``simplifycfg`` and the loop passes.
"""

from __future__ import annotations

from typing import List, Set

from ..ir.instructions import Instruction
from ..ir.module import Function
from .pass_manager import register_pass


@register_pass("adce")
def adce(function: Function) -> bool:
    """Run aggressive DCE on ``function``.  Returns ``True`` if changed."""
    live: Set[int] = set()
    worklist: List[Instruction] = []

    for inst in function.instructions():
        if inst.has_side_effects() or inst.is_terminator():
            live.add(id(inst))
            worklist.append(inst)

    while worklist:
        inst = worklist.pop()
        for operand in inst.operands:
            if isinstance(operand, Instruction) and id(operand) not in live:
                live.add(id(operand))
                worklist.append(operand)

    changed = False
    for block in function.blocks:
        for inst in list(block.instructions):
            if id(inst) not in live:
                block.remove(inst)
                changed = True
    return changed


__all__ = ["adce"]
