"""Loop unswitching.

If a loop contains a conditional branch whose condition is loop-invariant,
the test can be moved in front of the loop and the loop duplicated: one
copy in which the branch always goes to the true target and one in which
it always goes to the false target.  The transformation trades code size
for removing a per-iteration test, and it substantially restructures the
CFG — which is exactly why it is one of the harder optimizations for the
validator (the gating conditions of every φ inside the loop change).

The implementation is restricted to loops that:

* have a preheader and at least one in-loop conditional branch on an
  invariant, non-constant condition with both targets inside the loop;
* define no value used outside the loop (accumulation through memory is
  fine; this is what the benchmark generator produces for unswitchable
  loops).

Exit-block φ-nodes are patched with entries for the duplicated exiting
blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.loops import Loop, LoopInfo
from ..ir.cloning import clone_instruction
from ..ir.instructions import Branch, Instruction, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import ConstantInt, Value
from .pass_manager import register_pass


def _defined_in_loop(value: Value, loop: Loop) -> bool:
    return isinstance(value, Instruction) and value.parent is not None and loop.contains(value.parent)


def _values_escape(function: Function, loop: Loop) -> bool:
    inside = {id(inst) for block in loop.blocks for inst in block.instructions}
    for block in function.blocks:
        if loop.contains(block):
            continue
        for inst in block.instructions:
            for operand in inst.operands:
                if id(operand) in inside:
                    return True
    return False


def _find_unswitchable_branch(loop: Loop) -> Optional[Tuple[BasicBlock, Branch]]:
    for block in loop.blocks:
        terminator = block.terminator
        if not isinstance(terminator, Branch) or not terminator.is_conditional:
            continue
        condition = terminator.condition
        if isinstance(condition, ConstantInt):
            continue
        if _defined_in_loop(condition, loop):
            continue
        true_target, false_target = terminator.targets
        if loop.contains(true_target) and loop.contains(false_target) and true_target is not false_target:
            return block, terminator
    return None


def _clone_loop(function: Function, loop: Loop, suffix: str) -> Dict[Value, Value]:
    """Clone every block of the loop; returns the old→new value map."""
    value_map: Dict[Value, Value] = {}
    for block in loop.blocks:
        new_block = function.add_block(f"{block.name}.{suffix}")
        value_map[block] = new_block
    for block in loop.blocks:
        new_block = value_map[block]
        for inst in block.instructions:
            new_inst = clone_instruction(inst, value_map)
            value_map[inst] = new_inst
            new_block.append(new_inst)
    # Fix forward references (operands cloned before their definitions).
    for block in loop.blocks:
        new_block = value_map[block]
        for old_inst, new_inst in zip(block.instructions, new_block.instructions):
            for index, operand in enumerate(old_inst.operands):
                new_inst.operands[index] = value_map.get(operand, operand)
    return value_map


def _fold_branch(block: BasicBlock, branch: Branch, taken: BasicBlock, not_taken: BasicBlock) -> None:
    """Replace a conditional branch by an unconditional one to ``taken``."""
    block.remove(branch)
    block.append(Branch(taken))
    if not_taken is not taken:
        for phi in not_taken.phis():
            phi.remove_incoming(block)


def _unswitch_loop(function: Function, loop: Loop) -> bool:
    preheader = loop.preheader()
    if preheader is None:
        return False
    # The preheader must end in an unconditional branch to the header: the
    # transformation replaces that branch with the invariant test.  (LLVM
    # guarantees this via loop-simplify; we simply skip other shapes, which
    # also prevents unswitching the same loop twice.)
    preheader_terminator = preheader.terminator
    if not isinstance(preheader_terminator, Branch) or preheader_terminator.is_conditional:
        return False
    if _values_escape(function, loop):
        return False
    found = _find_unswitchable_branch(loop)
    if found is None:
        return False
    branch_block, branch = found
    condition = branch.condition
    true_target, false_target = branch.targets

    exit_edges = loop.exit_edges()
    value_map = _clone_loop(function, loop, "us")

    # Patch exit-block φ-nodes: each exiting edge now has a twin.
    for inside, outside in exit_edges:
        cloned_inside = value_map[inside]
        for phi in outside.phis():
            incoming = phi.incoming_for(inside)
            if incoming is not None:
                phi.add_incoming(value_map.get(incoming, incoming), cloned_inside)

    # The preheader now tests the invariant condition and picks a version.
    cloned_header = value_map[loop.header]
    preheader.remove(preheader_terminator)
    preheader.append(Branch(condition, loop.header, cloned_header))

    # Header φ-nodes of the cloned loop must take their init value from the
    # preheader (the clone's blocks are not predecessors of each other's
    # originals, so incoming entries from outside the loop keep pointing at
    # the preheader — already correct because the preheader was not cloned).

    # Fold the invariant branch in each version.
    _fold_branch(branch_block, branch, true_target, false_target)
    cloned_branch_block = value_map[branch_block]
    cloned_branch = cloned_branch_block.terminator
    if isinstance(cloned_branch, Branch) and cloned_branch.is_conditional:
        cloned_true, cloned_false = cloned_branch.targets
        _fold_branch(cloned_branch_block, cloned_branch, cloned_false, cloned_true)
    return True


@register_pass("loop-unswitch")
def loop_unswitch(function: Function) -> bool:
    """Run (restricted) loop unswitching.  Returns ``True`` if changed."""
    if function.is_declaration:
        return False
    changed = False
    # One unswitch per outer iteration; recompute loop info afterwards.
    for _ in range(4):
        loop_info = LoopInfo.compute(function)
        done = False
        for loop in sorted(loop_info.loops, key=lambda l: l.depth):
            if _unswitch_loop(function, loop):
                changed = True
                done = True
                break
        if not done:
            break
    return changed


__all__ = ["loop_unswitch"]
