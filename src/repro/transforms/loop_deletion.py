"""Loop deletion.

Removes loops whose execution cannot be observed: no stores or
side-effecting calls inside, and every value the rest of the function
reads from the loop is actually loop-invariant (a header φ that never
changes).  Control flow is rewired so the preheader branches directly to
the loop's (unique) exit block and the invariant values are replaced by
their initial (pre-loop) values.

As in the paper (§2), non-termination is not part of the preservation
guarantee, so termination of the deleted loop is not proven; a validated
deletion means "if the original terminates without a runtime error, the
result is unchanged", which is exactly the validator's contract.  On the
validator side, the η/μ rules (7)–(9) are what make deleted loops check
out.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.cfg import remove_unreachable_blocks
from ..analysis.loops import Loop, LoopInfo
from ..ir.instructions import Branch, Instruction, Phi
from ..ir.module import BasicBlock, Function
from ..ir.values import Value
from .pass_manager import register_pass


def _has_observable_effects(loop: Loop) -> bool:
    for block in loop.blocks:
        for inst in block.instructions:
            if inst.is_terminator():
                continue
            if inst.has_side_effects():
                return True
    return False


def _invariant_header_phi_value(loop: Loop, value: Value) -> Optional[Value]:
    """If ``value`` is a header φ that never changes, return its initial value.

    A header φ is invariant when every incoming value from inside the loop
    is either the φ itself (``μ(x, self)``) or the same object as the
    initial value (``μ(x, x)``) — the two shapes the paper's rules (8) and
    (9) recognise.
    """
    if not isinstance(value, Phi) or value.parent is not loop.header:
        return None
    init: Optional[Value] = None
    body_values: List[Value] = []
    for incoming, pred in value.incoming:
        if loop.contains(pred):
            body_values.append(incoming)
        else:
            if init is not None and incoming is not init:
                return None
            init = incoming
    if init is None:
        return None
    for body_value in body_values:
        if body_value is not value and body_value is not init:
            return None
    return init


def _escaping_values(function: Function, loop: Loop) -> Dict[int, Value]:
    """Values defined inside the loop that are used outside it."""
    inside = {id(inst): inst for block in loop.blocks for inst in block.instructions}
    escaping: Dict[int, Value] = {}
    for block in function.blocks:
        if loop.contains(block):
            continue
        for inst in block.instructions:
            for operand in inst.operands:
                if id(operand) in inside:
                    escaping[id(operand)] = operand
    return escaping


def _unique_exit(loop: Loop) -> Optional[BasicBlock]:
    exits = loop.exit_blocks()
    if len(exits) == 1:
        return exits[0]
    return None


def _try_delete(function: Function, loop: Loop) -> bool:
    preheader = loop.preheader()
    exit_block = _unique_exit(loop)
    if preheader is None or exit_block is None or loop.contains(exit_block):
        return False
    if _has_observable_effects(loop):
        return False

    # Every escaping value must be an invariant header φ.
    replacements: Dict[int, Value] = {}
    for value in _escaping_values(function, loop).values():
        init = _invariant_header_phi_value(loop, value)
        if init is None:
            return False
        replacements[id(value)] = init

    # Substitute the invariant values outside the loop (including exit φs).
    for block in function.blocks:
        if loop.contains(block):
            continue
        for inst in block.instructions:
            for index, operand in enumerate(inst.operands):
                if id(operand) in replacements:
                    inst.operands[index] = replacements[id(operand)]

    # Exit-block φ-nodes: collapse loop-side entries into one preheader entry.
    for phi in exit_block.phis():
        incoming_from_loop = [value for value, pred in phi.incoming if loop.contains(pred)]
        if incoming_from_loop:
            first = incoming_from_loop[0]
            if any(v is not first for v in incoming_from_loop):
                # Entries disagree after substitution; give up (should not
                # happen for the loops this pass accepts, but stay safe).
                return False
        for pred in [b for _, b in phi.incoming if loop.contains(b)]:
            phi.remove_incoming(pred)
        if incoming_from_loop:
            phi.add_incoming(incoming_from_loop[0], preheader)

    terminator = preheader.terminator
    if isinstance(terminator, Branch):
        terminator.replace_target(loop.header, exit_block)
    remove_unreachable_blocks(function)
    return True


@register_pass("loop-deletion")
def loop_deletion(function: Function) -> bool:
    """Run loop deletion.  Returns ``True`` if changed."""
    if function.is_declaration:
        return False
    changed = False
    # Recompute loop info after each deletion; deleting one loop may expose
    # or invalidate others.
    for _ in range(16):
        loop_info = LoopInfo.compute(function)
        deleted = False
        for loop in sorted(loop_info.loops, key=lambda l: -l.depth):
            if _try_delete(function, loop):
                changed = True
                deleted = True
                break
        if not deleted:
            break
    return changed


__all__ = ["loop_deletion"]
