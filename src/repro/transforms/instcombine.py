"""Instruction combining: constant folding and algebraic canonicalization.

This pass mirrors the slice of LLVM's ``instcombine``/``constprop`` whose
effects the validator's optimization-specific rewrite rules are designed
to mirror (§4 of the paper):

* constant folding of integer arithmetic, comparisons and casts;
* algebraic identities (``x+0``, ``x*1``, ``x&x``, ``x^x``...);
* canonicalization LLVM performs to give instructions "a more regular
  structure": constants to the right of commutative operators,
  ``icmp <const>, x`` swapped to put the constant on the right,
  ``add x, -k`` rewritten to ``sub x, k``;
* the shift preferences ``x+x → shl x, 1`` and ``mul x, 2^k → shl x, k``;
* trivially dead instruction removal.

The pass runs to a local fixpoint (bounded by a small iteration limit).
"""

from __future__ import annotations

from typing import Optional

from ..ir.instructions import (
    BinaryOperator,
    Cast,
    ICmp,
    Instruction,
    Phi,
    Select,
    SWAPPED_PREDICATE,
)
from ..ir.module import Function
from ..ir.types import IntType
from ..ir.values import ConstantInt, Value
from ..analysis.usedef import UseDefInfo
from .constfold import (
    fold_binary_constants,
    fold_cast,
    fold_icmp_constants,
    is_power_of_two,
    log2_exact,
)
from .pass_manager import register_pass

_MAX_ITERATIONS = 8


def _const(type_, value: int) -> ConstantInt:
    return ConstantInt(type_, value)


def _simplify_binary(inst: BinaryOperator) -> Optional[Value]:
    """Return a replacement value for ``inst``, or ``None``."""
    lhs, rhs = inst.lhs, inst.rhs
    opcode = inst.opcode
    lhs_const = isinstance(lhs, ConstantInt)
    rhs_const = isinstance(rhs, ConstantInt)

    if lhs_const and rhs_const:
        folded = fold_binary_constants(opcode, lhs, rhs)
        if folded is not None:
            return folded

    if not isinstance(inst.type, IntType):
        return None

    # Identity / absorbing elements.
    if rhs_const:
        if rhs.value == 0 and opcode in ("add", "sub", "or", "xor", "shl", "lshr", "ashr"):
            return lhs
        if rhs.value == 0 and opcode in ("mul", "and"):
            return _const(inst.type, 0)
        if rhs.value == 1 and opcode in ("mul", "sdiv", "udiv"):
            return lhs
    if lhs_const:
        if lhs.value == 0 and opcode == "add":
            return rhs
        if lhs.value == 0 and opcode in ("mul", "and", "sdiv", "udiv", "shl", "lshr", "ashr"):
            return _const(inst.type, 0)
        if lhs.value == 1 and opcode == "mul":
            return rhs

    if lhs is rhs:
        if opcode in ("sub", "xor"):
            return _const(inst.type, 0)
        if opcode in ("and", "or"):
            return lhs
    return None


def _canonicalize_binary(inst: BinaryOperator) -> bool:
    """Rewrite ``inst`` in place to LLVM's preferred shape.  Returns changed."""
    changed = False
    # Constants go to the right of commutative operators.
    if inst.is_commutative() and isinstance(inst.lhs, ConstantInt) and not isinstance(inst.rhs, ConstantInt):
        inst.operands[0], inst.operands[1] = inst.operands[1], inst.operands[0]
        changed = True
    lhs, rhs = inst.lhs, inst.rhs
    if not isinstance(inst.type, IntType):
        return changed
    # add x, x -> shl x, 1
    if inst.opcode == "add" and lhs is rhs:
        inst.opcode = "shl"
        inst.operands[1] = _const(inst.type, 1)
        return True
    # mul x, 2^k -> shl x, k
    if inst.opcode == "mul" and isinstance(rhs, ConstantInt) and is_power_of_two(rhs.value):
        inst.opcode = "shl"
        inst.operands[1] = _const(inst.type, log2_exact(rhs.value))
        return True
    # add x, -k -> sub x, k
    if inst.opcode == "add" and isinstance(rhs, ConstantInt) and rhs.value < 0:
        inst.opcode = "sub"
        inst.operands[1] = _const(inst.type, -rhs.value)
        return True
    # sub x, -k -> add x, k
    if inst.opcode == "sub" and isinstance(rhs, ConstantInt) and rhs.value < 0:
        inst.opcode = "add"
        inst.operands[1] = _const(inst.type, -rhs.value)
        return True
    return changed


def _simplify_icmp(inst: ICmp) -> Optional[Value]:
    lhs, rhs = inst.lhs, inst.rhs
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        folded = fold_icmp_constants(inst.predicate, lhs, rhs)
        if folded is not None:
            return folded
    if lhs is rhs:
        always_true = inst.predicate in ("eq", "sle", "sge", "ule", "uge")
        return _const(IntType(1), 1 if always_true else 0)
    return None


def _canonicalize_icmp(inst: ICmp) -> bool:
    """Put the constant on the right (``icmp sgt 10, a`` → ``icmp slt a, 10``)."""
    if isinstance(inst.lhs, ConstantInt) and not isinstance(inst.rhs, ConstantInt):
        inst.operands[0], inst.operands[1] = inst.operands[1], inst.operands[0]
        inst.predicate = SWAPPED_PREDICATE[inst.predicate]
        return True
    return False


def _simplify_select(inst: Select) -> Optional[Value]:
    condition = inst.condition
    if isinstance(condition, ConstantInt):
        return inst.if_true if condition.value != 0 else inst.if_false
    if inst.if_true is inst.if_false:
        return inst.if_true
    return None


def _simplify_cast(inst: Cast) -> Optional[Value]:
    value = inst.value
    if isinstance(value, ConstantInt) and isinstance(inst.type, IntType) and isinstance(value.type, IntType):
        folded = fold_cast(inst.opcode, value.value, value.type.bits, inst.type.bits)
        if folded is not None:
            return ConstantInt(inst.type, folded)
    if inst.opcode == "bitcast" and value.type == inst.type:
        return value
    return None


def _simplify_phi(inst: Phi) -> Optional[Value]:
    values = [v for v, _ in inst.incoming]
    if values and all(v is values[0] for v in values):
        return values[0]
    return None


def simplify_instruction(inst: Instruction) -> Optional[Value]:
    """Return a value that can replace ``inst``, or ``None``.

    Exposed so SCCP and tests can reuse the same simplification logic.
    """
    if isinstance(inst, BinaryOperator):
        return _simplify_binary(inst)
    if isinstance(inst, ICmp):
        return _simplify_icmp(inst)
    if isinstance(inst, Select):
        return _simplify_select(inst)
    if isinstance(inst, Cast):
        return _simplify_cast(inst)
    if isinstance(inst, Phi):
        return _simplify_phi(inst)
    return None


def remove_trivially_dead(function: Function) -> int:
    """Remove register-producing instructions with no users and no side effects."""
    removed = 0
    while True:
        usedef = UseDefInfo(function)
        dead = [
            inst
            for inst in function.instructions()
            if inst.has_result() and not inst.has_side_effects() and usedef.use_count(inst) == 0
        ]
        if not dead:
            return removed
        for inst in dead:
            inst.parent.remove(inst)
            removed += 1


@register_pass("instcombine")
def instcombine(function: Function) -> bool:
    """Run instruction combining on ``function``.  Returns ``True`` if changed."""
    changed_any = False
    for _ in range(_MAX_ITERATIONS):
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if inst.parent is None:
                    continue
                replacement = simplify_instruction(inst)
                if replacement is not None and replacement is not inst:
                    function.replace_all_uses(inst, replacement)
                    block.remove(inst)
                    changed = True
                    continue
                if isinstance(inst, BinaryOperator) and _canonicalize_binary(inst):
                    changed = True
                elif isinstance(inst, ICmp) and _canonicalize_icmp(inst):
                    changed = True
        if remove_trivially_dead(function):
            changed = True
        changed_any = changed_any or changed
        if not changed:
            break
    return changed_any


@register_pass("constprop")
def constant_propagation(function: Function) -> bool:
    """Plain constant propagation/folding (no canonicalization).

    Included because the paper mentions it is subsumed by SCCP; having it
    as a separate pass lets tests and ablations demonstrate exactly that.
    """
    changed_any = False
    for _ in range(_MAX_ITERATIONS):
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, (BinaryOperator, ICmp, Cast)):
                    replacement = None
                    if all(isinstance(op, ConstantInt) for op in inst.operands):
                        replacement = simplify_instruction(inst)
                    if isinstance(replacement, ConstantInt):
                        function.replace_all_uses(inst, replacement)
                        block.remove(inst)
                        changed = True
        changed_any = changed_any or changed
        if not changed:
            break
    return changed_any


__all__ = ["instcombine", "constant_propagation", "simplify_instruction", "remove_trivially_dead"]
