"""mem2reg: promote stack allocations to SSA registers.

The paper's experimental setup runs ``clang`` and then LLVM's ``mem2reg``
to place φ-nodes before optimizing; our corpora are produced the same way
(the generator emits local variables as ``alloca``/``load``/``store`` and
this pass promotes them).  The algorithm is the classical one:

1. find *promotable* allocas — those used only as the pointer operand of
   loads and stores;
2. place φ-nodes at the iterated dominance frontier of the stores;
3. rename along a depth-first walk of the dominator tree, replacing loads
   with the reaching definition and deleting the memory traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.cfg import predecessor_map
from ..analysis.dominators import DominatorTree
from ..ir.instructions import Alloca, Load, Phi, Store
from ..ir.module import BasicBlock, Function
from ..ir.values import UndefValue, Value
from .pass_manager import register_pass


def _is_promotable(function: Function, alloca: Alloca) -> bool:
    """An alloca is promotable if it is only ever loaded from / stored to."""
    if alloca.count is not None:
        return False
    if not alloca.allocated_type.is_first_class():
        return False
    for inst in function.instructions():
        for operand in inst.operands:
            if operand is not alloca:
                continue
            if isinstance(inst, Load) and inst.pointer is alloca:
                continue
            if isinstance(inst, Store) and inst.pointer is alloca and inst.value is not alloca:
                continue
            return False
    return True


@register_pass("mem2reg")
def mem2reg(function: Function) -> bool:
    """Promote promotable allocas in ``function``.  Returns ``True`` if changed."""
    allocas = [
        inst
        for inst in function.instructions()
        if isinstance(inst, Alloca) and _is_promotable(function, inst)
    ]
    if not allocas:
        return False

    dom = DominatorTree.compute(function)
    frontier = dom.dominance_frontier()
    preds = predecessor_map(function)
    reachable = {id(b) for b in dom.reachable_blocks()}

    phis_for_alloca: Dict[int, Dict[int, Phi]] = {}
    for alloca in allocas:
        # Blocks containing a store to this alloca.
        defining_blocks = {
            id(inst.parent): inst.parent
            for inst in function.instructions()
            if isinstance(inst, Store) and inst.pointer is alloca
        }
        # Iterated dominance frontier.
        placed: Dict[int, Phi] = {}
        worklist: List[BasicBlock] = list(defining_blocks.values())
        seen: Set[int] = set(defining_blocks)
        while worklist:
            block = worklist.pop()
            if id(block) not in reachable:
                continue
            for frontier_block in frontier.get(block, ()):
                if id(frontier_block) in placed:
                    continue
                phi = Phi(alloca.allocated_type, name=f"{alloca.name}.phi" if alloca.name else "")
                frontier_block.insert(0, phi)
                placed[id(frontier_block)] = phi
                if id(frontier_block) not in seen:
                    seen.add(id(frontier_block))
                    worklist.append(frontier_block)
        phis_for_alloca[id(alloca)] = placed

    undef_cache: Dict[int, Value] = {}

    def initial_value(alloca: Alloca) -> Value:
        if id(alloca) not in undef_cache:
            undef_cache[id(alloca)] = UndefValue(alloca.allocated_type)
        return undef_cache[id(alloca)]

    # Rename along the dominator tree.
    alloca_ids = {id(a) for a in allocas}
    entry_state = {id(a): initial_value(a) for a in allocas}
    stack = [(function.entry, entry_state)]
    visited: Set[int] = set()
    while stack:
        block, incoming_state = stack.pop()
        if id(block) in visited:
            continue
        visited.add(id(block))
        state = dict(incoming_state)

        for inst in list(block.instructions):
            if isinstance(inst, Phi):
                # φ placed for one of our allocas becomes the new reaching value.
                for alloca in allocas:
                    if phis_for_alloca[id(alloca)].get(id(block)) is inst:
                        state[id(alloca)] = inst
                continue
            if isinstance(inst, Load) and id(inst.pointer) in alloca_ids:
                function.replace_all_uses(inst, state[id(inst.pointer)])
                block.remove(inst)
            elif isinstance(inst, Store) and id(inst.pointer) in alloca_ids:
                state[id(inst.pointer)] = inst.value
                block.remove(inst)

        # Fill φ operands of successors.
        for successor in block.successors():
            for alloca in allocas:
                phi = phis_for_alloca[id(alloca)].get(id(successor))
                if phi is not None:
                    phi.add_incoming(state[id(alloca)], block)

        for child in dom.children(block):
            stack.append((child, state))

    # Remove the allocas themselves.
    for alloca in allocas:
        if alloca.parent is not None:
            alloca.parent.remove(alloca)

    # φ-nodes placed in blocks with predecessors we never visited (unreachable
    # preds) may be missing entries; fill them with undef for well-formedness.
    for alloca in allocas:
        for block_id, phi in phis_for_alloca[id(alloca)].items():
            block = next(b for b in function.blocks if id(b) == block_id)
            have = {id(p) for _, p in phi.incoming}
            for pred in preds[block]:
                if id(pred) not in have:
                    phi.add_incoming(initial_value(alloca), pred)

    _prune_dead_phis(function)
    return True


def _prune_dead_phis(function: Function) -> None:
    """Remove φ-nodes that no non-φ instruction (transitively) uses.

    The placement phase inserts φ-nodes at the full iterated dominance
    frontier, many of which end up unused; LLVM prunes these too.  Liveness
    is seeded from non-φ users and propagated through φ operands, so
    φ-only cycles that nothing reads are removed as well.
    """
    live: Set[int] = set()
    worklist: List[Phi] = []
    for inst in function.instructions():
        if isinstance(inst, Phi):
            continue
        for operand in inst.operands:
            if isinstance(operand, Phi) and id(operand) not in live:
                live.add(id(operand))
                worklist.append(operand)
    while worklist:
        phi = worklist.pop()
        for operand in phi.operands:
            if isinstance(operand, Phi) and id(operand) not in live:
                live.add(id(operand))
                worklist.append(operand)
    for block in function.blocks:
        for phi in list(block.phis()):
            if id(phi) not in live:
                block.remove(phi)


__all__ = ["mem2reg"]
