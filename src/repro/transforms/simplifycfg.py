"""CFG simplification.

A conservative subset of LLVM's ``simplifycfg`` used as a cleanup pass by
tests, by the generator (to tidy its raw output) and optionally at the end
of pipelines:

* fold conditional branches whose condition is a literal constant;
* fold conditional branches whose two targets are identical;
* delete unreachable blocks (fixing φ-nodes in the survivors);
* merge a block into its unique predecessor when that predecessor has a
  single successor (straight-line concatenation);
* drop φ-nodes with a single incoming value.
"""

from __future__ import annotations

from ..analysis.cfg import predecessor_map, remove_unreachable_blocks
from ..ir.instructions import Branch, Phi
from ..ir.module import Function
from ..ir.values import ConstantInt
from .pass_manager import register_pass


def _fold_constant_branches(function: Function) -> bool:
    changed = False
    for block in function.blocks:
        terminator = block.terminator
        if not isinstance(terminator, Branch) or not terminator.is_conditional:
            continue
        true_target, false_target = terminator.targets
        target = None
        if isinstance(terminator.condition, ConstantInt):
            target = true_target if terminator.condition.value != 0 else false_target
        elif true_target is false_target:
            target = true_target
        if target is None:
            continue
        dead = false_target if target is true_target else true_target
        block.remove(terminator)
        block.append(Branch(target))
        if dead is not target:
            for phi in dead.phis():
                phi.remove_incoming(block)
        changed = True
    return changed


def _merge_straight_line(function: Function) -> bool:
    changed = False
    while True:
        preds = predecessor_map(function)
        merged = False
        for block in list(function.blocks):
            if block is function.entry:
                continue
            block_preds = preds.get(block, [])
            if len(block_preds) != 1:
                continue
            pred = block_preds[0]
            if pred is block or len(pred.successors()) != 1:
                continue
            # Fold the φ-nodes (they have exactly one incoming value).
            for phi in list(block.phis()):
                value = phi.incoming[0][0] if phi.incoming else None
                if value is not None:
                    function.replace_all_uses(phi, value)
                block.remove(phi)
            # Splice the block's instructions after the predecessor's body.
            pred.remove(pred.terminator)
            for inst in list(block.instructions):
                block.remove(inst)
                pred.append(inst)
            # Successor φ-nodes must now name the predecessor.
            for successor in pred.successors():
                for phi in successor.phis():
                    for value, incoming_block in list(phi.incoming):
                        if incoming_block is block:
                            phi.remove_incoming(incoming_block)
                            phi.add_incoming(value, pred)
            function.remove_block(block)
            merged = True
            changed = True
            break
        if not merged:
            return changed


def _simplify_single_entry_phis(function: Function) -> bool:
    changed = False
    for block in function.blocks:
        for phi in list(block.phis()):
            incoming = phi.incoming
            if len(incoming) == 1:
                function.replace_all_uses(phi, incoming[0][0])
                block.remove(phi)
                changed = True
            elif incoming and all(v is incoming[0][0] for v, _ in incoming):
                function.replace_all_uses(phi, incoming[0][0])
                block.remove(phi)
                changed = True
    return changed


@register_pass("simplifycfg")
def simplifycfg(function: Function) -> bool:
    """Run CFG simplification.  Returns ``True`` if changed."""
    changed = False
    for _ in range(8):
        round_changed = False
        round_changed |= _fold_constant_branches(function)
        round_changed |= remove_unreachable_blocks(function) > 0
        round_changed |= _merge_straight_line(function)
        round_changed |= _simplify_single_entry_phis(function)
        changed = changed or round_changed
        if not round_changed:
            break
    return changed


__all__ = ["simplifycfg"]
