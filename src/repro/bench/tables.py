"""Plain-text rendering of experiment results (tables and bar charts).

The paper presents its evaluation as one table and five figures; this
module renders the corresponding data as ASCII tables and horizontal bar
charts so the benchmark harness can print something directly comparable
next to the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[List[str]] = None,
                 title: str = "") -> str:
    """Render a list of row dicts as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    columns = columns or list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_bar_chart(values: Dict[str, float], title: str = "", width: int = 40,
                     maximum: Optional[float] = None, suffix: str = "%") -> str:
    """Render a mapping label → value as a horizontal ASCII bar chart."""
    if not values:
        return f"{title}\n(no data)" if title else "(no data)"
    maximum = maximum if maximum is not None else max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        filled = 0 if maximum == 0 else int(round(width * min(value, maximum) / maximum))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{label.ljust(label_width)} |{bar}| {value:6.1f}{suffix}")
    return "\n".join(lines)


def format_grouped_bars(groups: Dict[str, Dict[str, float]], title: str = "",
                        suffix: str = "%") -> str:
    """Render nested mappings (group → label → value) as grouped bar charts."""
    parts = []
    if title:
        parts.append(title)
    for group, values in groups.items():
        parts.append(format_bar_chart(values, title=f"[{group}]", suffix=suffix))
        parts.append("")
    return "\n".join(parts).rstrip()


__all__ = ["format_table", "format_bar_chart", "format_grouped_bars"]
