"""Benchmark harness: synthetic corpora and experiment runners for every table/figure."""

from .corpus import (
    BENCHMARKS_BY_NAME,
    BenchmarkSpec,
    PAPER_BENCHMARKS,
    build_all_corpora,
    build_corpus,
    small_test_corpus,
)
from .experiments import (
    ALL_BENCHMARKS,
    cache_persistence,
    chain_comparison,
    engine_comparison,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    matching_ablation,
    sharded_comparison,
    stepwise_comparison,
    table1,
    validation_timing,
)
from .generator import GeneratorConfig, ModuleShape, ProgramGenerator, generate_module
from .tables import format_bar_chart, format_grouped_bars, format_table

__all__ = [
    "BenchmarkSpec",
    "PAPER_BENCHMARKS",
    "BENCHMARKS_BY_NAME",
    "build_corpus",
    "build_all_corpora",
    "small_test_corpus",
    "GeneratorConfig",
    "ModuleShape",
    "ProgramGenerator",
    "generate_module",
    "table1",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "validation_timing",
    "engine_comparison",
    "stepwise_comparison",
    "sharded_comparison",
    "chain_comparison",
    "cache_persistence",
    "matching_ablation",
    "ALL_BENCHMARKS",
    "format_table",
    "format_bar_chart",
    "format_grouped_bars",
]
