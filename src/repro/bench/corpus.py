"""Benchmark corpus definitions.

One corpus per benchmark of the paper's Table 1 (the pure-C SPEC CPU2006
programs plus SQLite).  Each corpus is a synthetic module produced by
:mod:`repro.bench.generator` with a per-benchmark *personality* — the mix
of loops, branches, memory traffic and calls that characterises the real
program — and a function count scaled down (~100×) from the paper's so
the whole evaluation runs in seconds rather than hours.

The corpus builder prepares inputs exactly the way the paper does (§5.1):
generate the clang-O0-style module, then run ``mem2reg`` to place φ-nodes.
The result is the "unoptimized input" handed to the optimizer and the
validator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..ir.module import Module
from ..transforms.mem2reg import mem2reg
from .generator import GeneratorConfig, ModuleShape, ProgramGenerator


@dataclass(frozen=True)
class BenchmarkSpec:
    """Description of one benchmark corpus."""

    #: Benchmark name (matches the paper's Table 1).
    name: str
    #: Number of functions at scale 1.0.
    functions: int
    #: Random seed (fixed per benchmark for reproducibility).
    seed: int
    #: Generator personality.
    config: GeneratorConfig
    #: Number of module-level globals.
    globals_count: int = 3
    #: The paper's reported function count (for Table 1 side-by-side).
    paper_functions: int = 0
    #: The paper's reported lines of LLVM assembly (e.g. "136K").
    paper_loc: str = ""
    #: The paper's reported bitcode size (e.g. "5.6M").
    paper_size: str = ""


def _personality(
    loops: float, branches: float, memory: float, calls: float,
    statements: Tuple[int, int], reuse: float = 0.35, constants: float = 0.2,
    readonly_calls: float = 0.15, unswitch: float = 0.25, dead_loops: float = 0.15,
) -> GeneratorConfig:
    return GeneratorConfig(
        statements=statements,
        loop_probability=loops,
        branch_probability=branches,
        memory_probability=memory,
        call_probability=calls,
        reuse_probability=reuse,
        constant_probability=constants,
        readonly_call_probability=readonly_calls,
        unswitch_probability=unswitch,
        dead_loop_probability=dead_loops,
    )


#: The twelve benchmarks of the paper's Table 1, with personalities chosen
#: to echo the source programs: ``gcc``/``perlbench`` are large and branchy,
#: ``sqlite`` is memory- and call-heavy (hand-tuned, few constant-folding
#: opportunities — §5.3), ``lbm``/``milc``/``hmmer`` are loop- and
#: arithmetic-heavy numeric kernels, ``mcf`` is small and pointer-chasing.
PAPER_BENCHMARKS: Tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        "sqlite", functions=28, seed=1001,
        config=_personality(0.14, 0.30, 0.32, 0.10, (8, 16), reuse=0.30,
                            constants=0.08, readonly_calls=0.03, unswitch=0.06, dead_loops=0.10),
        paper_functions=1363, paper_loc="136K", paper_size="5.6M",
    ),
    BenchmarkSpec(
        "bzip2", functions=12, seed=1002,
        config=_personality(0.22, 0.24, 0.22, 0.05, (6, 12), constants=0.30, readonly_calls=0.06, unswitch=0.10),
        paper_functions=104, paper_loc="23K", paper_size="904K",
    ),
    BenchmarkSpec(
        "gcc", functions=40, seed=1003,
        config=_personality(0.16, 0.34, 0.22, 0.10, (10, 20), reuse=0.40, constants=0.22,
                            readonly_calls=0.22, unswitch=0.30),
        paper_functions=5745, paper_loc="1.48M", paper_size="63M",
    ),
    BenchmarkSpec(
        "h264ref", functions=22, seed=1004,
        config=_personality(0.24, 0.24, 0.26, 0.06, (8, 16), reuse=0.45, readonly_calls=0.08, unswitch=0.12),
        paper_functions=610, paper_loc="190K", paper_size="7.3M",
    ),
    BenchmarkSpec(
        "hmmer", functions=20, seed=1005,
        config=_personality(0.26, 0.22, 0.24, 0.05, (7, 14), reuse=0.40, constants=0.25, readonly_calls=0.08, unswitch=0.12),
        paper_functions=644, paper_loc="90K", paper_size="3.3M",
    ),
    BenchmarkSpec(
        "lbm", functions=6, seed=1006,
        config=_personality(0.30, 0.16, 0.26, 0.03, (6, 12), constants=0.30, dead_loops=0.2, readonly_calls=0.05, unswitch=0.10),
        paper_functions=19, paper_loc="5K", paper_size="161K",
    ),
    BenchmarkSpec(
        "libquantum", functions=10, seed=1007,
        config=_personality(0.24, 0.20, 0.20, 0.06, (5, 10), constants=0.28, readonly_calls=0.06, unswitch=0.10),
        paper_functions=115, paper_loc="9K", paper_size="337K",
    ),
    BenchmarkSpec(
        "mcf", functions=8, seed=1008,
        config=_personality(0.20, 0.24, 0.32, 0.04, (5, 10), readonly_calls=0.06, unswitch=0.10),
        paper_functions=24, paper_loc="3K", paper_size="149K",
    ),
    BenchmarkSpec(
        "milc", functions=18, seed=1009,
        config=_personality(0.28, 0.18, 0.24, 0.04, (7, 14), constants=0.26, readonly_calls=0.06, unswitch=0.10),
        paper_functions=237, paper_loc="32K", paper_size="1.2M",
    ),
    BenchmarkSpec(
        "perlbench", functions=32, seed=1010,
        config=_personality(0.16, 0.34, 0.24, 0.12, (9, 18), reuse=0.38, readonly_calls=0.28, unswitch=0.28),
        paper_functions=1998, paper_loc="399K", paper_size="15M",
    ),
    BenchmarkSpec(
        "sjeng", functions=14, seed=1011,
        config=_personality(0.20, 0.30, 0.20, 0.06, (7, 14), constants=0.24, readonly_calls=0.10, unswitch=0.14),
        paper_functions=166, paper_loc="39K", paper_size="1.5M",
    ),
    BenchmarkSpec(
        "sphinx", functions=16, seed=1012,
        config=_personality(0.24, 0.24, 0.24, 0.06, (7, 14), reuse=0.36, readonly_calls=0.10, unswitch=0.14),
        paper_functions=391, paper_loc="44K", paper_size="1.7M",
    ),
)

#: Name → spec lookup.
BENCHMARKS_BY_NAME: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in PAPER_BENCHMARKS}


def build_corpus(spec: BenchmarkSpec, scale: float = 1.0, run_mem2reg: bool = True) -> Module:
    """Build the corpus module for one benchmark.

    ``scale`` shrinks (or grows) the function count — the experiment
    runners and pytest benchmarks use small scales to keep wall-clock time
    down.  ``run_mem2reg`` applies the φ-placement pass, matching the
    paper's input preparation; switch it off to inspect the raw clang-O0
    style output.
    """
    function_count = max(1, round(spec.functions * scale))
    shape = ModuleShape(
        functions=function_count,
        globals_count=spec.globals_count,
        seed=spec.seed,
        function_config=spec.config,
    )
    module = ProgramGenerator(shape).generate_module(spec.name)
    if run_mem2reg:
        for function in module.defined_functions():
            mem2reg(function)
    return module


def build_all_corpora(scale: float = 1.0,
                      names: Optional[List[str]] = None) -> Dict[str, Module]:
    """Build every benchmark corpus (or the named subset)."""
    selected = PAPER_BENCHMARKS if names is None else [BENCHMARKS_BY_NAME[n] for n in names]
    return {spec.name: build_corpus(spec, scale) for spec in selected}


def small_test_corpus(functions: int = 4, seed: int = 7) -> Module:
    """A tiny corpus used by unit/integration tests (fast to validate)."""
    spec = replace(
        PAPER_BENCHMARKS[0], name="mini", functions=functions, seed=seed,
        config=replace(PAPER_BENCHMARKS[0].config, statements=(4, 8)),
    )
    return build_corpus(spec)


__all__ = [
    "BenchmarkSpec",
    "PAPER_BENCHMARKS",
    "BENCHMARKS_BY_NAME",
    "build_corpus",
    "build_all_corpora",
    "small_test_corpus",
]
