"""Synthetic C-like program generator.

The paper evaluates on SPEC CPU2006 and SQLite.  Those sources (and a C
front end) are not available here, so the benchmark corpora are produced
by this deterministic, seeded generator instead.  What matters for the
evaluation is not what the programs compute but *which IR constructs they
contain* — joins with φ-nodes, loops, loop-invariant expressions, memory
traffic through distinct allocations, redundant sub-expressions, constant
branches, library-style calls — because those are what the optimizer
transforms and what the validator must reason about.  The generator
therefore emits functions in the style of ``clang -O0`` output (mutable
locals as ``alloca``/``load``/``store``, straight-line blocks, explicit
branches) and the corpus builder then runs ``mem2reg`` to place φ-nodes,
exactly mirroring the paper's preparation of its inputs (§5.1).

Every random choice is driven by a :class:`random.Random` seeded from the
benchmark spec, so corpora are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir.builder import IRBuilder, create_function, declare_function
from ..ir.instructions import Alloca
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import I1, I32, IntType, PointerType
from ..ir.values import ConstantInt, GlobalVariable, Value

_BINOPS = ("add", "sub", "mul", "and", "or", "xor", "shl", "ashr")
_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")


@dataclass
class GeneratorConfig:
    """Knobs controlling the shape of generated functions.

    The per-benchmark "personalities" in :mod:`repro.bench.corpus` are just
    different settings of these knobs (loop-heavy for ``lbm``/``milc``,
    branchy for ``gcc``/``perlbench``, memory-heavy for ``sqlite``/``mcf``,
    and so on).
    """

    #: Number of statements in a function body (inclusive range).
    statements: Sequence[int] = (6, 14)
    #: Number of integer parameters (inclusive range).
    parameters: Sequence[int] = (2, 4)
    #: Number of mutable local variables.
    locals_count: Sequence[int] = (3, 6)
    #: Probability a statement is an ``if``/``else``.
    branch_probability: float = 0.25
    #: Probability a statement is a ``while`` loop.
    loop_probability: float = 0.18
    #: Probability a statement touches array memory (GEP load/store).
    memory_probability: float = 0.20
    #: Probability a statement is a call to an external function.
    call_probability: float = 0.08
    #: Probability a generated expression deliberately repeats an earlier one
    #: (common-sub-expression fodder for GVN).
    reuse_probability: float = 0.35
    #: Probability an expression is built purely from constants
    #: (constant-folding / SCCP fodder).
    constant_probability: float = 0.20
    #: Probability a loop contains a loop-invariant computation (LICM fodder).
    invariant_probability: float = 0.6
    #: Probability a loop contains a branch on a loop-invariant condition
    #: (loop-unswitching fodder).
    unswitch_probability: float = 0.25
    #: Probability a loop body calls a read-only external function
    #: (the ``strlen`` pattern that causes the paper's LICM false alarms).
    readonly_call_probability: float = 0.15
    #: Probability a loop is pure and its results unused (loop-deletion fodder).
    dead_loop_probability: float = 0.15
    #: Probability of an immediately-overwritten store (DSE fodder).
    dead_store_probability: float = 0.20
    #: Maximum loop trip count (keeps differential interpretation fast).
    max_trip_count: int = 12
    #: Maximum expression depth.
    expression_depth: int = 3
    #: Maximum statement nesting depth (ifs/loops inside ifs/loops).
    max_nesting: int = 2


@dataclass
class ModuleShape:
    """Module-level generation parameters."""

    #: Number of functions to generate.
    functions: int = 10
    #: Number of global variables shared by the functions.
    globals_count: int = 3
    #: Random seed.
    seed: int = 0
    #: Per-function configuration.
    function_config: GeneratorConfig = field(default_factory=GeneratorConfig)


class _FunctionState:
    """Mutable state while generating one function."""

    def __init__(self, function: Function, builder: IRBuilder):
        self.function = function
        self.builder = builder
        self.locals: Dict[str, Alloca] = {}
        self.arrays: Dict[str, Alloca] = {}
        self.block_counter = 0

    def new_block(self, hint: str) -> BasicBlock:
        self.block_counter += 1
        return self.function.add_block(f"{hint}{self.block_counter}")


class ProgramGenerator:
    """Generates whole modules of synthetic functions."""

    def __init__(self, shape: ModuleShape):
        self.shape = shape
        self.rng = random.Random(shape.seed)
        self.config = shape.function_config

    # -- module level -------------------------------------------------------
    def generate_module(self, name: str = "synthetic") -> Module:
        """Generate a module with globals, external declarations and functions."""
        module = Module(name)
        self._declare_externals(module)
        for index in range(self.shape.globals_count):
            module.add_global(
                GlobalVariable(f"g{index}", I32, ConstantInt(I32, self.rng.randint(-8, 64)))
            )
        for index in range(self.shape.functions):
            self.generate_function(module, f"fn{index:04d}")
        return module

    def _declare_externals(self, module: Module) -> None:
        declare_function(module, "ext_pure", I32, [I32], attributes=["readnone"])
        declare_function(module, "ext_length", I32, [I32], attributes=["readonly"])
        declare_function(module, "ext_effect", I32, [I32])

    # -- function level --------------------------------------------------------
    def generate_function(self, module: Module, name: str) -> Function:
        """Generate one function in clang-O0 style (allocas for locals)."""
        rng = self.rng
        config = self.config
        param_count = rng.randint(*config.parameters)
        function = create_function(
            module, name, I32, [I32] * param_count, [f"p{i}" for i in range(param_count)]
        )
        builder = IRBuilder(function.entry)
        state = _FunctionState(function, builder)

        # Mutable locals, initialised from parameters/constants.  A local
        # only becomes visible to expression generation after it has been
        # initialised, so no generated program ever reads an undef value.
        for index in range(rng.randint(*config.locals_count)):
            slot = builder.alloca(I32, name=f"v{index}")
            builder.store(self._leaf_value(state, module), slot)
            state.locals[f"v{index}"] = slot

        # Occasionally a small array (stays in memory after mem2reg).
        if rng.random() < 0.7:
            array = builder.alloca(I32, builder.const(8), name="arr")
            state.arrays["arr"] = array
            builder.store(self._leaf_value(state, module), array)

        statement_count = rng.randint(*config.statements)
        for _ in range(statement_count):
            self._statement(state, module, depth=0)

        result = self._expression(state, module, config.expression_depth)
        state.builder.ret(result)
        return function

    # -- values -----------------------------------------------------------------
    def _leaf_value(self, state: _FunctionState, module: Module) -> Value:
        rng = self.rng
        choices = ["const", "param", "local"]
        if module.globals:
            choices.append("global")
        kind = rng.choice(choices)
        if kind == "const":
            return state.builder.const(rng.randint(-16, 64))
        if kind == "param" and state.function.args:
            return rng.choice(state.function.args)
        if kind == "local" and state.locals:
            slot = rng.choice(list(state.locals.values()))
            return state.builder.load(slot)
        if kind == "global" and module.globals:
            global_var = rng.choice(list(module.globals.values()))
            return state.builder.load(global_var)
        return state.builder.const(rng.randint(0, 32))

    def _expression(self, state: _FunctionState, module: Module, depth: int,
                    constants_only: bool = False) -> Value:
        rng = self.rng
        if constants_only:
            if depth <= 0 or rng.random() < 0.4:
                return state.builder.const(rng.randint(-8, 32))
            lhs = self._expression(state, module, depth - 1, constants_only=True)
            rhs = self._expression(state, module, depth - 1, constants_only=True)
            return state.builder.binop(rng.choice(("add", "sub", "mul", "and")), lhs, rhs)
        if depth <= 0 or rng.random() < 0.35:
            return self._leaf_value(state, module)
        opcode = rng.choice(_BINOPS)
        lhs = self._expression(state, module, depth - 1)
        rhs = self._expression(state, module, depth - 1)
        if opcode in ("shl", "ashr"):
            rhs = state.builder.const(rng.randint(0, 4))
        value = state.builder.binop(opcode, lhs, rhs)
        if rng.random() < self.config.reuse_probability:
            # Recompute the same expression textually: classic CSE/GVN fodder.
            duplicate = state.builder.binop(opcode, lhs, rhs)
            value = state.builder.binop("add", value, duplicate)
        return value

    def _condition(self, state: _FunctionState, module: Module,
                   constants_only: bool = False) -> Value:
        rng = self.rng
        predicate = rng.choice(_PREDICATES)
        if constants_only:
            lhs = state.builder.const(rng.randint(0, 8))
            rhs = state.builder.const(rng.randint(0, 8))
        else:
            lhs = self._expression(state, module, 1)
            rhs = (
                state.builder.const(rng.randint(0, 32))
                if rng.random() < 0.6
                else self._expression(state, module, 1)
            )
        return state.builder.icmp(predicate, lhs, rhs)

    # -- statements ---------------------------------------------------------------
    def _statement(self, state: _FunctionState, module: Module, depth: int) -> None:
        rng = self.rng
        config = self.config
        roll = rng.random()
        if depth < config.max_nesting and roll < config.loop_probability:
            self._while_loop(state, module, depth)
        elif depth < config.max_nesting and roll < config.loop_probability + config.branch_probability:
            self._if_statement(state, module, depth)
        elif roll < config.loop_probability + config.branch_probability + config.memory_probability:
            self._memory_statement(state, module)
        elif roll < (config.loop_probability + config.branch_probability
                     + config.memory_probability + config.call_probability):
            self._call_statement(state, module)
        else:
            self._assignment(state, module)

    def _assignment(self, state: _FunctionState, module: Module) -> None:
        rng = self.rng
        config = self.config
        if not state.locals:
            return
        target = rng.choice(list(state.locals.values()))
        constants_only = rng.random() < config.constant_probability
        value = self._expression(state, module, config.expression_depth, constants_only)
        if rng.random() < config.dead_store_probability:
            # Store a value that is immediately overwritten (DSE fodder).
            state.builder.store(self._expression(state, module, 1), target)
        state.builder.store(value, target)

    def _memory_statement(self, state: _FunctionState, module: Module) -> None:
        rng = self.rng
        builder = state.builder
        if not state.arrays:
            self._assignment(state, module)
            return
        array = rng.choice(list(state.arrays.values()))
        index = builder.const(rng.randint(0, 7))
        address = builder.gep(I32, array, [index])
        if rng.random() < 0.5:
            builder.store(self._expression(state, module, 2), address)
        else:
            loaded = builder.load(address)
            if state.locals:
                builder.store(loaded, rng.choice(list(state.locals.values())))

    def _call_statement(self, state: _FunctionState, module: Module) -> None:
        rng = self.rng
        builder = state.builder
        callee_name = rng.choice(["ext_pure", "ext_length", "ext_effect"])
        callee = module.get_function(callee_name)
        result = builder.call(callee, [self._expression(state, module, 1)])
        if state.locals and rng.random() < 0.7:
            builder.store(result, rng.choice(list(state.locals.values())))

    def _if_statement(self, state: _FunctionState, module: Module, depth: int) -> None:
        rng = self.rng
        config = self.config
        builder = state.builder
        constants_only = rng.random() < config.constant_probability
        condition = self._condition(state, module, constants_only)

        then_block = state.new_block("then")
        else_block = state.new_block("else")
        join_block = state.new_block("join")
        builder.cbr(condition, then_block, else_block)

        builder.position_at_end(then_block)
        for _ in range(rng.randint(1, 3)):
            self._statement(state, module, depth + 1)
        # Sometimes both arms assign the same constant (GVN/SCCP example from §4).
        same_constant: Optional[int] = None
        if state.locals and rng.random() < 0.4:
            same_constant = rng.randint(0, 8)
            shared_target = rng.choice(list(state.locals.values()))
            builder.store(builder.const(same_constant), shared_target)
        builder.br(join_block)

        builder.position_at_end(else_block)
        for _ in range(rng.randint(1, 3)):
            self._statement(state, module, depth + 1)
        if same_constant is not None:
            builder.store(builder.const(same_constant), shared_target)
        builder.br(join_block)

        builder.position_at_end(join_block)

    def _while_loop(self, state: _FunctionState, module: Module, depth: int) -> None:
        rng = self.rng
        config = self.config
        builder = state.builder

        trip_count = rng.randint(2, config.max_trip_count)
        counter = builder.alloca(I32, name=f"i{state.block_counter}")
        builder.store(builder.const(0), counter)
        bound = builder.const(trip_count)

        dead_loop = rng.random() < config.dead_loop_probability
        accumulator: Optional[Alloca] = None
        if not dead_loop and state.locals:
            accumulator = rng.choice(list(state.locals.values()))

        header = state.new_block("loop")
        body = state.new_block("body")
        exit_block = state.new_block("after")
        builder.br(header)

        builder.position_at_end(header)
        current = builder.load(counter)
        condition = builder.icmp("slt", current, bound)
        builder.cbr(condition, body, exit_block)

        builder.position_at_end(body)
        # Loop-invariant computation (LICM fodder).
        if rng.random() < config.invariant_probability:
            invariant = builder.binop(
                rng.choice(("add", "mul", "xor")),
                rng.choice(state.function.args) if state.function.args else builder.const(3),
                builder.const(rng.randint(1, 9)),
            )
            if accumulator is not None:
                old = builder.load(accumulator)
                builder.store(builder.add(old, invariant), accumulator)
        # Read-only call in the loop: the strlen pattern (LICM false alarms).
        if rng.random() < config.readonly_call_probability:
            length = builder.call(
                module.get_function("ext_length"),
                [rng.choice(state.function.args) if state.function.args else builder.const(1)],
            )
            if accumulator is not None:
                old = builder.load(accumulator)
                builder.store(builder.add(old, length), accumulator)
        # Branch on a loop-invariant condition (unswitching fodder).
        if rng.random() < config.unswitch_probability and accumulator is not None:
            invariant_condition = builder.icmp(
                "sgt",
                rng.choice(state.function.args) if state.function.args else builder.const(0),
                builder.const(rng.randint(0, 16)),
            )
            then_block = state.new_block("uswt")
            else_block = state.new_block("uswf")
            merge_block = state.new_block("uswj")
            builder.cbr(invariant_condition, then_block, else_block)
            builder.position_at_end(then_block)
            old = builder.load(accumulator)
            builder.store(builder.add(old, builder.const(rng.randint(1, 5))), accumulator)
            builder.br(merge_block)
            builder.position_at_end(else_block)
            old = builder.load(accumulator)
            builder.store(builder.sub(old, builder.const(rng.randint(1, 5))), accumulator)
            builder.br(merge_block)
            builder.position_at_end(merge_block)
        # Ordinary loop work.
        if not dead_loop:
            for _ in range(rng.randint(1, 2)):
                self._statement(state, module, depth + 1)
        else:
            # A loop whose computations are never observed (loop-deletion fodder).
            scratch = builder.binop("mul", current, builder.const(3))
            builder.binop("add", scratch, builder.const(1))

        # Increment and continue.
        latest = builder.load(counter)
        builder.store(builder.add(latest, builder.const(1)), counter)
        builder.br(header)

        builder.position_at_end(exit_block)


def generate_module(functions: int = 10, seed: int = 0,
                    config: Optional[GeneratorConfig] = None,
                    globals_count: int = 3, name: str = "synthetic") -> Module:
    """Convenience wrapper: generate a module with the given shape."""
    shape = ModuleShape(
        functions=functions,
        globals_count=globals_count,
        seed=seed,
        function_config=config or GeneratorConfig(),
    )
    return ProgramGenerator(shape).generate_module(name)


__all__ = ["GeneratorConfig", "ModuleShape", "ProgramGenerator", "generate_module"]
