"""Experiment runners that regenerate the paper's tables and figures.

Each function returns plain data (lists of row dicts or nested dicts) so
it can be consumed three ways: printed with :mod:`repro.bench.tables`,
asserted on in integration tests, and timed by the pytest benchmarks in
``benchmarks/``.

===========  ==================================================================
Experiment   Runner
===========  ==================================================================
Table 1      :func:`table1` — corpus size / LOC / function counts
Figure 4     :func:`figure4` — full-pipeline validation rate per benchmark
Figure 5     :func:`figure5` — per-optimization transformed/validated counts
Figure 6     :func:`figure6` — GVN rewrite-rule ablation
Figure 7     :func:`figure7` — LICM rewrite-rule ablation
Figure 8     :func:`figure8` — SCCP rewrite-rule ablation
§5.1 timing  :func:`validation_timing` — validation wall-clock per benchmark
§5.4         :func:`matching_ablation` — simple vs partition vs combined matcher
(extension)  :func:`engine_comparison` — worklist vs full-scan normalization
(extension)  :func:`stepwise_comparison` — whole vs stepwise vs bisect strategies
(extension)  :func:`sharded_comparison` — serial vs process-pool sharded records
(extension)  :func:`executor_comparison` — serial vs pool vs wave scheduling backends
(extension)  :func:`chain_comparison` — chain-shared graphs vs per-pair stepwise
(extension)  :func:`cache_persistence` — cold vs warm persistent-cache sweeps
===========  ==================================================================
"""

from __future__ import annotations

import time
from dataclasses import replace as _dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.manager import AnalysisManager
from ..ir.cloning import clone_function
from ..ir.module import Module
from ..ir.printer import print_module
from ..transforms.pass_manager import PAPER_PIPELINE, PassManager, get_pass
from ..validator.config import (
    DEFAULT_CONFIG,
    GVN_ABLATION_STEPS,
    LICM_ABLATION_STEPS,
    SCCP_ABLATION_STEPS,
    ValidatorConfig,
)
from ..validator.cache import ValidationCache
from ..validator.driver import (
    STRATEGIES,
    llvm_md,
    validate_function_pipeline,
    validate_module_batch,
)
from ..validator.validate import validate
from .corpus import PAPER_BENCHMARKS, BENCHMARKS_BY_NAME, BenchmarkSpec, build_corpus

#: Default benchmark subset = all twelve of the paper's Table 1.
ALL_BENCHMARKS: Tuple[str, ...] = tuple(spec.name for spec in PAPER_BENCHMARKS)


def _selected_specs(benchmarks: Optional[Sequence[str]]) -> List[BenchmarkSpec]:
    names = list(benchmarks) if benchmarks is not None else list(ALL_BENCHMARKS)
    return [BENCHMARKS_BY_NAME[name] for name in names]


# ---------------------------------------------------------------------------
# Table 1 — test suite information
# ---------------------------------------------------------------------------

def table1(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None
           ) -> List[Dict[str, object]]:
    """Corpus statistics: size of the assembly, lines, number of functions.

    The ``paper_*`` columns carry the numbers from the paper's Table 1 for
    a side-by-side comparison of the *shape* (gcc largest, mcf/lbm
    smallest); the synthetic corpora are roughly 100× smaller.
    """
    rows = []
    for spec in _selected_specs(benchmarks):
        module = build_corpus(spec, scale)
        text = print_module(module)
        rows.append({
            "benchmark": spec.name,
            "size_bytes": len(text.encode("utf-8")),
            "loc": text.count("\n"),
            "functions": len(module.defined_functions()),
            "instructions": module.instruction_count(),
            "paper_size": spec.paper_size,
            "paper_loc": spec.paper_loc,
            "paper_functions": spec.paper_functions,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 4 — validation of the whole pipeline
# ---------------------------------------------------------------------------

def _pipeline_reports(scale: float, benchmarks: Optional[Sequence[str]],
                      passes: Sequence[str] = PAPER_PIPELINE,
                      config: Optional[ValidatorConfig] = None):
    """Run ``llvm_md`` over each selected corpus; yields ``(spec, report)``.

    The shared substrate of :func:`figure4` and :func:`validation_timing`,
    so the two experiments cannot diverge in how they build and validate
    the corpora.
    """
    config = config or DEFAULT_CONFIG
    for spec in _selected_specs(benchmarks):
        module = build_corpus(spec, scale)
        _, report = llvm_md(module, passes, config, label=spec.name)
        yield spec, report


def figure4(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
            passes: Sequence[str] = PAPER_PIPELINE,
            config: Optional[ValidatorConfig] = None) -> List[Dict[str, object]]:
    """Per-benchmark validation rate of the full optimization pipeline.

    One row per benchmark plus a final ``overall`` row, matching Figure 4
    (the paper reports ≈80% overall, SQLite close to 90%, gcc and
    perlbench lower).
    """
    rows: List[Dict[str, object]] = []
    total_transformed = total_validated = total_functions = 0
    total_time = 0.0
    for _, report in _pipeline_reports(scale, benchmarks, passes, config):
        row = report.to_table_row()
        rows.append(row)
        total_functions += report.total_functions
        total_transformed += report.transformed_functions
        total_validated += report.validated_functions
        total_time += report.total_time
    overall_rate = 100.0 * total_validated / total_transformed if total_transformed else 100.0
    rows.append({
        "benchmark": "overall",
        "functions": total_functions,
        "transformed": total_transformed,
        "validated": total_validated,
        "rate": round(overall_rate, 1),
        "time_s": round(total_time, 2),
    })
    return rows


# ---------------------------------------------------------------------------
# Figure 5 — individual optimizations
# ---------------------------------------------------------------------------

def _single_pass_pipeline(pass_name: str) -> Tuple[str, ...]:
    """The pass list used when evaluating one optimization in isolation.

    Loop unswitching needs an invariant condition available outside the
    loop, which in our corpora (as in C code compiled at -O0) only happens
    after LICM has hoisted it, so its "single optimization" run is
    LICM+unswitch with the transformed flag keyed on unswitch.
    """
    if pass_name == "loop-unswitch":
        return ("licm", "loop-unswitch")
    return (pass_name,)


def figure5(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
            passes: Sequence[str] = PAPER_PIPELINE,
            config: Optional[ValidatorConfig] = None) -> Dict[str, List[Dict[str, object]]]:
    """Transformed / validated function counts for each optimization alone.

    Returns ``{pass name: [row per benchmark]}`` where each row carries the
    number of functions the optimization changed and how many of those
    validated — the two segments of each bar in the paper's Figure 5.
    """
    config = config or DEFAULT_CONFIG
    results: Dict[str, List[Dict[str, object]]] = {name: [] for name in passes}
    for spec in _selected_specs(benchmarks):
        module = build_corpus(spec, scale)
        functions = module.defined_functions()
        for pass_name in passes:
            transformed = validated = 0
            total_time = 0.0
            pipeline = _single_pass_pipeline(pass_name)
            for function in functions:
                optimized = clone_function(function)
                changed = {name: get_pass(name)(optimized) for name in pipeline}
                if not changed.get(pass_name):
                    continue
                transformed += 1
                result = validate(function, optimized, config)
                total_time += result.elapsed
                if result.is_success:
                    validated += 1
            results[pass_name].append({
                "benchmark": spec.name,
                "transformed": transformed,
                "validated": validated,
                "rate": round(100.0 * validated / transformed, 1) if transformed else 100.0,
                "time_s": round(total_time, 2),
            })
    return results


# ---------------------------------------------------------------------------
# Figures 6–8 — rewrite-rule ablations
# ---------------------------------------------------------------------------

def _rule_ablation(steps, pass_name: str, scale: float,
                   benchmarks: Optional[Sequence[str]],
                   base_config: Optional[ValidatorConfig]) -> Dict[str, Dict[str, float]]:
    """Validation rate of one optimization under increasing rule sets."""
    base_config = base_config or DEFAULT_CONFIG
    pipeline = _single_pass_pipeline(pass_name)
    results: Dict[str, Dict[str, float]] = {}
    for spec in _selected_specs(benchmarks):
        module = build_corpus(spec, scale)
        # Optimize once; validate under each rule configuration.
        pairs = []
        for function in module.defined_functions():
            optimized = clone_function(function)
            changed = {name: get_pass(name)(optimized) for name in pipeline}
            if changed.get(pass_name):
                pairs.append((function, optimized))
        for label, groups in steps:
            config = base_config.with_rules(groups)
            validated = sum(1 for before, after in pairs if validate(before, after, config).is_success)
            rate = 100.0 * validated / len(pairs) if pairs else 100.0
            results.setdefault(label, {})[spec.name] = round(rate, 1)
    return results


def figure6(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
            config: Optional[ValidatorConfig] = None) -> Dict[str, Dict[str, float]]:
    """GVN validation rate as rewrite-rule groups are added (paper Figure 6)."""
    return _rule_ablation(GVN_ABLATION_STEPS, "gvn", scale, benchmarks, config)


def figure7(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
            config: Optional[ValidatorConfig] = None) -> Dict[str, Dict[str, float]]:
    """LICM validation rate with no rules vs all rules (paper Figure 7)."""
    return _rule_ablation(LICM_ABLATION_STEPS, "licm", scale, benchmarks, config)


def figure8(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
            config: Optional[ValidatorConfig] = None) -> Dict[str, Dict[str, float]]:
    """SCCP validation rate under the paper's four rule sets (paper Figure 8)."""
    return _rule_ablation(SCCP_ABLATION_STEPS, "sccp", scale, benchmarks, config)


# ---------------------------------------------------------------------------
# §5.1 timing and §5.4 matcher ablation
# ---------------------------------------------------------------------------

def validation_timing(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
                      config: Optional[ValidatorConfig] = None) -> List[Dict[str, object]]:
    """Validation wall-clock per benchmark for the full pipeline.

    The paper reports 19m19s for GCC, 2m56s for perl and 55s for SQLite on
    2011 hardware; here only the *ordering* (gcc ≫ perlbench ≫ sqlite) is
    expected to reproduce.  Each row also carries the normalization
    engine's work counters (rule invocations, worklist pushes, dispatch
    index hits) so the perf trajectory can be tracked across PRs.
    """
    rows: List[Dict[str, object]] = []
    overall_time = 0.0
    overall_transformed = 0
    overall_engine: Dict[str, int] = {}
    for spec, report in _pipeline_reports(scale, benchmarks, config=config):
        totals = report.engine_totals()
        row: Dict[str, object] = {
            "benchmark": spec.name,
            "time_s": round(report.total_time, 2),
            "transformed": report.transformed_functions,
            "rule_invocations": totals.get("rule_invocations", 0),
            "worklist_pushes": totals.get("worklist_pushes", 0),
            "index_hits": totals.get("index_hits", 0),
        }
        rows.append(row)
        overall_time += report.total_time
        overall_transformed += report.transformed_functions
        for key in ("rule_invocations", "worklist_pushes", "index_hits"):
            overall_engine[key] = overall_engine.get(key, 0) + int(row[key])
    rows.append({
        "benchmark": "overall",
        "time_s": round(overall_time, 2),
        "transformed": overall_transformed,
        **overall_engine,
    })
    return rows


def engine_comparison(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
                      passes: Sequence[str] = PAPER_PIPELINE,
                      config: Optional[ValidatorConfig] = None) -> List[Dict[str, object]]:
    """Worklist engine vs the full-scan baseline on identical inputs.

    Optimizes each benchmark once, then validates every transformed
    function under both normalization engines.  Returns one row per
    benchmark with the verdict-parity flag and the rule-application work
    of both engines — the ISSUE's acceptance evidence that the worklist
    engine produces identical verdicts with strictly less rule work.
    """
    base = config or DEFAULT_CONFIG
    rows: List[Dict[str, object]] = []
    for spec in _selected_specs(benchmarks):
        module = build_corpus(spec, scale)
        pairs = []
        for function in module.defined_functions():
            optimized = clone_function(function)
            manager_changed = PassManager(passes).run_on_function(optimized)
            if any(manager_changed.values()):
                pairs.append((function, optimized))
        totals = {}
        verdicts_agree = True
        for engine in ("fullscan", "worklist"):
            engine_config = base.with_engine(engine)
            invocations = 0
            elapsed = 0.0
            verdicts = []
            for before, after in pairs:
                result = validate(before, after, engine_config)
                invocations += result.stats.get("rule_invocations", 0)
                elapsed += result.elapsed
                verdicts.append(result.is_success)
            totals[engine] = (invocations, elapsed, verdicts)
        fullscan_inv, fullscan_time, fullscan_verdicts = totals["fullscan"]
        worklist_inv, worklist_time, worklist_verdicts = totals["worklist"]
        verdicts_agree = fullscan_verdicts == worklist_verdicts
        rows.append({
            "benchmark": spec.name,
            "pairs": len(pairs),
            "verdicts_agree": verdicts_agree,
            "fullscan_invocations": fullscan_inv,
            "worklist_invocations": worklist_inv,
            "invocation_ratio": round(worklist_inv / fullscan_inv, 3) if fullscan_inv else 1.0,
            "fullscan_time_s": round(fullscan_time, 2),
            "worklist_time_s": round(worklist_time, 2),
        })
    return rows


def stepwise_comparison(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
                        passes: Sequence[str] = PAPER_PIPELINE,
                        config: Optional[ValidatorConfig] = None) -> List[Dict[str, object]]:
    """Whole vs stepwise vs bisect validation strategies, per benchmark.

    For every corpus, runs :func:`~repro.validator.driver.validate_function_pipeline`
    on each function under all three strategies and records:

    * per-strategy verdict counts, wall time and rule invocations;
    * ``superset_ok`` / ``superset_violations`` — stepwise must accept
      every function whole accepts (the strategy-regression guard the CI
      workflow enforces);
    * kept-prefix statistics — how much optimization work stepwise
      salvaged from functions whole validation would have rolled back;
    * the blame histogram bisect produced;
    * the :class:`~repro.analysis.manager.AnalysisManager` counters,
      showing how much per-version analysis recomputation the shared
      cache removed.

    The experiment pins ``chain_graphs=False``: it characterizes the
    *per-pair* strategy implementations (including their analysis-reuse
    pattern, which chain-shared graphs make moot by building every
    version once); :func:`chain_comparison` is the experiment that
    compares the per-pair path against the chain-shared path.
    """
    config = _dc_replace(config or DEFAULT_CONFIG, chain_graphs=False)
    rows: List[Dict[str, object]] = []
    for spec in _selected_specs(benchmarks):
        module = build_corpus(spec, scale)
        functions = module.defined_functions()
        accepted: Dict[str, set] = {}
        per_strategy: Dict[str, Dict[str, object]] = {}
        for strategy in STRATEGIES:
            manager = AnalysisManager()
            validated: set = set()
            partial = prefix_steps = invocations = 0
            elapsed = 0.0
            blame: Dict[str, int] = {}
            transformed = multi_step = 0
            for function in functions:
                _, record = validate_function_pipeline(
                    function, passes, config, strategy=strategy, manager=manager)
                if not record.transformed:
                    continue
                transformed += 1
                if record.changed_steps >= 2:
                    multi_step += 1
                invocations += int(record.result.stats.get("rule_invocations", 0))
                elapsed += record.result.elapsed
                if record.validated:
                    validated.add(record.name)
                elif record.kept_prefix:
                    partial += 1
                    prefix_steps += record.kept_prefix
                if record.blamed_pass is not None:
                    blame[record.blamed_pass] = blame.get(record.blamed_pass, 0) + 1
            accepted[strategy] = validated
            per_strategy[strategy] = {
                "validated": len(validated),
                "transformed": transformed,
                "multi_step": multi_step,
                "partial": partial,
                "prefix_steps": prefix_steps,
                "time_s": round(elapsed, 3),
                "rule_invocations": invocations,
                "analysis": manager.stats(),
                "blame": blame,
            }
        violations = sorted(accepted["whole"] - accepted["stepwise"])
        stepwise_analysis = per_strategy["stepwise"]["analysis"]
        rows.append({
            "benchmark": spec.name,
            # Which functions transform (and by how many steps) is a
            # property of the deterministic pipeline, not the strategy.
            "transformed": per_strategy["stepwise"]["transformed"],
            # Functions changed by >= 2 passes: only these guarantee
            # analysis reuse (interior checkpoints consumed twice).
            "multi_step_functions": per_strategy["stepwise"]["multi_step"],
            "whole_validated": per_strategy["whole"]["validated"],
            "stepwise_validated": per_strategy["stepwise"]["validated"],
            "bisect_validated": per_strategy["bisect"]["validated"],
            "superset_ok": not violations,
            "superset_violations": violations,
            "stepwise_partial": per_strategy["stepwise"]["partial"],
            "stepwise_prefix_steps": per_strategy["stepwise"]["prefix_steps"],
            "whole_time_s": per_strategy["whole"]["time_s"],
            "stepwise_time_s": per_strategy["stepwise"]["time_s"],
            "bisect_time_s": per_strategy["bisect"]["time_s"],
            "whole_invocations": per_strategy["whole"]["rule_invocations"],
            "stepwise_invocations": per_strategy["stepwise"]["rule_invocations"],
            "bisect_invocations": per_strategy["bisect"]["rule_invocations"],
            "analyses_computed": stepwise_analysis["analyses_computed"],
            "analyses_reused": stepwise_analysis["analyses_reused"],
            "blame": per_strategy["bisect"]["blame"],
        })
    return rows


def sharded_comparison(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
                       passes: Sequence[str] = PAPER_PIPELINE,
                       config: Optional[ValidatorConfig] = None,
                       concurrency: int = 2,
                       strategy: str = "stepwise") -> List[Dict[str, object]]:
    """Serial vs process-pool-sharded validation on identical inputs.

    For every corpus, validates the module once through the serial
    ``llvm_md`` path and once through ``validate_module_batch`` with
    ``concurrency`` workers, then compares the per-function *record
    signatures* (verdict, reason, blame, kept prefix, per-pass verdicts —
    everything deterministic; see
    :meth:`~repro.validator.report.FunctionRecord.signature`).  Sharding
    may only change *where* a query runs, never what it decides, so
    ``identical`` must be true on every row — the CI shard guard enforces
    exactly that over all twelve corpora.
    """
    base = config or DEFAULT_CONFIG
    serial_config = _dc_replace(base, concurrency=0)
    sharded_config = _dc_replace(base, concurrency=max(2, concurrency))
    rows: List[Dict[str, object]] = []
    for spec in _selected_specs(benchmarks):
        module = build_corpus(spec, scale)
        start = time.perf_counter()
        _, serial_report = llvm_md(module, passes, serial_config,
                                   label=spec.name, strategy=strategy)
        serial_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        (_, sharded_report), = validate_module_batch(
            [module], passes, sharded_config, labels=[spec.name], strategy=strategy)
        sharded_elapsed = time.perf_counter() - start
        serial_signatures = [record.signature() for record in serial_report.records]
        sharded_signatures = [record.signature() for record in sharded_report.records]
        mismatches = [serial["name"]
                      for serial, sharded in zip(serial_signatures, sharded_signatures)
                      if serial != sharded]
        if len(serial_signatures) != len(sharded_signatures):  # pragma: no cover
            mismatches.append("<record-count-mismatch>")
        shard_stats = sharded_report.shard_stats or {}
        rows.append({
            "benchmark": spec.name,
            "strategy": strategy,
            "functions": serial_report.total_functions,
            "transformed": serial_report.transformed_functions,
            "identical": not mismatches,
            "mismatches": mismatches,
            "distinct_pairs": shard_stats.get("distinct_pairs", 0),
            "pooled_pairs": shard_stats.get("pooled_pairs", 0),
            "workers": shard_stats.get("workers", 0),
            "serial_time_s": round(serial_elapsed, 3),
            "sharded_time_s": round(sharded_elapsed, 3),
        })
    return rows


def executor_comparison(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
                        passes: Sequence[str] = PAPER_PIPELINE,
                        config: Optional[ValidatorConfig] = None,
                        concurrency: int = 2,
                        strategy: str = "stepwise",
                        tcp_workers: int = 0) -> List[Dict[str, object]]:
    """Serial vs pool vs wave vs steal scheduling backends on identical inputs.

    For every corpus, validates the module through
    ``validate_module_batch`` once per backend (``config.executor`` set
    to ``"serial"``, ``"pool"``, ``"wave"`` and ``"steal"``) and
    compares the per-function *record signatures* — a backend may only
    change where and in what order queries run, never what they decide,
    so ``identical`` must be true on every row (the CI executor-parity
    guard enforces exactly that over all twelve corpora).

    Each row also carries the scheduling telemetry that makes the wave
    backend's speculation visible: ``distinct_pairs`` per backend (the
    deduplicated queries each one actually validated), the wave count,
    the function-wave slots cancelled after rejections and
    ``wave_pairs_saved`` — how many fewer queries the wave backend
    answered than the eager serial schedule.  On a high-rejection corpus
    the saving is the point of the backend; on an all-accepting corpus
    it is legitimately zero (no wave is ever cancelled).  The steal
    backend reports its own discipline: ``items_stolen`` /
    ``steal_attempts`` (how often idle workers raided a sibling's deque)
    and ``steal_pairs_skipped`` (pairs its streaming cancellation never
    ran).

    With ``tcp_workers > 0`` a fifth leg runs the steal backend over its
    TCP transport, twice per corpus: that many remote worker processes
    are spawned once (``--reconnect``, so they rejoin every per-batch
    coordinator on the same port), each corpus gets a coordinator-side
    sqlite proof store, and the corpus is validated cold then warm —
    the warm run answers every query through the served store's batched
    gets.  Both legs must match serial exactly (``tcp``/``tcp_warm``
    entries join the mismatch scan), proving the distribution layer is
    a pure refinement of the single-node schedule.
    """
    base = config or DEFAULT_CONFIG
    workers = max(2, concurrency)
    backends = {
        "serial": _dc_replace(base, executor="serial", concurrency=0),
        "pool": _dc_replace(base, executor="pool", concurrency=workers),
        "wave": _dc_replace(base, executor="wave", concurrency=workers),
        "steal": _dc_replace(base, executor="steal", concurrency=workers),
    }
    tcp_procs: List[object] = []
    tcp_listen = None
    tcp_store_root = None
    if tcp_workers > 0:
        import os
        import socket
        import tempfile
        from ..validator.scheduler.remote import spawn_workers
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        tcp_listen = f"127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        tcp_store_root = tempfile.mkdtemp(prefix="repro-tcp-parity-")
        tcp_procs = spawn_workers(tcp_listen, max(2, tcp_workers),
                                  reconnect=True, patience=900.0)
    rows: List[Dict[str, object]] = []
    try:
        for spec in _selected_specs(benchmarks):
            module = build_corpus(spec, scale)
            signatures: Dict[str, List[Dict[str, object]]] = {}
            per_backend: Dict[str, Dict[str, object]] = {}
            legs = dict(backends)
            if tcp_workers > 0:
                tcp_config = _dc_replace(
                    base, executor="steal", concurrency=max(2, tcp_workers),
                    steal_transport="tcp", steal_listen=tcp_listen,
                    cache_dir=os.path.join(tcp_store_root, spec.name),
                    cache_backend="sqlite")
                legs["tcp"] = tcp_config
                legs["tcp_warm"] = tcp_config
            for name, backend_config in legs.items():
                start = time.perf_counter()
                (_, report), = validate_module_batch(
                    [module], passes, backend_config, labels=[spec.name],
                    strategy=strategy)
                elapsed = time.perf_counter() - start
                signatures[name] = [record.signature()
                                    for record in report.records]
                shard = report.shard_stats or {}
                per_backend[name] = {
                    "distinct_pairs": shard.get("distinct_pairs", 0),
                    "waves": shard.get("waves", 0),
                    "waves_cancelled": shard.get("waves_cancelled", 0),
                    "pairs_skipped": shard.get("speculative_pairs_skipped", 0),
                    "items_stolen": shard.get("items_stolen", 0),
                    "steal_attempts": shard.get("steal_attempts", 0),
                    "workers_joined": shard.get("remote_workers_joined", 0),
                    "transformed": report.transformed_functions,
                    "time_s": round(elapsed, 3),
                }
            mismatches = []
            compared = ["pool", "wave", "steal"]
            if tcp_workers > 0:
                compared += ["tcp", "tcp_warm"]
            for name in compared:
                mismatches += [f"{signature['name']} ({name})"
                               for signature, other in zip(signatures["serial"],
                                                           signatures[name])
                               if signature != other]
                if len(signatures["serial"]) != len(signatures[name]):  # pragma: no cover
                    mismatches.append(f"<record-count-mismatch> ({name})")
            row = {
                "benchmark": spec.name,
                "strategy": strategy,
                "transformed": per_backend["serial"]["transformed"],
                "identical": not mismatches,
                "mismatches": mismatches,
                "serial_pairs": per_backend["serial"]["distinct_pairs"],
                "pool_pairs": per_backend["pool"]["distinct_pairs"],
                "wave_pairs": per_backend["wave"]["distinct_pairs"],
                "wave_pairs_saved": (per_backend["serial"]["distinct_pairs"]
                                     - per_backend["wave"]["distinct_pairs"]),
                "waves": per_backend["wave"]["waves"],
                "waves_cancelled": per_backend["wave"]["waves_cancelled"],
                "pairs_skipped": per_backend["wave"]["pairs_skipped"],
                "steal_pairs": per_backend["steal"]["distinct_pairs"],
                "items_stolen": per_backend["steal"]["items_stolen"],
                "steal_attempts": per_backend["steal"]["steal_attempts"],
                "steal_pairs_skipped": per_backend["steal"]["pairs_skipped"],
                "serial_time_s": per_backend["serial"]["time_s"],
                "pool_time_s": per_backend["pool"]["time_s"],
                "wave_time_s": per_backend["wave"]["time_s"],
                "steal_time_s": per_backend["steal"]["time_s"],
            }
            if tcp_workers > 0:
                row.update({
                    "tcp_pairs": per_backend["tcp"]["distinct_pairs"],
                    "tcp_warm_pairs": per_backend["tcp_warm"]["distinct_pairs"],
                    "tcp_workers_joined": per_backend["tcp"]["workers_joined"],
                    "tcp_time_s": per_backend["tcp"]["time_s"],
                    "tcp_warm_time_s": per_backend["tcp_warm"]["time_s"],
                })
            rows.append(row)
    finally:
        for proc in tcp_procs:
            try:
                proc.terminate()
            except Exception:
                pass
        for proc in tcp_procs:
            try:
                proc.wait(timeout=10)
            except Exception:
                pass
    return rows


def chain_comparison(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
                     passes: Sequence[str] = PAPER_PIPELINE,
                     config: Optional[ValidatorConfig] = None) -> List[Dict[str, object]]:
    """Chain-shared graphs vs the per-pair baseline on identical inputs.

    For every corpus, runs the full stepwise ``llvm_md`` sweep twice —
    once with ``chain_graphs=False`` (every adjacent checkpoint pair gets
    a fresh two-version graph) and once with ``chain_graphs=True`` (every
    checkpoint chain is hash-consed into ONE graph, normalized once) —
    and records:

    * ``identical`` / ``mismatches`` — the per-function
      :meth:`~repro.validator.report.FunctionRecord.signature` comparison:
      chain graphs are a pure execution strategy, so verdicts, blame,
      kept prefixes and per-pass verdicts must be byte-identical (the CI
      guard ``stepwise_guard.py --chain-parity`` enforces this on all
      twelve corpora);
    * the deterministic work counters of both sweeps — nodes built during
      graph construction, total nodes created, rule invocations and
      normalize runs — plus wall time;
    * the chain telemetry (chains built, versions hash-consed, the
      estimated per-pair construction baseline, fallbacks).

    No cache is involved, so the counters measure exactly the work each
    mode performs.
    """
    base = config or DEFAULT_CONFIG
    counter_keys = ("nodes_built", "nodes_created", "rule_invocations",
                    "normalize_runs")
    rows: List[Dict[str, object]] = []
    for spec in _selected_specs(benchmarks):
        per_mode: Dict[str, Dict[str, object]] = {}
        signatures: Dict[str, List[Dict[str, object]]] = {}
        for mode in ("per_pair", "chain"):
            module = build_corpus(spec, scale)
            mode_config = _dc_replace(base, chain_graphs=(mode == "chain"))
            start = time.perf_counter()
            _, report = llvm_md(module, passes, mode_config, label=spec.name,
                                strategy="stepwise")
            elapsed = time.perf_counter() - start
            totals = report.engine_totals()
            per_mode[mode] = {key: totals.get(key, 0) for key in counter_keys}
            per_mode[mode]["time_s"] = round(elapsed, 3)
            per_mode[mode]["transformed"] = report.transformed_functions
            per_mode[mode]["validated"] = report.validated_functions
            per_mode[mode]["chain"] = report.chain_totals()
            signatures[mode] = [record.signature() for record in report.records]
        mismatches = [serial["name"]
                      for serial, chained in zip(signatures["per_pair"],
                                                 signatures["chain"])
                      if serial != chained]
        if len(signatures["per_pair"]) != len(signatures["chain"]):  # pragma: no cover
            mismatches.append("<record-count-mismatch>")
        chain_totals = per_mode["chain"]["chain"]
        row: Dict[str, object] = {
            "benchmark": spec.name,
            "transformed": per_mode["chain"]["transformed"],
            "validated": per_mode["chain"]["validated"],
            "identical": not mismatches,
            "mismatches": mismatches,
            "chains": chain_totals.get("chains", 0),
            "chain_versions": chain_totals.get("chain_versions", 0),
            "chain_fallbacks": chain_totals.get("chain_fallbacks", 0),
            "chain_pair_baseline_nodes": chain_totals.get("chain_pair_baseline_nodes", 0),
            "per_pair_time_s": per_mode["per_pair"]["time_s"],
            "chain_time_s": per_mode["chain"]["time_s"],
        }
        for key in counter_keys:
            off_value = int(per_mode["per_pair"][key])
            on_value = int(per_mode["chain"][key])
            row[f"per_pair_{key}"] = off_value
            row[f"chain_{key}"] = on_value
            row[f"{key}_saved_pct"] = round(100.0 * (1.0 - on_value / off_value), 1) \
                if off_value else 0.0
        rows.append(row)
    return rows


#: The canonical "one-option suffix tweak": the paper pipeline with its
#: last two passes swapped, the revalidation workload the incremental
#: benchmarks and guards measure.
TWEAKED_PIPELINE = PAPER_PIPELINE[:-2] + (PAPER_PIPELINE[-1],
                                          PAPER_PIPELINE[-2])


def incremental_comparison(scale: float = 1.0,
                           benchmarks: Optional[Sequence[str]] = None,
                           passes: Sequence[str] = PAPER_PIPELINE,
                           tweaked: Sequence[str] = TWEAKED_PIPELINE,
                           config: Optional[ValidatorConfig] = None
                           ) -> List[Dict[str, object]]:
    """Incremental revalidation vs a cold re-run after a pipeline tweak.

    For every corpus, measures the cost of revalidating after changing
    ``passes`` into ``tweaked`` two ways on identical inputs:

    * **cold** — a fresh stepwise ``llvm_md`` sweep of the tweaked
      pipeline, no cache, no retained state: the full price every
      edit-revalidate cycle pays without incrementality;
    * **incremental** — one :class:`~repro.validator.watch.Revalidator`
      primed with a ``passes`` run, then asked to revalidate the same
      module under ``tweaked``: unchanged-prefix pairs are adopted from
      the previous plan's cache keys and only the dirty suffix is
      rebuilt into the retained chain graph.

    Each row reports both runs' deterministic work counters with
    ``{key}_saved_pct`` reductions, the reuse telemetry
    (``pairs_skipped_unchanged``, ``subgraph_nodes_reused``,
    ``chain_extensions``/``chain_fallbacks``) and the ``identical`` /
    ``mismatches`` record-signature comparison — incremental records
    must be byte-identical to cold records (``stepwise_guard.py
    --incremental-parity`` enforces this on all twelve corpora).
    """
    base = config or DEFAULT_CONFIG
    counter_keys = ("nodes_built", "nodes_created", "rule_invocations",
                    "normalize_runs")
    rows: List[Dict[str, object]] = []
    for spec in _selected_specs(benchmarks):
        cold_module = build_corpus(spec, scale)
        start = time.perf_counter()
        _, cold_report = llvm_md(cold_module, tweaked, base, label=spec.name,
                                 strategy="stepwise")
        cold_time = time.perf_counter() - start
        cold_totals = cold_report.engine_totals()
        cold_signatures = [record.signature()
                           for record in cold_report.records]

        from ..validator.watch import Revalidator
        revalidator = Revalidator(_dc_replace(base, incremental=True))
        warm_module = build_corpus(spec, scale)
        revalidator.revalidate(warm_module, passes, label=spec.name)
        start = time.perf_counter()
        _, warm_report = revalidator.revalidate(warm_module, tweaked,
                                                label=spec.name)
        warm_time = time.perf_counter() - start
        revalidator.close()
        warm_totals = warm_report.engine_totals()
        warm_signatures = [record.signature()
                           for record in warm_report.records]

        mismatches = [cold["name"]
                      for cold, warm in zip(cold_signatures, warm_signatures)
                      if cold != warm]
        if len(cold_signatures) != len(warm_signatures):  # pragma: no cover
            mismatches.append("<record-count-mismatch>")
        shard = warm_report.shard_stats or {}
        row: Dict[str, object] = {
            "benchmark": spec.name,
            "transformed": cold_report.transformed_functions,
            "validated": cold_report.validated_functions,
            "identical": not mismatches,
            "mismatches": mismatches,
            "pairs_skipped_unchanged": shard.get("pairs_skipped_unchanged", 0),
            "subgraph_nodes_reused": shard.get("subgraph_nodes_reused", 0),
            "chain_extensions": shard.get("chain_extensions", 0),
            "chain_fallbacks": shard.get("chain_fallbacks", 0),
            "functions_fully_cached": shard.get("functions_fully_cached", 0),
            "cold_time_s": round(cold_time, 3),
            "incremental_time_s": round(warm_time, 3),
        }
        for key in counter_keys:
            cold_value = int(cold_totals.get(key, 0))
            warm_value = int(warm_totals.get(key, 0))
            row[f"cold_{key}"] = cold_value
            row[f"incremental_{key}"] = warm_value
            row[f"{key}_saved_pct"] = round(
                100.0 * (1.0 - warm_value / cold_value), 1) \
                if cold_value else 0.0
        rows.append(row)
    return rows


def cache_persistence(scale: float = 1.0, benchmarks: Optional[Sequence[str]] = None,
                      passes: Sequence[str] = PAPER_PIPELINE,
                      config: Optional[ValidatorConfig] = None,
                      cache_dir: Optional[str] = None,
                      strategy: str = "stepwise",
                      runs: Sequence[str] = ("cold", "warm"),
                      cache_backend: str = "auto") -> List[Dict[str, object]]:
    """Cold vs warm corpus sweeps through one persistent validation cache.

    Each requested run sweeps *all* selected corpora through a single
    ``validate_module_batch`` call (one shared cache across modules) with
    a fresh :class:`~repro.validator.cache.ValidationCache` rooted at
    ``cache_dir``, then saves it.  ``checks`` counts the equivalence
    checks the run actually performed (deduplicated pool pairs plus
    inline assembly queries); on a warm run everything is answered from
    the disk backend, so ``checks`` collapses toward zero — the
    acceptance criterion is a ≥95% reduction, reported per row as
    ``hit_rate``.  ``cache_dir`` is required (callers pass a temp dir or
    CI's artifact directory).  ``cache_backend`` selects the proof-store
    backend (``"json"`` eagerly loads the whole file; ``"sqlite"``
    faults entries lazily, so a warm row additionally shows
    ``store_lazy_loads`` strictly below the entry count and far fewer
    ``store_bytes_read`` than the JSON file).
    """
    if cache_dir is None:
        raise ValueError("cache_persistence needs a cache_dir to persist into")
    base = config or DEFAULT_CONFIG
    run_config = _dc_replace(base, cache_dir=None)
    specs = _selected_specs(benchmarks)
    rows: List[Dict[str, object]] = []
    for run in runs:
        modules = [build_corpus(spec, scale) for spec in specs]
        cache = ValidationCache(cache_dir, backend=cache_backend)
        start = time.perf_counter()
        reports = validate_module_batch(
            modules, passes, run_config, labels=[spec.name for spec in specs],
            cache=cache, strategy=strategy)
        elapsed = time.perf_counter() - start
        shard_stats = reports[-1][1].shard_stats or {}
        checks = shard_stats.get("distinct_pairs", 0) + shard_stats.get("inline_validations", 0)
        lookups = cache.hits + cache.misses
        store_counters = cache.stats()
        rows.append({
            "run": run,
            "backend": cache.backend,
            "benchmarks": len(specs),
            "functions": sum(report.total_functions for _, report in reports),
            "transformed": sum(report.transformed_functions for _, report in reports),
            "validated": sum(report.validated_functions for _, report in reports),
            "checks": checks,
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hits / lookups, 4) if lookups else 1.0,
            "disk_loaded": cache.loaded,
            "entries": len(cache),
            "store_lazy_loads": store_counters.get("store_lazy_loads", 0),
            "store_flushes": store_counters.get("store_flushes", 0),
            "store_bytes_read": store_counters.get("store_bytes_read", 0),
            "store_bytes_written": store_counters.get("store_bytes_written", 0),
            "time_s": round(elapsed, 3),
        })
    return rows


def matching_ablation(scale: float = 0.5, benchmarks: Optional[Sequence[str]] = None,
                      passes: Sequence[str] = PAPER_PIPELINE) -> Dict[str, Dict[str, float]]:
    """Compare the cycle-matching strategies of §5.4.

    Returns ``{matcher: {benchmark: validation rate}}`` for the simple
    unification matcher, the Hopcroft-style partition matcher and the
    combined strategy (the paper found the combination marginally best).
    """
    results: Dict[str, Dict[str, float]] = {}
    for matcher in ("simple", "partition", "combined"):
        config = ValidatorConfig(matcher=matcher)
        for row in figure4(scale, benchmarks, passes=passes, config=config):
            if row["benchmark"] == "overall":
                continue
            results.setdefault(matcher, {})[str(row["benchmark"])] = float(row["rate"])
    return results


__all__ = [
    "ALL_BENCHMARKS",
    "table1",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "validation_timing",
    "engine_comparison",
    "stepwise_comparison",
    "sharded_comparison",
    "executor_comparison",
    "chain_comparison",
    "cache_persistence",
    "matching_ablation",
]
