"""repro — a reproduction of "Evaluating Value-Graph Translation Validation for LLVM".

The package implements, from scratch and in pure Python:

* an LLVM-like SSA intermediate representation (:mod:`repro.ir`),
* the standard analyses and intra-procedural optimization passes the paper
  validates (:mod:`repro.analysis`, :mod:`repro.transforms`),
* the paper's contribution — a normalizing, hash-consed value-graph
  translation validator built on monadic gated SSA (:mod:`repro.gated`,
  :mod:`repro.vgraph`, :mod:`repro.validator`),
* the benchmark harness that regenerates the paper's tables and figures
  (:mod:`repro.bench`).

Quickstart
----------
>>> from repro.ir import parse_function
>>> from repro.transforms import optimize
>>> from repro.validator import validate
>>> before = parse_function('''
... define i32 @f(i32 %a) {
... entry:
...   %x = add i32 3, 3
...   %y = mul i32 %a, %x
...   %z = add i32 %y, %y
...   ret i32 %z
... }
... ''')
>>> after = optimize(before.clone(), ["instcombine", "gvn"])
>>> validate(before, after).is_success
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
