"""Core value classes for the LLVM-like IR.

Everything that can appear as an instruction operand is a :class:`Value`:
constants, function arguments, global variables, basic blocks (as branch
targets), functions (as call targets) and instructions themselves.

The IR is SSA: every register-producing instruction defines exactly one
value, and that value is referenced by identity (Python object identity),
not by name.  Names exist purely for printing and parsing.
"""

from __future__ import annotations

from typing import List, Optional

from .types import (
    FloatType,
    IntType,
    PointerType,
    Type,
    to_signed,
    truncate_unsigned,
)


class Value:
    """Base class for everything usable as an operand.

    Attributes
    ----------
    type:
        The :class:`~repro.ir.types.Type` of the value.
    name:
        Optional textual name.  The printer invents ``%N`` names for
        anonymous values; the parser records the names it reads.
    """

    __slots__ = ("type", "name")

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    def ref(self) -> str:
        """Short printable reference used in operand position."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    """Base class for compile-time constants."""

    def is_zero(self) -> bool:
        """Return ``True`` if the constant is a literal zero."""
        return False


class ConstantInt(Constant):
    """An integer constant of a particular width.

    The stored ``value`` is always the *signed* interpretation of the bit
    pattern, which matches how LLVM prints constants (``i8 -1`` rather than
    ``i8 255``).
    """

    __slots__ = ("value",)

    def __init__(self, type_: IntType, value: int):
        if not isinstance(type_, IntType):
            raise TypeError("ConstantInt requires an integer type")
        super().__init__(type_)
        if type_.bits == 1:
            # Booleans are kept as 0/1 (the signed view of ``true`` would be
            # -1, which reads badly and complicates value-graph constants).
            self.value = value & 1
        else:
            self.value = to_signed(value, type_.bits)

    @property
    def unsigned(self) -> int:
        """The unsigned interpretation of the stored bit pattern."""
        return truncate_unsigned(self.value, self.type.bits)

    def is_zero(self) -> bool:
        return self.value == 0

    def ref(self) -> str:
        return str(self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cint", self.type, self.value))


class ConstantFloat(Constant):
    """A floating point constant."""

    __slots__ = ("value",)

    def __init__(self, type_: FloatType, value: float):
        super().__init__(type_)
        self.value = float(value)

    def is_zero(self) -> bool:
        return self.value == 0.0

    def ref(self) -> str:
        return repr(self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConstantFloat)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cfloat", self.type, self.value))


class ConstantPointerNull(Constant):
    """The ``null`` pointer constant of a given pointer type."""

    def __init__(self, type_: PointerType):
        super().__init__(type_)

    def is_zero(self) -> bool:
        return True

    def ref(self) -> str:
        return "null"

    def __eq__(self, other) -> bool:
        return isinstance(other, ConstantPointerNull) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("cnull", self.type))


class UndefValue(Constant):
    """An ``undef`` value: any bit pattern of the given type."""

    def ref(self) -> str:
        return "undef"

    def __eq__(self, other) -> bool:
        return isinstance(other, UndefValue) and other.type == self.type

    def __hash__(self) -> int:
        return hash(("undef", self.type))


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("parent", "index")

    def __init__(self, type_: Type, name: str, parent=None, index: int = 0):
        super().__init__(type_, name)
        self.parent = parent
        self.index = index


class GlobalVariable(Value):
    """A module-level global variable.

    The value itself has pointer type (as in LLVM, ``@g`` names the address
    of the global); ``value_type`` is the pointee type and ``initializer``
    an optional constant initial value.
    """

    __slots__ = ("value_type", "initializer", "is_constant")

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer: Optional[Constant] = None,
        is_constant: bool = False,
    ):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.is_constant = is_constant

    def ref(self) -> str:
        return f"@{self.name}"


def const_int(value: int, bits: int = 32) -> ConstantInt:
    """Convenience constructor: an integer constant of the given width."""
    return ConstantInt(IntType(bits), value)


def const_bool(value: bool) -> ConstantInt:
    """Convenience constructor: an ``i1`` constant."""
    return ConstantInt(IntType(1), 1 if value else 0)


def is_constant_value(value: Value) -> bool:
    """Return ``True`` for constants other than ``undef``."""
    return isinstance(value, Constant) and not isinstance(value, UndefValue)


__all__ = [
    "Value",
    "Constant",
    "ConstantInt",
    "ConstantFloat",
    "ConstantPointerNull",
    "UndefValue",
    "Argument",
    "GlobalVariable",
    "const_int",
    "const_bool",
    "is_constant_value",
]
