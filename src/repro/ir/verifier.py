"""Structural verifier for the LLVM-like IR.

The verifier checks the invariants every pass relies on:

* every block ends in exactly one terminator and has no terminator earlier;
* φ-nodes appear only at the head of a block and have exactly one incoming
  entry per CFG predecessor;
* every operand that is an instruction is defined in the same function and
  its definition dominates the use (SSA dominance property), with the usual
  exception for φ incoming values, which must dominate the end of the
  corresponding predecessor block;
* branch targets belong to the function;
* operand types are consistent for the common instruction kinds.

The checks are deliberately strict: the optimizer test-suite verifies each
pass's output, so a pass bug surfaces as a :class:`VerificationError`
rather than a mysterious validator result.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import VerificationError
from ..analysis.dominators import DominatorTree
from .instructions import (
    Alloca,
    BinaryOperator,
    Branch,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import IntType, PointerType, VoidType
from .values import Argument, Constant, GlobalVariable, Value


def verify_module(module: Module) -> None:
    """Verify every defined function in the module.

    Raises :class:`~repro.errors.VerificationError` on the first violation.
    """
    for function in module.defined_functions():
        verify_function(function)


def verify_function(function: Function) -> None:
    """Verify one function definition."""
    if function.is_declaration:
        return
    _check_blocks(function)
    _check_phis(function)
    _check_types(function)
    _check_ssa_dominance(function)


def _fail(function: Function, message: str) -> None:
    raise VerificationError(f"@{function.name}: {message}")


def _check_blocks(function: Function) -> None:
    seen_names: Set[str] = set()
    block_set = set(id(b) for b in function.blocks)
    for block in function.blocks:
        if block.name in seen_names:
            _fail(function, f"duplicate block name %{block.name}")
        seen_names.add(block.name)
        if not block.instructions:
            _fail(function, f"block %{block.name} is empty")
        terminator = block.instructions[-1]
        if not terminator.is_terminator():
            _fail(function, f"block %{block.name} does not end in a terminator")
        for inst in block.instructions[:-1]:
            if inst.is_terminator():
                _fail(function, f"terminator in the middle of block %{block.name}")
        if isinstance(terminator, Branch):
            for target in terminator.targets:
                if id(target) not in block_set:
                    _fail(function, f"branch in %{block.name} targets a foreign block")
        if isinstance(terminator, Ret):
            if terminator.value is None and not isinstance(function.return_type, VoidType):
                _fail(function, "ret void in a non-void function")
            if terminator.value is not None and isinstance(function.return_type, VoidType):
                _fail(function, "ret with a value in a void function")


def _check_phis(function: Function) -> None:
    predecessors: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for successor in block.successors():
            predecessors[successor].append(block)
    for block in function.blocks:
        in_prefix = True
        for inst in block.instructions:
            if isinstance(inst, Phi):
                if not in_prefix:
                    _fail(function, f"phi not at head of block %{block.name}")
                preds = predecessors[block]
                incoming_blocks = [b for _, b in inst.incoming]
                if len(incoming_blocks) != len(preds):
                    _fail(
                        function,
                        f"phi in %{block.name} has {len(incoming_blocks)} entries "
                        f"but the block has {len(preds)} predecessors",
                    )
                if {id(b) for b in incoming_blocks} != {id(b) for b in preds}:
                    _fail(function, f"phi in %{block.name} does not cover its predecessors")
            else:
                in_prefix = False


def _check_types(function: Function) -> None:
    for inst in function.instructions():
        if isinstance(inst, BinaryOperator):
            if inst.lhs.type != inst.rhs.type:
                _fail(function, f"binary operator {inst.opcode} with mismatched operand types")
            if inst.type != inst.lhs.type:
                _fail(function, f"binary operator {inst.opcode} result type mismatch")
        elif isinstance(inst, ICmp):
            if inst.lhs.type != inst.rhs.type:
                _fail(function, "icmp with mismatched operand types")
            if not isinstance(inst.type, IntType) or inst.type.bits != 1:
                _fail(function, "icmp result must be i1")
        elif isinstance(inst, Select):
            if inst.if_true.type != inst.if_false.type:
                _fail(function, "select arms have different types")
        elif isinstance(inst, Load):
            if not isinstance(inst.pointer.type, PointerType):
                _fail(function, "load from a non-pointer")
            if inst.pointer.type.pointee != inst.type:
                _fail(function, "load result type does not match the pointee type")
        elif isinstance(inst, Store):
            if not isinstance(inst.pointer.type, PointerType):
                _fail(function, "store to a non-pointer")
            if inst.pointer.type.pointee != inst.value.type:
                _fail(function, "store value type does not match the pointee type")
        elif isinstance(inst, Branch):
            if inst.is_conditional and not inst.condition.type.is_bool():
                _fail(function, "conditional branch on a non-i1 value")
        elif isinstance(inst, Phi):
            for value, _ in inst.incoming:
                if value.type != inst.type and not isinstance(value, Constant):
                    _fail(function, "phi incoming value type mismatch")


def _check_ssa_dominance(function: Function) -> None:
    definitions: Dict[int, BasicBlock] = {}
    positions: Dict[int, int] = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            definitions[id(inst)] = block
            positions[id(inst)] = index

    dom = DominatorTree.compute(function)
    reachable = set(id(b) for b in dom.reachable_blocks())

    def defined_value_ok(value: Value) -> bool:
        return isinstance(value, (Constant, Argument, GlobalVariable, Function, BasicBlock)) or id(value) in definitions

    for block in function.blocks:
        if id(block) not in reachable:
            continue
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, Phi):
                for value, pred in inst.incoming:
                    if not defined_value_ok(value):
                        _fail(function, f"phi in %{block.name} uses an unknown value")
                    if id(value) in definitions and id(pred) in reachable:
                        def_block = definitions[id(value)]
                        if not dom.dominates(def_block, pred):
                            _fail(
                                function,
                                f"phi incoming value in %{block.name} is not dominated "
                                f"by its definition (from %{pred.name})",
                            )
                continue
            for value in inst.operands:
                if isinstance(value, BasicBlock):
                    continue
                if not defined_value_ok(value):
                    _fail(function, f"instruction in %{block.name} uses an unknown value")
                if id(value) in definitions:
                    def_block = definitions[id(value)]
                    if def_block is block:
                        if positions[id(value)] >= index:
                            _fail(
                                function,
                                f"use before definition of %{value.name} in %{block.name}",
                            )
                    elif not dom.dominates(def_block, block):
                        _fail(
                            function,
                            f"definition of %{value.name} does not dominate its use in %{block.name}",
                        )


__all__ = ["verify_module", "verify_function"]
