"""A convenience builder for constructing IR programmatically.

The builder keeps an insertion point (a basic block) and offers one method
per instruction kind, mirroring LLVM's ``IRBuilder``.  It is used by the
synthetic program generator, the examples and many tests; hand-written IR
in tests usually goes through the textual parser instead.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .instructions import (
    Alloca,
    BinaryOperator,
    Branch,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import FunctionType, IntType, Type, VoidType
from .values import ConstantInt, Value


class IRBuilder:
    """Builds instructions at an insertion point.

    Parameters
    ----------
    block:
        Optional initial insertion block.
    """

    def __init__(self, block: Optional[BasicBlock] = None):
        self._block = block
        self._name_counter = 0

    # -- insertion point ---------------------------------------------------
    @property
    def block(self) -> BasicBlock:
        """The current insertion block."""
        if self._block is None:
            raise RuntimeError("IRBuilder has no insertion point")
        return self._block

    def position_at_end(self, block: BasicBlock) -> None:
        """Move the insertion point to the end of ``block``."""
        self._block = block

    def _fresh_name(self, hint: str) -> str:
        self._name_counter += 1
        return f"{hint}{self._name_counter}"

    def _insert(self, inst: Instruction, hint: str = "t") -> Instruction:
        if inst.has_result() and not inst.name:
            inst.name = self._fresh_name(hint)
        return self.block.append(inst)

    # -- constants -----------------------------------------------------------
    @staticmethod
    def const(value: int, bits: int = 32) -> ConstantInt:
        """Create an integer constant."""
        return ConstantInt(IntType(bits), value)

    # -- arithmetic ------------------------------------------------------------
    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        """Create any binary operator."""
        return self._insert(BinaryOperator(opcode, lhs, rhs, name), opcode)

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs: Value, rhs: Value, name: str = "") -> BinaryOperator:
        return self.binop("ashr", lhs, rhs, name)

    # -- comparisons / selects -------------------------------------------------
    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        """Create an integer comparison."""
        return self._insert(ICmp(predicate, lhs, rhs, name), "cmp")

    def select(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> Select:
        """Create a select."""
        return self._insert(Select(cond, if_true, if_false, name), "sel")

    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Cast:
        """Create a cast instruction."""
        return self._insert(Cast(opcode, value, to_type, name), opcode)

    # -- memory ------------------------------------------------------------
    def alloca(self, allocated_type: Type, count: Optional[Value] = None, name: str = "") -> Alloca:
        """Create a stack allocation."""
        return self._insert(Alloca(allocated_type, count, name), "ptr")

    def load(self, pointer: Value, name: str = "") -> Load:
        """Create a load."""
        return self._insert(Load(pointer, name), "ld")

    def store(self, value: Value, pointer: Value) -> Store:
        """Create a store."""
        return self._insert(Store(value, pointer))

    def gep(self, source_type: Type, pointer: Value, indices: Sequence[Value], name: str = "") -> GetElementPtr:
        """Create a getelementptr."""
        return self._insert(GetElementPtr(source_type, pointer, indices, name), "gep")

    # -- calls / phis ------------------------------------------------------------
    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Call:
        """Create a direct call."""
        return self._insert(Call(callee, args, callee.return_type, name), "call")

    def phi(self, type_: Type, incoming=(), name: str = "") -> Phi:
        """Create a φ-node at the head of the current block."""
        node = Phi(type_, incoming, name)
        if node.has_result() and not node.name:
            node.name = self._fresh_name("phi")
        phis = self.block.phis()
        self.block.insert(len(phis), node)
        return node

    # -- terminators ------------------------------------------------------------
    def br(self, target: BasicBlock) -> Branch:
        """Create an unconditional branch."""
        return self._insert(Branch(target))

    def cbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Branch:
        """Create a conditional branch."""
        return self._insert(Branch(cond, if_true, if_false))

    def ret(self, value: Optional[Value] = None) -> Ret:
        """Create a return."""
        return self._insert(Ret(value))

    def unreachable(self) -> Unreachable:
        """Create an unreachable terminator."""
        return self._insert(Unreachable())


def create_function(
    module: Module,
    name: str,
    return_type: Type,
    param_types: Sequence[Type],
    param_names: Optional[Sequence[str]] = None,
    attributes: Sequence[str] = (),
) -> Function:
    """Create a function with an empty ``entry`` block and register it."""
    function = Function(name, FunctionType(return_type, param_types), param_names, attributes)
    function.add_block("entry")
    module.add_function(function)
    return function


def declare_function(
    module: Module,
    name: str,
    return_type: Type,
    param_types: Sequence[Type],
    attributes: Sequence[str] = (),
) -> Function:
    """Create an external declaration (no body) and register it."""
    function = Function(name, FunctionType(return_type, param_types), None, attributes)
    module.add_function(function)
    return function


__all__ = ["IRBuilder", "create_function", "declare_function"]
