"""Textual printer for the LLVM-like IR.

The output syntax deliberately mirrors LLVM assembly so that IR written in
tests and documentation reads familiarly, and so the companion parser can
round-trip it.  Anonymous values are assigned ``%0``, ``%1``, ... names on
the fly exactly as ``llvm-as`` would.
"""

from __future__ import annotations

from typing import Dict, Optional

from .instructions import (
    Alloca,
    Branch,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .values import Argument, Constant, GlobalVariable, Value


class _Namer:
    """Assigns stable, unique textual names within one function."""

    def __init__(self) -> None:
        self._names: Dict[int, str] = {}
        self._used: set = set()
        self._counter = 0

    def name_of(self, value: Value) -> str:
        key = id(value)
        if key in self._names:
            return self._names[key]
        base = value.name
        if not base:
            name = str(self._counter)
            self._counter += 1
        else:
            name = base
            suffix = 1
            while name in self._used:
                name = f"{base}.{suffix}"
                suffix += 1
        self._names[key] = name
        self._used.add(name)
        return name


def _operand(value: Value, namer: _Namer, with_type: bool = True) -> str:
    """Format an operand, optionally prefixed with its type."""
    text = _operand_name(value, namer)
    if with_type:
        return f"{value.type} {text}"
    return text


def _operand_name(value: Value, namer: _Namer) -> str:
    if isinstance(value, Constant):
        return value.ref()
    if isinstance(value, (GlobalVariable, Function)):
        return f"@{value.name}"
    if isinstance(value, BasicBlock):
        return f"%{namer.name_of(value)}"
    return f"%{namer.name_of(value)}"


def print_instruction(inst: Instruction, namer: Optional[_Namer] = None) -> str:
    """Render one instruction as a line of assembly (no indentation)."""
    namer = namer or _Namer()
    result = ""
    if inst.has_result():
        result = f"%{namer.name_of(inst)} = "

    if isinstance(inst, ICmp):
        lhs = _operand(inst.lhs, namer)
        rhs = _operand_name(inst.rhs, namer)
        return f"{result}icmp {inst.predicate} {lhs}, {rhs}"
    if isinstance(inst, Select):
        return (
            f"{result}select {_operand(inst.condition, namer)}, "
            f"{_operand(inst.if_true, namer)}, {_operand(inst.if_false, namer)}"
        )
    if isinstance(inst, Cast):
        return f"{result}{inst.opcode} {_operand(inst.value, namer)} to {inst.type}"
    if isinstance(inst, Alloca):
        if inst.count is not None:
            return f"{result}alloca {inst.allocated_type}, {_operand(inst.count, namer)}"
        return f"{result}alloca {inst.allocated_type}"
    if isinstance(inst, Load):
        return f"{result}load {inst.type}, {_operand(inst.pointer, namer)}"
    if isinstance(inst, Store):
        return f"store {_operand(inst.value, namer)}, {_operand(inst.pointer, namer)}"
    if isinstance(inst, GetElementPtr):
        indices = ", ".join(_operand(i, namer) for i in inst.indices)
        return f"{result}getelementptr {inst.source_type}, {_operand(inst.pointer, namer)}, {indices}"
    if isinstance(inst, Phi):
        pairs = ", ".join(
            f"[ {_operand_name(v, namer)}, %{namer.name_of(b)} ]" for v, b in inst.incoming
        )
        return f"{result}phi {inst.type} {pairs}"
    if isinstance(inst, Call):
        args = ", ".join(_operand(a, namer) for a in inst.args)
        callee = _operand_name(inst.callee, namer)
        return f"{result}call {inst.type} {callee}({args})"
    if isinstance(inst, Branch):
        if inst.is_conditional:
            return (
                f"br {_operand(inst.condition, namer)}, "
                f"label %{namer.name_of(inst.targets[0])}, label %{namer.name_of(inst.targets[1])}"
            )
        return f"br label %{namer.name_of(inst.targets[0])}"
    if isinstance(inst, Ret):
        if inst.value is None:
            return "ret void"
        return f"ret {_operand(inst.value, namer)}"
    if isinstance(inst, Unreachable):
        return "unreachable"
    # Generic binary operator (and any future simple opcode).
    operands = ", ".join(
        [_operand(inst.operands[0], namer)]
        + [_operand_name(op, namer) for op in inst.operands[1:]]
    )
    return f"{result}{inst.opcode} {operands}"


def print_function(function: Function) -> str:
    """Render a function definition or declaration."""
    namer = _Namer()
    params = ", ".join(
        f"{arg.type} %{namer.name_of(arg)}" for arg in function.args
    )
    attrs = (" " + " ".join(sorted(function.attributes))) if function.attributes else ""
    header = f"{function.return_type} @{function.name}({params})"
    if function.is_declaration:
        return f"declare {header}{attrs}"
    lines = [f"define {header}{attrs} {{"]
    for block in function.blocks:
        lines.append(f"{namer.name_of(block)}:")
        for inst in block.instructions:
            lines.append(f"  {print_instruction(inst, namer)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a whole module."""
    parts = [f"; ModuleID = '{module.name}'"]
    for global_var in module.globals.values():
        init = global_var.initializer.ref() if global_var.initializer is not None else "undef"
        kind = "constant" if global_var.is_constant else "global"
        parts.append(f"@{global_var.name} = {kind} {global_var.value_type} {init}")
    for function in module.functions.values():
        parts.append("")
        parts.append(print_function(function))
    return "\n".join(parts) + "\n"


__all__ = ["print_instruction", "print_function", "print_module"]
