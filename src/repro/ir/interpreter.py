"""Reference interpreter for the LLVM-like IR.

The interpreter gives the IR a concrete, executable semantics.  It is used
for *differential testing*: run a function before and after an optimization
pass on the same inputs and check that the observable results (return
value, final contents of caller-visible memory) agree.  That is how the
test suite convinces itself the optimizer substrate is trustworthy, which
in turn makes the validator's verdicts on it meaningful.

Semantics notes
---------------
* Integer arithmetic wraps modulo the bit width (two's complement);
  division by zero and use of ``undef`` raise :class:`InterpreterError`.
* Memory is a flat map from integer addresses to values, one slot per
  element (not per byte) — pointer arithmetic via ``getelementptr`` moves
  in whole elements, matching the simplified GEP in the IR.
* Calls to *defined* functions are executed recursively (with a depth
  limit).  Calls to *declarations* are modelled as deterministic pure
  functions of their integer arguments, so that the "before" and "after"
  versions of a caller observe identical results.
* Execution is bounded by a step budget; exceeding it raises
  :class:`InterpreterError`, which the differential harness treats as
  "both sides must time out the same way".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InterpreterError
from .instructions import (
    Alloca,
    BinaryOperator,
    Branch,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import IntType, PointerType, to_signed, to_unsigned
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
)


def _truncating_div(lhs: int, rhs: int) -> int:
    """C-style signed division: truncate toward zero."""
    quotient = abs(lhs) // abs(rhs)
    return quotient if (lhs < 0) == (rhs < 0) else -quotient


class ExecutionResult:
    """Outcome of one function execution."""

    def __init__(self, return_value, memory_snapshot: Dict[int, object], steps: int):
        self.return_value = return_value
        self.memory_snapshot = memory_snapshot
        self.steps = steps

    def observable(self, addresses: Sequence[int]) -> Tuple:
        """Observable state: the return value plus the given memory cells."""
        return (self.return_value, tuple(self.memory_snapshot.get(a) for a in addresses))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ExecutionResult ret={self.return_value!r} steps={self.steps}>"


class Interpreter:
    """Executes functions of a module.

    Parameters
    ----------
    module:
        The module providing globals and callee definitions.
    max_steps:
        Total instruction budget for one :meth:`run` call (including
        callees).
    max_call_depth:
        Recursion limit for calls to defined functions.
    """

    def __init__(self, module: Module, max_steps: int = 200_000, max_call_depth: int = 64):
        self.module = module
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.memory: Dict[int, object] = {}
        self._next_address = 1000
        self.global_addresses: Dict[str, int] = {}
        self._steps = 0
        self._initialize_globals()

    # -- setup -------------------------------------------------------------
    def _initialize_globals(self) -> None:
        for name, global_var in self.module.globals.items():
            address = self.allocate(1)
            self.global_addresses[name] = address
            if global_var.initializer is not None:
                self.memory[address] = self._constant_value(global_var.initializer)
            else:
                self.memory[address] = 0

    def allocate(self, count: int) -> int:
        """Reserve ``count`` consecutive memory slots, returning the address."""
        address = self._next_address
        self._next_address += max(count, 1) + 7  # pad so distinct objects never touch
        for i in range(max(count, 1)):
            self.memory.setdefault(address + i, 0)
        return address

    # -- value evaluation -----------------------------------------------------
    def _constant_value(self, constant: Constant):
        if isinstance(constant, ConstantInt):
            return constant.value
        if isinstance(constant, ConstantFloat):
            return constant.value
        if isinstance(constant, ConstantPointerNull):
            return 0
        if isinstance(constant, UndefValue):
            raise InterpreterError("evaluated an undef value")
        raise InterpreterError(f"cannot evaluate constant {constant!r}")

    def _value(self, value: Value, frame: Dict[int, object]):
        if isinstance(value, Constant):
            return self._constant_value(value)
        if isinstance(value, GlobalVariable):
            return self.global_addresses[value.name]
        if id(value) in frame:
            return frame[id(value)]
        raise InterpreterError(f"use of an unevaluated value {value!r}")

    # -- public API -------------------------------------------------------------
    def run(self, function: Function, args: Sequence[object]) -> ExecutionResult:
        """Execute ``function`` with the given argument values.

        Integer arguments are plain Python ints; pointer arguments are
        addresses previously obtained from :meth:`allocate`.
        """
        self._steps = 0
        value = self._call(function, list(args), depth=0)
        return ExecutionResult(value, dict(self.memory), self._steps)

    # -- execution engine ---------------------------------------------------------
    def _call(self, function: Function, args: List[object], depth: int):
        if depth > self.max_call_depth:
            raise InterpreterError(f"call depth limit exceeded in @{function.name}")
        if function.is_declaration:
            return self._external_call(function, args)
        if len(args) != len(function.args):
            raise InterpreterError(
                f"@{function.name} called with {len(args)} arguments, expected {len(function.args)}"
            )
        frame: Dict[int, object] = {id(a): v for a, v in zip(function.args, args)}
        block = function.entry
        previous_block: Optional[BasicBlock] = None
        while True:
            next_block, previous_block, result, returned = self._run_block(
                function, block, previous_block, frame, depth
            )
            if returned:
                return result
            block = next_block

    def _run_block(self, function: Function, block: BasicBlock,
                   previous_block: Optional[BasicBlock],
                   frame: Dict[int, object], depth: int):
        # φ-nodes evaluate simultaneously from the incoming edge.
        phi_values: List[Tuple[int, object]] = []
        for phi in block.phis():
            incoming = phi.incoming_for(previous_block) if previous_block is not None else None
            if incoming is None and previous_block is not None:
                raise InterpreterError(
                    f"phi in %{block.name} has no entry for predecessor %{previous_block.name}"
                )
            if incoming is None:
                raise InterpreterError(f"phi in entry block %{block.name}")
            phi_values.append((id(phi), self._value(incoming, frame)))
        for key, value in phi_values:
            frame[key] = value

        for inst in block.instructions:
            if isinstance(inst, Phi):
                continue
            self._steps += 1
            if self._steps > self.max_steps:
                raise InterpreterError("step budget exceeded")

            if isinstance(inst, Branch):
                if inst.is_conditional:
                    cond = self._value(inst.condition, frame)
                    target = inst.targets[0] if cond not in (0, False) else inst.targets[1]
                else:
                    target = inst.targets[0]
                return target, block, None, False
            if isinstance(inst, Ret):
                value = self._value(inst.value, frame) if inst.value is not None else None
                return None, block, value, True
            if isinstance(inst, Unreachable):
                raise InterpreterError(f"executed unreachable in @{function.name}")

            frame[id(inst)] = self._execute(inst, frame, depth)
        raise InterpreterError(f"block %{block.name} fell through without a terminator")

    def _execute(self, inst, frame: Dict[int, object], depth: int):
        if isinstance(inst, BinaryOperator):
            return self._binary(inst, frame)
        if isinstance(inst, ICmp):
            return self._icmp(inst, frame)
        if isinstance(inst, Select):
            cond = self._value(inst.condition, frame)
            return self._value(inst.if_true if cond not in (0, False) else inst.if_false, frame)
        if isinstance(inst, Cast):
            return self._cast(inst, frame)
        if isinstance(inst, Alloca):
            count = 1
            if inst.count is not None:
                count = int(self._value(inst.count, frame))
            return self.allocate(count)
        if isinstance(inst, Load):
            address = int(self._value(inst.pointer, frame))
            if address == 0:
                raise InterpreterError("load from a null pointer")
            return self.memory.get(address, 0)
        if isinstance(inst, Store):
            address = int(self._value(inst.pointer, frame))
            if address == 0:
                raise InterpreterError("store to a null pointer")
            self.memory[address] = self._value(inst.value, frame)
            return None
        if isinstance(inst, GetElementPtr):
            address = int(self._value(inst.pointer, frame))
            for index in inst.indices:
                address += int(self._value(index, frame))
            return address
        if isinstance(inst, Call):
            callee = inst.callee
            if not isinstance(callee, Function):
                raise InterpreterError("indirect calls are not supported")
            args = [self._value(a, frame) for a in inst.args]
            return self._call(callee, args, depth + 1)
        raise InterpreterError(f"cannot execute instruction {inst!r}")

    # -- helpers -------------------------------------------------------------------
    def _binary(self, inst: BinaryOperator, frame: Dict[int, object]):
        lhs = self._value(inst.lhs, frame)
        rhs = self._value(inst.rhs, frame)
        opcode = inst.opcode
        if opcode.startswith("f"):
            lhs, rhs = float(lhs), float(rhs)
            if opcode == "fadd":
                return lhs + rhs
            if opcode == "fsub":
                return lhs - rhs
            if opcode == "fmul":
                return lhs * rhs
            if opcode == "fdiv":
                if rhs == 0.0:
                    raise InterpreterError("floating point division by zero")
                return lhs / rhs
        bits = inst.type.bits if isinstance(inst.type, IntType) else 64
        lhs, rhs = int(lhs), int(rhs)
        unsigned_lhs = to_unsigned(lhs, bits)
        unsigned_rhs = to_unsigned(rhs, bits)
        if opcode == "add":
            result = lhs + rhs
        elif opcode == "sub":
            result = lhs - rhs
        elif opcode == "mul":
            result = lhs * rhs
        elif opcode == "sdiv":
            if rhs == 0:
                raise InterpreterError("signed division by zero")
            result = _truncating_div(lhs, rhs)
        elif opcode == "udiv":
            if unsigned_rhs == 0:
                raise InterpreterError("unsigned division by zero")
            result = unsigned_lhs // unsigned_rhs
        elif opcode == "srem":
            if rhs == 0:
                raise InterpreterError("signed remainder by zero")
            result = lhs - _truncating_div(lhs, rhs) * rhs
        elif opcode == "urem":
            if unsigned_rhs == 0:
                raise InterpreterError("unsigned remainder by zero")
            result = unsigned_lhs % unsigned_rhs
        elif opcode == "and":
            result = unsigned_lhs & unsigned_rhs
        elif opcode == "or":
            result = unsigned_lhs | unsigned_rhs
        elif opcode == "xor":
            result = unsigned_lhs ^ unsigned_rhs
        elif opcode == "shl":
            result = unsigned_lhs << (unsigned_rhs % bits)
        elif opcode == "lshr":
            result = unsigned_lhs >> (unsigned_rhs % bits)
        elif opcode == "ashr":
            result = lhs >> (unsigned_rhs % bits)
        else:  # pragma: no cover - defensive
            raise InterpreterError(f"unknown binary opcode {opcode}")
        return to_signed(result, bits)

    def _icmp(self, inst: ICmp, frame: Dict[int, object]) -> int:
        lhs = int(self._value(inst.lhs, frame))
        rhs = int(self._value(inst.rhs, frame))
        bits = inst.lhs.type.bits if isinstance(inst.lhs.type, IntType) else 64
        signed_lhs, signed_rhs = to_signed(lhs, bits), to_signed(rhs, bits)
        unsigned_lhs, unsigned_rhs = to_unsigned(lhs, bits), to_unsigned(rhs, bits)
        predicate = inst.predicate
        table = {
            "eq": lhs == rhs,
            "ne": lhs != rhs,
            "slt": signed_lhs < signed_rhs,
            "sle": signed_lhs <= signed_rhs,
            "sgt": signed_lhs > signed_rhs,
            "sge": signed_lhs >= signed_rhs,
            "ult": unsigned_lhs < unsigned_rhs,
            "ule": unsigned_lhs <= unsigned_rhs,
            "ugt": unsigned_lhs > unsigned_rhs,
            "uge": unsigned_lhs >= unsigned_rhs,
        }
        return 1 if table[predicate] else 0

    def _cast(self, inst: Cast, frame: Dict[int, object]):
        value = self._value(inst.value, frame)
        if inst.opcode in ("bitcast", "inttoptr", "ptrtoint"):
            return value
        source_bits = inst.value.type.bits if isinstance(inst.value.type, IntType) else 64
        target_bits = inst.type.bits if isinstance(inst.type, IntType) else 64
        if inst.opcode == "zext":
            return to_unsigned(int(value), source_bits)
        if inst.opcode == "sext":
            return to_signed(int(value), source_bits)
        if inst.opcode == "trunc":
            return to_signed(int(value), target_bits)
        raise InterpreterError(f"unknown cast {inst.opcode}")

    def _external_call(self, function: Function, args: List[object]):
        """Deterministic model of a call to an external declaration."""
        if function.return_type.is_void():
            return None
        seed = hash((function.name, tuple(int(a) if isinstance(a, (int, bool)) else 0 for a in args)))
        bits = function.return_type.bits if isinstance(function.return_type, IntType) else 64
        return to_signed(seed & 0xFFFF, bits)


def run_function(module: Module, name: str, args: Sequence[object],
                 max_steps: int = 200_000) -> ExecutionResult:
    """Convenience wrapper: build an interpreter and run one function."""
    interpreter = Interpreter(module, max_steps=max_steps)
    return interpreter.run(module.get_function(name), args)


__all__ = ["Interpreter", "ExecutionResult", "run_function"]
