"""LLVM-like SSA intermediate representation.

This package is the substrate the paper's validator operates on: a small,
self-contained SSA IR closely modelled on LLVM assembly, with a textual
parser/printer, a structural verifier, an :class:`IRBuilder`, deep-copy
support and a reference interpreter used for differential testing of the
optimizer.
"""

from .builder import IRBuilder, create_function, declare_function
from .cloning import clone_function, clone_global, clone_module
from .instructions import (
    Alloca,
    BinaryOperator,
    Branch,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
    BINARY_OPS,
    CAST_OPS,
    COMMUTATIVE_OPS,
    ICMP_PREDICATES,
    NEGATED_PREDICATE,
    SWAPPED_PREDICATE,
)
from .interpreter import ExecutionResult, Interpreter, run_function
from .module import BasicBlock, Function, Module
from .parser import parse_function, parse_module
from .printer import print_function, print_instruction, print_module
from .types import (
    ArrayType,
    DOUBLE,
    FloatType,
    FunctionType,
    I1,
    I8,
    I16,
    I32,
    I64,
    IntType,
    LabelType,
    PointerType,
    Type,
    VOID,
    VoidType,
    int_type,
    ptr,
)
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
    const_bool,
    const_int,
)
from .verifier import verify_function, verify_module

__all__ = [
    # types
    "Type", "IntType", "PointerType", "FloatType", "VoidType", "LabelType",
    "ArrayType", "FunctionType", "I1", "I8", "I16", "I32", "I64", "VOID",
    "DOUBLE", "int_type", "ptr",
    # values
    "Value", "Constant", "ConstantInt", "ConstantFloat", "ConstantPointerNull",
    "UndefValue", "Argument", "GlobalVariable", "const_int", "const_bool",
    # instructions
    "Instruction", "BinaryOperator", "ICmp", "Select", "Cast", "Alloca",
    "Load", "Store", "GetElementPtr", "Phi", "Call", "Branch", "Ret",
    "Unreachable", "BINARY_OPS", "CAST_OPS", "COMMUTATIVE_OPS",
    "ICMP_PREDICATES", "NEGATED_PREDICATE", "SWAPPED_PREDICATE",
    # containers
    "BasicBlock", "Function", "Module",
    # tools
    "IRBuilder", "create_function", "declare_function",
    "clone_function", "clone_global", "clone_module",
    "parse_module", "parse_function",
    "print_module", "print_function", "print_instruction",
    "verify_module", "verify_function",
    "Interpreter", "ExecutionResult", "run_function",
]
