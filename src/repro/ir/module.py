"""Containers for the LLVM-like IR: basic blocks, functions and modules.

A :class:`Module` owns global variables and functions; a :class:`Function`
owns an ordered list of :class:`BasicBlock`; each block owns an ordered
list of instructions ending in exactly one terminator.  The first block of
a function is its entry block.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..errors import IRError
from .instructions import Branch, Instruction, Phi
from .types import FunctionType, LabelType, Type
from .values import Argument, GlobalVariable, Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator."""

    __slots__ = ("instructions", "parent")

    def __init__(self, name: str, parent: Optional["Function"] = None):
        super().__init__(LabelType(), name)
        self.instructions: List[Instruction] = []
        self.parent = parent

    # -- structure -------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator, or ``None`` if the block is unterminated."""
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def phis(self) -> List[Phi]:
        """The φ-nodes at the head of the block."""
        result = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                result.append(inst)
            else:
                break
        return result

    def non_phi_instructions(self) -> List[Instruction]:
        """Instructions after the φ-node prefix."""
        return [inst for inst in self.instructions if not isinstance(inst, Phi)]

    # -- mutation ---------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        """Append an instruction and set its parent."""
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        """Insert an instruction at ``index`` and set its parent."""
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        """Insert an instruction just before the terminator."""
        index = len(self.instructions)
        if self.terminator is not None:
            index -= 1
        return self.insert(index, inst)

    def remove(self, inst: Instruction) -> None:
        """Remove an instruction from the block."""
        self.instructions.remove(inst)
        inst.parent = None

    # -- CFG --------------------------------------------------------------
    def successors(self) -> List["BasicBlock"]:
        """Successor blocks according to the terminator."""
        term = self.terminator
        if isinstance(term, Branch):
            return list(term.targets)
        return []

    def predecessors(self) -> List["BasicBlock"]:
        """Predecessor blocks (computed by scanning the parent function)."""
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def ref(self) -> str:
        return f"label %{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"


class Function(Value):
    """A function definition or declaration.

    Attributes
    ----------
    function_type:
        The :class:`~repro.ir.types.FunctionType` signature.
    args:
        The formal :class:`~repro.ir.values.Argument` values.
    blocks:
        Basic blocks in layout order; empty for declarations.
    attributes:
        A frozenset of attribute strings; ``readonly`` and ``readnone`` are
        meaningful to the optimizer and the alias analysis.
    """

    # ``__weakref__`` lets caches key weakly by function identity (the
    # checkpoint fingerprint table) without pinning retired versions.
    __slots__ = ("function_type", "args", "blocks", "attributes", "parent",
                 "__weakref__")

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        arg_names: Optional[Sequence[str]] = None,
        attributes: Iterable[str] = (),
    ):
        super().__init__(function_type, name)
        self.function_type = function_type
        names = list(arg_names) if arg_names is not None else [
            f"arg{i}" for i in range(len(function_type.param_types))
        ]
        if len(names) != len(function_type.param_types):
            raise IRError("argument name count does not match signature")
        self.args: List[Argument] = [
            Argument(t, n, parent=self, index=i)
            for i, (t, n) in enumerate(zip(function_type.param_types, names))
        ]
        self.blocks: List[BasicBlock] = []
        self.attributes = frozenset(attributes)
        self.parent: Optional["Module"] = None

    # -- queries ----------------------------------------------------------
    @property
    def is_declaration(self) -> bool:
        """``True`` when the function has no body (an external declaration)."""
        return not self.blocks

    @property
    def return_type(self) -> Type:
        return self.function_type.return_type

    @property
    def entry(self) -> BasicBlock:
        """The entry block."""
        if not self.blocks:
            raise IRError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    def block(self, name: str) -> BasicBlock:
        """Look up a block by name."""
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"no block named %{name} in @{self.name}")

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over all instructions in layout order."""
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        """Total number of instructions in the function body."""
        return sum(len(b.instructions) for b in self.blocks)

    def ref(self) -> str:
        return f"@{self.name}"

    # -- mutation ---------------------------------------------------------
    def add_block(self, name: str, after: Optional[BasicBlock] = None) -> BasicBlock:
        """Create a new block with a unique name and add it to the function."""
        unique = self._unique_block_name(name)
        block = BasicBlock(unique, parent=self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def _unique_block_name(self, name: str) -> str:
        existing = {b.name for b in self.blocks}
        if name not in existing:
            return name
        counter = 1
        while f"{name}.{counter}" in existing:
            counter += 1
        return f"{name}.{counter}"

    def remove_block(self, block: BasicBlock) -> None:
        """Remove a block (the caller is responsible for fixing edges/φ)."""
        self.blocks.remove(block)
        block.parent = None

    def replace_all_uses(self, old: Value, new: Value) -> int:
        """Replace every operand reference to ``old`` with ``new``.

        Returns the number of operand slots rewritten.  This scans the
        whole function; at the scale of the benchmark corpora that is
        cheap and avoids maintaining use lists.
        """
        count = 0
        for inst in self.instructions():
            count += inst.replace_operand(old, new)
        return count

    # -- copying ----------------------------------------------------------
    def clone(self, new_name: Optional[str] = None) -> "Function":
        """Deep-copy the function.

        The optimizer mutates functions in place; the validation driver
        clones the original first so the "before" version survives.  The
        clone shares constants and globals (immutable) but has fresh
        arguments, blocks and instructions.
        """
        from .cloning import clone_function

        return clone_function(self, new_name=new_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "declare" if self.is_declaration else "define"
        return f"<{kind} @{self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A translation unit: global variables plus functions."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}

    def add_global(self, global_var: GlobalVariable) -> GlobalVariable:
        """Register a global variable (name must be unique)."""
        if global_var.name in self.globals:
            raise IRError(f"duplicate global @{global_var.name}")
        self.globals[global_var.name] = global_var
        return global_var

    def add_function(self, function: Function) -> Function:
        """Register a function (name must be unique)."""
        if function.name in self.functions:
            raise IRError(f"duplicate function @{function.name}")
        function.parent = self
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Function:
        """Look up a function by name."""
        return self.functions[name]

    def defined_functions(self) -> List[Function]:
        """Functions that have a body, in insertion order."""
        return [f for f in self.functions.values() if not f.is_declaration]

    def declarations(self) -> List[Function]:
        """External declarations, in insertion order."""
        return [f for f in self.functions.values() if f.is_declaration]

    def instruction_count(self) -> int:
        """Total instruction count over all defined functions."""
        return sum(f.instruction_count() for f in self.defined_functions())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name!r} ({len(self.functions)} functions)>"


__all__ = ["BasicBlock", "Function", "Module"]
