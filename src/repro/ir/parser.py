"""Parser for the textual LLVM-like assembly.

The accepted syntax is the subset of LLVM assembly produced by
:mod:`repro.ir.printer`: module-level globals, function declarations and
definitions, and the instruction set in :mod:`repro.ir.instructions`.
The parser is a straightforward hand-written recursive descent over a
token stream; forward references (branches to later blocks, φ inputs from
later definitions) are resolved with placeholder values that are patched
once the whole function has been read.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from .instructions import (
    Alloca,
    BINARY_OPS,
    BinaryOperator,
    Branch,
    CAST_OPS,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    ICMP_PREDICATES,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    LabelType,
    PointerType,
    Type,
    VoidType,
)
from .values import (
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalVariable,
    UndefValue,
    Value,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>;[^\n]*)
  | (?P<newline>\n)
  | (?P<local>%[A-Za-z0-9._$-]+)
  | (?P<global>@[A-Za-z0-9._$-]+)
  | (?P<label>[A-Za-z0-9._$-]+:)
  | (?P<float>-?\d+\.\d+(e[+-]?\d+)?)
  | (?P<int>-?\d+)
  | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>\.\.\.|[(){}\[\],=*:])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> List[_Token]:
    """Split IR source text into tokens, dropping whitespace and comments."""
    tokens: List[_Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line, pos - line_start + 1)
        kind = match.lastgroup
        text = match.group()
        if kind == "newline":
            line += 1
            line_start = match.end()
        elif kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line, pos - line_start + 1))
        pos = match.end()
    tokens.append(_Token("eof", "", line, 1))
    return tokens


class _ForwardRef(Value):
    """Placeholder for a value referenced before its definition."""

    __slots__ = ()


class Parser:
    """Recursive-descent parser for one module."""

    def __init__(self, source: str, name: str = "module"):
        self._tokens = tokenize(source)
        self._pos = 0
        self.module = Module(name)

    # -- token helpers -----------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._pos]

    def _next(self) -> _Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text or kind
            raise ParseError(
                f"expected {expected!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message + f" (found {token.text!r})", token.line, token.column)

    # -- types --------------------------------------------------------------
    def parse_type(self) -> Type:
        """Parse a type, including pointer ``*`` suffixes and arrays."""
        token = self._peek()
        base: Type
        if token.kind == "word" and re.fullmatch(r"i\d+", token.text):
            self._next()
            base = IntType(int(token.text[1:]))
        elif token.kind == "word" and token.text == "double":
            self._next()
            base = FloatType()
        elif token.kind == "word" and token.text == "void":
            self._next()
            base = VoidType()
        elif token.kind == "word" and token.text == "label":
            self._next()
            base = LabelType()
        elif token.kind == "punct" and token.text == "[":
            self._next()
            count = int(self._expect("int").text)
            self._expect("word", "x")
            element = self.parse_type()
            self._expect("punct", "]")
            base = ArrayType(element, count)
        else:
            raise self._error("expected a type")
        while self._accept("punct", "*"):
            base = PointerType(base)
        return base

    # -- module level ---------------------------------------------------------
    def parse_module(self) -> Module:
        """Parse the whole module and return it."""
        while self._peek().kind != "eof":
            token = self._peek()
            if token.kind == "global":
                self._parse_global()
            elif token.kind == "word" and token.text == "define":
                self._parse_function(define=True)
            elif token.kind == "word" and token.text == "declare":
                self._parse_function(define=False)
            else:
                raise self._error("expected 'define', 'declare' or a global")
        return self.module

    def _parse_global(self) -> None:
        name = self._next().text[1:]
        self._expect("punct", "=")
        kind = self._expect("word").text
        if kind not in ("global", "constant"):
            raise self._error("expected 'global' or 'constant'")
        value_type = self.parse_type()
        initializer = None
        token = self._peek()
        if token.kind in ("int", "float") or (token.kind == "word" and token.text in ("undef", "null", "true", "false")):
            initializer = self._parse_constant(value_type)
        self.module.add_global(
            GlobalVariable(name, value_type, initializer, is_constant=(kind == "constant"))
        )

    def _parse_constant(self, type_: Type) -> Value:
        token = self._next()
        if token.kind == "int":
            if not isinstance(type_, IntType):
                raise ParseError(f"integer literal for non-integer type {type_}", token.line, token.column)
            return ConstantInt(type_, int(token.text))
        if token.kind == "float":
            return ConstantFloat(FloatType(), float(token.text))
        if token.kind == "word" and token.text == "true":
            return ConstantInt(IntType(1), 1)
        if token.kind == "word" and token.text == "false":
            return ConstantInt(IntType(1), 0)
        if token.kind == "word" and token.text == "null":
            if not isinstance(type_, PointerType):
                raise ParseError("'null' requires a pointer type", token.line, token.column)
            return ConstantPointerNull(type_)
        if token.kind == "word" and token.text == "undef":
            return UndefValue(type_)
        raise ParseError(f"expected a constant, found {token.text!r}", token.line, token.column)

    # -- functions ---------------------------------------------------------------
    def _parse_function(self, define: bool) -> None:
        self._next()  # 'define' or 'declare'
        return_type = self.parse_type()
        name_token = self._expect("global")
        name = name_token.text[1:]
        self._expect("punct", "(")
        param_types: List[Type] = []
        param_names: List[str] = []
        while not self._accept("punct", ")"):
            if param_types:
                self._expect("punct", ",")
            param_types.append(self.parse_type())
            local = self._accept("local")
            param_names.append(local.text[1:] if local else f"arg{len(param_names)}")
        attributes = []
        while self._peek().kind == "word" and self._peek().text in ("readonly", "readnone", "nounwind"):
            attributes.append(self._next().text)
        function = Function(name, FunctionType(return_type, param_types), param_names, attributes)
        self.module.add_function(function)
        if not define:
            return
        self._expect("punct", "{")
        self._parse_body(function)
        self._expect("punct", "}")

    def _parse_body(self, function: Function) -> None:
        values: Dict[str, Value] = {f"%{a.name}": a for a in function.args}
        forwards: Dict[str, _ForwardRef] = {}
        block: Optional[BasicBlock] = None

        def lookup_local(name: str, type_: Type) -> Value:
            if name in values:
                return values[name]
            if name not in forwards:
                forwards[name] = _ForwardRef(type_, name[1:])
            return forwards[name]

        def define_value(name: str, value: Value) -> None:
            if name in values:
                raise ParseError(f"redefinition of {name}")
            values[name] = value

        self._lookup_local = lookup_local  # used by operand helpers
        self._locals = values

        while True:
            token = self._peek()
            if token.kind == "label":
                self._next()
                block = BasicBlock(token.text[:-1], parent=function)
                function.blocks.append(block)
                define_value(f"%{block.name}", block)
            elif token.kind == "punct" and token.text == "}":
                break
            elif token.kind == "eof":
                raise self._error("unexpected end of file inside function body")
            else:
                if block is None:
                    block = BasicBlock("entry", parent=function)
                    function.blocks.append(block)
                    define_value(f"%{block.name}", block)
                inst, result_name = self._parse_instruction()
                block.append(inst)
                if result_name is not None:
                    inst.name = result_name[1:]
                    define_value(result_name, inst)

        # Resolve forward references.
        for name, placeholder in forwards.items():
            if name not in values:
                raise ParseError(f"use of undefined value {name}")
            resolved = values[name]
            for inst in function.instructions():
                inst.replace_operand(placeholder, resolved)

    # -- operands -----------------------------------------------------------
    def _parse_operand(self, type_: Type) -> Value:
        """Parse an operand whose type is already known."""
        token = self._peek()
        if token.kind == "local":
            self._next()
            return self._lookup_local(token.text, type_)
        if token.kind == "global":
            self._next()
            name = token.text[1:]
            if name in self.module.globals:
                return self.module.globals[name]
            if name in self.module.functions:
                return self.module.functions[name]
            raise ParseError(f"unknown global @{name}", token.line, token.column)
        return self._parse_constant(type_)

    def _parse_typed_operand(self) -> Tuple[Type, Value]:
        type_ = self.parse_type()
        return type_, self._parse_operand(type_)

    def _parse_label_operand(self) -> Value:
        self._expect("word", "label")
        token = self._expect("local")
        return self._lookup_local(token.text, LabelType())

    # -- instructions ---------------------------------------------------------
    def _parse_instruction(self) -> Tuple[Instruction, Optional[str]]:
        token = self._peek()
        result_name: Optional[str] = None
        if token.kind == "local":
            result_name = self._next().text
            self._expect("punct", "=")
        opcode_token = self._expect("word")
        opcode = opcode_token.text
        inst = self._parse_opcode(opcode)
        return inst, result_name

    def _parse_opcode(self, opcode: str) -> Instruction:
        if opcode in BINARY_OPS:
            type_, lhs = self._parse_typed_operand()
            self._expect("punct", ",")
            rhs = self._parse_operand(type_)
            return BinaryOperator(opcode, lhs, rhs)
        if opcode == "icmp":
            predicate = self._expect("word").text
            if predicate not in ICMP_PREDICATES:
                raise self._error(f"unknown icmp predicate {predicate!r}")
            type_, lhs = self._parse_typed_operand()
            self._expect("punct", ",")
            rhs = self._parse_operand(type_)
            return ICmp(predicate, lhs, rhs)
        if opcode == "select":
            cond_type, cond = self._parse_typed_operand()
            self._expect("punct", ",")
            true_type, if_true = self._parse_typed_operand()
            self._expect("punct", ",")
            _, if_false = self._parse_typed_operand()
            return Select(cond, if_true, if_false)
        if opcode in CAST_OPS:
            _, value = self._parse_typed_operand()
            self._expect("word", "to")
            to_type = self.parse_type()
            return Cast(opcode, value, to_type)
        if opcode == "alloca":
            allocated = self.parse_type()
            count = None
            if self._accept("punct", ","):
                _, count = self._parse_typed_operand()
            return Alloca(allocated, count)
        if opcode == "load":
            self.parse_type()  # result type (redundant with pointer type)
            self._expect("punct", ",")
            _, pointer = self._parse_typed_operand()
            return Load(pointer)
        if opcode == "store":
            _, value = self._parse_typed_operand()
            self._expect("punct", ",")
            _, pointer = self._parse_typed_operand()
            return Store(value, pointer)
        if opcode == "getelementptr":
            source_type = self.parse_type()
            self._expect("punct", ",")
            _, pointer = self._parse_typed_operand()
            indices = []
            while self._accept("punct", ","):
                _, index = self._parse_typed_operand()
                indices.append(index)
            return GetElementPtr(source_type, pointer, indices)
        if opcode == "phi":
            type_ = self.parse_type()
            incoming = []
            while True:
                self._expect("punct", "[")
                value = self._parse_operand(type_)
                self._expect("punct", ",")
                label_token = self._expect("local")
                block = self._lookup_local(label_token.text, LabelType())
                self._expect("punct", "]")
                incoming.append((value, block))
                if not self._accept("punct", ","):
                    break
            return Phi(type_, incoming)
        if opcode == "call":
            return_type = self.parse_type()
            callee_token = self._expect("global")
            callee_name = callee_token.text[1:]
            if callee_name not in self.module.functions:
                raise ParseError(f"call to unknown function @{callee_name}",
                                 callee_token.line, callee_token.column)
            callee = self.module.functions[callee_name]
            self._expect("punct", "(")
            args = []
            while not self._accept("punct", ")"):
                if args:
                    self._expect("punct", ",")
                _, arg = self._parse_typed_operand()
                args.append(arg)
            return Call(callee, args, return_type)
        if opcode == "br":
            if self._peek().kind == "word" and self._peek().text == "label":
                target = self._parse_label_operand()
                return Branch(target)
            _, cond = self._parse_typed_operand()
            self._expect("punct", ",")
            if_true = self._parse_label_operand()
            self._expect("punct", ",")
            if_false = self._parse_label_operand()
            return Branch(cond, if_true, if_false)
        if opcode == "ret":
            type_ = self.parse_type()
            if isinstance(type_, VoidType):
                return Ret(None)
            return Ret(self._parse_operand(type_))
        if opcode == "unreachable":
            return Unreachable()
        raise self._error(f"unknown opcode {opcode!r}")


def parse_module(source: str, name: str = "module") -> Module:
    """Parse IR source text into a :class:`~repro.ir.module.Module`."""
    return Parser(source, name).parse_module()


def parse_function(source: str, name: str = "module") -> Function:
    """Parse source text containing exactly one function and return it."""
    module = parse_module(source, name)
    defined = module.defined_functions()
    if len(defined) != 1:
        raise ParseError(f"expected exactly one function definition, found {len(defined)}")
    return defined[0]


__all__ = ["parse_module", "parse_function", "Parser", "tokenize"]
