"""Instruction classes for the LLVM-like IR.

Each instruction is itself a :class:`~repro.ir.values.Value` (its result),
holds an ordered list of operand values, and knows which basic block it
lives in.  Operand edges reference :class:`Value` objects directly; there
is no separate use-list — passes that need def-use information obtain it
from :func:`repro.analysis.usedef.users_of` or scan the function.

Supported opcodes closely follow LLVM's integer subset:

* binary arithmetic: ``add sub mul sdiv udiv srem urem and or xor shl lshr ashr``
  plus float variants ``fadd fsub fmul fdiv``
* comparisons: ``icmp`` with ten predicates
* ``select``, casts (``zext sext trunc bitcast ptrtoint inttoptr``)
* memory: ``alloca load store getelementptr``
* control flow: ``br`` (conditional/unconditional), ``ret``, ``unreachable``
* ``phi`` and ``call``
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .types import IntType, PointerType, Type, VoidType
from .values import Value

#: Opcodes of integer binary operators.
INT_BINARY_OPS = (
    "add",
    "sub",
    "mul",
    "sdiv",
    "udiv",
    "srem",
    "urem",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
)

#: Opcodes of floating point binary operators.
FLOAT_BINARY_OPS = ("fadd", "fsub", "fmul", "fdiv")

#: All binary operator opcodes.
BINARY_OPS = INT_BINARY_OPS + FLOAT_BINARY_OPS

#: Binary operators that commute (used by normalization and GVN).
COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})

#: icmp predicates.
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")

#: Cast opcodes.
CAST_OPS = ("zext", "sext", "trunc", "bitcast", "ptrtoint", "inttoptr")

#: Maps a predicate to the predicate with swapped operands.
SWAPPED_PREDICATE = {
    "eq": "eq",
    "ne": "ne",
    "slt": "sgt",
    "sle": "sge",
    "sgt": "slt",
    "sge": "sle",
    "ult": "ugt",
    "ule": "uge",
    "ugt": "ult",
    "uge": "ule",
}

#: Maps a predicate to its logical negation.
NEGATED_PREDICATE = {
    "eq": "ne",
    "ne": "eq",
    "slt": "sge",
    "sle": "sgt",
    "sgt": "sle",
    "sge": "slt",
    "ult": "uge",
    "ule": "ugt",
    "ugt": "ule",
    "uge": "ult",
}


class Instruction(Value):
    """Base class of all instructions.

    Attributes
    ----------
    opcode:
        The instruction's opcode string (``"add"``, ``"load"``, ...).
    operands:
        The ordered list of operand :class:`Value` objects.  Mutating this
        list in place (e.g. during replace-all-uses) is permitted.
    parent:
        The :class:`~repro.ir.module.BasicBlock` containing the instruction,
        or ``None`` while detached.
    """

    __slots__ = ("opcode", "operands", "parent")

    def __init__(self, opcode: str, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name)
        self.opcode = opcode
        self.operands: List[Value] = list(operands)
        self.parent = None

    # -- classification -------------------------------------------------
    def is_terminator(self) -> bool:
        """Return ``True`` for instructions that end a basic block."""
        return isinstance(self, (Branch, Ret, Unreachable))

    def has_result(self) -> bool:
        """Return ``True`` if the instruction defines an SSA register."""
        return not isinstance(self.type, VoidType)

    def may_read_memory(self) -> bool:
        """Conservative: does executing this instruction read memory?"""
        if isinstance(self, Load):
            return True
        if isinstance(self, Call):
            return not self.is_readnone()
        return False

    def may_write_memory(self) -> bool:
        """Conservative: does executing this instruction write memory?"""
        if isinstance(self, Store):
            return True
        if isinstance(self, Call):
            return not (self.is_readnone() or self.is_readonly())
        return False

    def has_side_effects(self) -> bool:
        """Return ``True`` if the instruction cannot be freely removed.

        Stores, calls to non-``readnone`` functions and terminators are
        side-effecting.  ``alloca`` is treated as removable when unused.
        """
        if self.is_terminator():
            return True
        if isinstance(self, Store):
            return True
        if isinstance(self, Call):
            return not self.is_readnone()
        return False

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` among the operands.

        Returns the number of replacements made.
        """
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(op.ref() for op in self.operands)
        return f"<{self.opcode} {self.ref()} [{ops}]>"


class BinaryOperator(Instruction):
    """A two-operand arithmetic/logical instruction."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPS:
            raise ValueError(f"unknown binary opcode: {opcode}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPS


class ICmp(Instruction):
    """Integer/pointer comparison producing an ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        super().__init__("icmp", IntType(1), [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class Select(Instruction):
    """``select i1 %c, T %a, T %b`` — a value-level conditional."""

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = ""):
        super().__init__("select", if_true.type, [cond, if_true, if_false], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def if_true(self) -> Value:
        return self.operands[1]

    @property
    def if_false(self) -> Value:
        return self.operands[2]


class Cast(Instruction):
    """A value cast: ``zext``, ``sext``, ``trunc``, ``bitcast``, ...."""

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPS:
            raise ValueError(f"unknown cast opcode: {opcode}")
        super().__init__(opcode, to_type, [value], name)

    @property
    def value(self) -> Value:
        return self.operands[0]


class Alloca(Instruction):
    """Stack allocation; yields a pointer to fresh, non-aliased storage."""

    __slots__ = ("allocated_type",)

    def __init__(self, allocated_type: Type, count: Optional[Value] = None, name: str = ""):
        operands = [count] if count is not None else []
        super().__init__("alloca", PointerType(allocated_type), operands, name)
        self.allocated_type = allocated_type

    @property
    def count(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Load(Instruction):
    """Load a value of the pointee type from a pointer."""

    def __init__(self, pointer: Value, name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("load requires a pointer operand")
        super().__init__("load", pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Store a value through a pointer.  Produces no result."""

    def __init__(self, value: Value, pointer: Value):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("store requires a pointer operand")
        super().__init__("store", VoidType(), [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class GetElementPtr(Instruction):
    """Pointer arithmetic: compute the address of an element.

    The reproduction uses a simplified, single-index flavour over arrays and
    raw pointers: ``getelementptr T, T* %p, iN %idx`` computes
    ``%p + %idx`` elements.  That is sufficient for the workloads in the
    benchmark corpora and keeps the alias rules easy to state.
    """

    __slots__ = ("source_type",)

    def __init__(self, source_type: Type, pointer: Value, indices: Sequence[Value], name: str = ""):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("getelementptr requires a pointer operand")
        super().__init__("getelementptr", pointer.type, [pointer, *indices], name)
        self.source_type = source_type

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def indices(self) -> List[Value]:
        return self.operands[1:]


class Phi(Instruction):
    """SSA φ-node: selects a value according to the predecessor edge taken.

    ``incoming`` pairs each value with the predecessor *block* it flows in
    from.  Blocks are stored as operands too (they are values of label
    type), interleaved as ``[v0, b0, v1, b1, ...]``.
    """

    def __init__(self, type_: Type, incoming: Sequence[Tuple[Value, "Value"]] = (), name: str = ""):
        operands: List[Value] = []
        for value, block in incoming:
            operands.extend([value, block])
        super().__init__("phi", type_, operands, name)

    @property
    def incoming(self) -> List[Tuple[Value, Value]]:
        """List of ``(value, predecessor_block)`` pairs."""
        ops = self.operands
        return [(ops[i], ops[i + 1]) for i in range(0, len(ops), 2)]

    def add_incoming(self, value: Value, block: Value) -> None:
        """Append an incoming edge."""
        self.operands.extend([value, block])

    def incoming_for(self, block: Value) -> Optional[Value]:
        """Return the value flowing in from ``block``, or ``None``."""
        for value, pred in self.incoming:
            if pred is block:
                return value
        return None

    def remove_incoming(self, block: Value) -> None:
        """Drop the incoming edge from ``block`` if present."""
        ops = self.operands
        for i in range(0, len(ops), 2):
            if ops[i + 1] is block:
                del ops[i : i + 2]
                return

    def set_incoming(self, block: Value, value: Value) -> None:
        """Replace the value flowing in from ``block``."""
        ops = self.operands
        for i in range(0, len(ops), 2):
            if ops[i + 1] is block:
                ops[i] = value
                return
        raise KeyError(f"phi has no incoming edge from {block.name}")


class Call(Instruction):
    """A direct call to a function or external declaration."""

    def __init__(self, callee: Value, args: Sequence[Value], return_type: Type, name: str = ""):
        super().__init__("call", return_type, [callee, *args], name)

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return self.operands[1:]

    def _callee_attrs(self) -> frozenset:
        attrs = getattr(self.callee, "attributes", None)
        return attrs if attrs is not None else frozenset()

    def is_readonly(self) -> bool:
        """Does the callee promise not to write memory?"""
        return "readonly" in self._callee_attrs()

    def is_readnone(self) -> bool:
        """Does the callee promise not to access memory at all?"""
        return "readnone" in self._callee_attrs()


class Branch(Instruction):
    """Conditional or unconditional branch terminator."""

    def __init__(self, *args):
        if len(args) == 1:
            (target,) = args
            super().__init__("br", VoidType(), [target])
        elif len(args) == 3:
            cond, if_true, if_false = args
            super().__init__("br", VoidType(), [cond, if_true, if_false])
        else:
            raise TypeError("Branch takes either (target) or (cond, if_true, if_false)")

    @property
    def is_conditional(self) -> bool:
        return len(self.operands) == 3

    @property
    def condition(self) -> Value:
        if not self.is_conditional:
            raise AttributeError("unconditional branch has no condition")
        return self.operands[0]

    @property
    def targets(self) -> List[Value]:
        """Successor blocks, in (true, false) order for conditional branches."""
        if self.is_conditional:
            return [self.operands[1], self.operands[2]]
        return [self.operands[0]]

    def replace_target(self, old: Value, new: Value) -> None:
        """Redirect every edge to ``old`` towards ``new``."""
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new


class Ret(Instruction):
    """Return terminator, with or without a value."""

    def __init__(self, value: Optional[Value] = None):
        operands = [value] if value is not None else []
        super().__init__("ret", VoidType(), operands)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Unreachable(Instruction):
    """Marks statically unreachable control flow."""

    def __init__(self):
        super().__init__("unreachable", VoidType(), [])


__all__ = [
    "Instruction",
    "BinaryOperator",
    "ICmp",
    "Select",
    "Cast",
    "Alloca",
    "Load",
    "Store",
    "GetElementPtr",
    "Phi",
    "Call",
    "Branch",
    "Ret",
    "Unreachable",
    "INT_BINARY_OPS",
    "FLOAT_BINARY_OPS",
    "BINARY_OPS",
    "COMMUTATIVE_OPS",
    "ICMP_PREDICATES",
    "CAST_OPS",
    "SWAPPED_PREDICATE",
    "NEGATED_PREDICATE",
]
