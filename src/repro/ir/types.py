"""Type system for the LLVM-like IR.

The type language is a small subset of LLVM's: fixed-width integers,
pointers, a double-precision float type, arrays, functions, ``void`` and
``label``.  Types are immutable value objects; two structurally equal types
compare equal and hash equally, so they can be used as dictionary keys and
hash-consed freely.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class Type:
    """Base class of all IR types."""

    def is_integer(self) -> bool:
        """Return ``True`` if this is an integer type of any width."""
        return isinstance(self, IntType)

    def is_bool(self) -> bool:
        """Return ``True`` if this is the 1-bit integer type ``i1``."""
        return isinstance(self, IntType) and self.bits == 1

    def is_pointer(self) -> bool:
        """Return ``True`` if this is a pointer type."""
        return isinstance(self, PointerType)

    def is_float(self) -> bool:
        """Return ``True`` if this is the floating point type."""
        return isinstance(self, FloatType)

    def is_void(self) -> bool:
        """Return ``True`` if this is the ``void`` type."""
        return isinstance(self, VoidType)

    def is_first_class(self) -> bool:
        """Return ``True`` for types that SSA values may have."""
        return not isinstance(self, (VoidType, FunctionType, LabelType))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


class VoidType(Type):
    """The ``void`` type, used only as a function return type."""

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class LabelType(Type):
    """The type of basic blocks (branch targets)."""

    def __str__(self) -> str:
        return "label"

    def __eq__(self, other) -> bool:
        return isinstance(other, LabelType)

    def __hash__(self) -> int:
        return hash("label")


class IntType(Type):
    """A fixed-width integer type such as ``i1``, ``i8``, ``i32``, ``i64``."""

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits <= 0 or bits > 128:
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    def __str__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))

    @property
    def max_unsigned(self) -> int:
        """Largest value representable when interpreted as unsigned."""
        return (1 << self.bits) - 1

    @property
    def min_signed(self) -> int:
        """Smallest value representable when interpreted as signed."""
        return -(1 << (self.bits - 1))

    @property
    def max_signed(self) -> int:
        """Largest value representable when interpreted as signed."""
        return (1 << (self.bits - 1)) - 1


class FloatType(Type):
    """A double-precision floating point type (printed ``double``)."""

    def __str__(self) -> str:
        return "double"

    def __eq__(self, other) -> bool:
        return isinstance(other, FloatType)

    def __hash__(self) -> int:
        return hash("double")


class PointerType(Type):
    """A pointer to a pointee type."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def __eq__(self, other) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class ArrayType(Type):
    """A fixed-length array ``[count x element]``."""

    __slots__ = ("element", "count")

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))


class FunctionType(Type):
    """A function signature: return type plus parameter types."""

    __slots__ = ("return_type", "param_types", "vararg")

    def __init__(self, return_type: Type, param_types: Sequence[Type], vararg: bool = False):
        self.return_type = return_type
        self.param_types: Tuple[Type, ...] = tuple(param_types)
        self.vararg = vararg

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types)
        if self.vararg:
            params = f"{params}, ..." if params else "..."
        return f"{self.return_type} ({params})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
            and other.vararg == self.vararg
        )

    def __hash__(self) -> int:
        return hash(("func", self.return_type, self.param_types, self.vararg))


# Shared singletons for the common types.  Using them is optional (structural
# equality means a fresh ``IntType(32)`` is interchangeable with ``I32``) but
# keeps client code terse.
VOID = VoidType()
LABEL = LabelType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
DOUBLE = FloatType()


def ptr(pointee: Type) -> PointerType:
    """Convenience constructor for :class:`PointerType`."""
    return PointerType(pointee)


def int_type(bits: int) -> IntType:
    """Return the integer type of the given bit width."""
    return IntType(bits)


def truncate_unsigned(value: int, bits: int) -> int:
    """Reduce ``value`` modulo ``2**bits`` (two's complement bit pattern)."""
    return value & ((1 << bits) - 1)


def to_signed(value: int, bits: int) -> int:
    """Interpret the low ``bits`` bits of ``value`` as a signed integer."""
    value = truncate_unsigned(value, bits)
    if value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int) -> int:
    """Interpret ``value`` as an unsigned integer of the given width."""
    return truncate_unsigned(value, bits)
