"""Deep copying of functions and modules.

Cloning is used by the validation driver (keep the original function while
the optimizer mutates a copy), by the loop-unswitching pass (duplicate a
loop body) and by tests that want to compare a pass's output against a
pristine input.
"""

from __future__ import annotations

from typing import Dict, Optional

from .instructions import (
    Alloca,
    BinaryOperator,
    Branch,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .values import GlobalVariable, Value


def clone_instruction(inst: Instruction, value_map: Dict[Value, Value]) -> Instruction:
    """Clone one instruction, mapping operands through ``value_map``.

    Operands not present in the map (constants, globals, declarations,
    values defined outside the cloned region) are shared with the original.
    """

    def m(value: Value) -> Value:
        return value_map.get(value, value)

    if isinstance(inst, BinaryOperator):
        new = BinaryOperator(inst.opcode, m(inst.lhs), m(inst.rhs), inst.name)
    elif isinstance(inst, ICmp):
        new = ICmp(inst.predicate, m(inst.lhs), m(inst.rhs), inst.name)
    elif isinstance(inst, Select):
        new = Select(m(inst.condition), m(inst.if_true), m(inst.if_false), inst.name)
    elif isinstance(inst, Cast):
        new = Cast(inst.opcode, m(inst.value), inst.type, inst.name)
    elif isinstance(inst, Alloca):
        count = m(inst.count) if inst.count is not None else None
        new = Alloca(inst.allocated_type, count, inst.name)
    elif isinstance(inst, Load):
        new = Load(m(inst.pointer), inst.name)
    elif isinstance(inst, Store):
        new = Store(m(inst.value), m(inst.pointer))
    elif isinstance(inst, GetElementPtr):
        new = GetElementPtr(inst.source_type, m(inst.pointer), [m(i) for i in inst.indices], inst.name)
    elif isinstance(inst, Phi):
        new = Phi(inst.type, [(m(v), m(b)) for v, b in inst.incoming], inst.name)
    elif isinstance(inst, Call):
        new = Call(m(inst.callee), [m(a) for a in inst.args], inst.type, inst.name)
    elif isinstance(inst, Branch):
        if inst.is_conditional:
            new = Branch(m(inst.condition), m(inst.targets[0]), m(inst.targets[1]))
        else:
            new = Branch(m(inst.targets[0]))
    elif isinstance(inst, Ret):
        new = Ret(m(inst.value) if inst.value is not None else None)
    elif isinstance(inst, Unreachable):
        new = Unreachable()
    else:  # pragma: no cover - defensive
        raise TypeError(f"cannot clone instruction of type {type(inst).__name__}")
    return new


def clone_global(global_var: GlobalVariable) -> GlobalVariable:
    """Return a copy of a module-level global variable.

    The initializer constant is shared (constants are treated as
    immutable); the :class:`GlobalVariable` object itself — whose
    ``initializer``/``is_constant`` fields are mutable — is fresh, so a
    module holding the clone shares no mutable structure with the module
    holding the original.
    """
    return GlobalVariable(
        global_var.name,
        global_var.value_type,
        global_var.initializer,
        global_var.is_constant,
    )


def clone_function(function: Function, new_name: Optional[str] = None,
                   value_map: Optional[Dict[Value, Value]] = None) -> Function:
    """Return a deep copy of ``function``.

    Constants and module-level values (globals, declared functions) are
    shared; arguments, blocks and instructions are fresh objects.  A
    ``value_map`` seed remaps additional operands during cloning — the
    driver passes ``{old global: cloned global}`` so a cloned function
    references its own module's globals instead of the input module's.
    """
    clone = Function(
        new_name or function.name,
        function.function_type,
        [a.name for a in function.args],
        function.attributes,
    )
    value_map = dict(value_map) if value_map else {}
    for old_arg, new_arg in zip(function.args, clone.args):
        value_map[old_arg] = new_arg

    # First create all blocks so branch targets can be mapped.
    for block in function.blocks:
        new_block = BasicBlock(block.name, parent=clone)
        clone.blocks.append(new_block)
        value_map[block] = new_block

    # Clone instructions.  φ-nodes may reference values defined later, so
    # clone in two passes: create instructions, then fix forward references.
    pending_phis = []
    for block in function.blocks:
        new_block = value_map[block]
        for inst in block.instructions:
            new_inst = clone_instruction(inst, value_map)
            value_map[inst] = new_inst
            new_block.append(new_inst)
            if isinstance(inst, Phi):
                pending_phis.append((inst, new_inst))

    # Fix operands that were forward references at clone time (mostly φ
    # incoming values from back edges, but any operand ordering quirk too).
    for block in function.blocks:
        new_block = value_map[block]
        for old_inst, new_inst in zip(block.instructions, new_block.instructions):
            for i, operand in enumerate(old_inst.operands):
                mapped = value_map.get(operand, operand)
                if new_inst.operands[i] is not mapped:
                    new_inst.operands[i] = mapped
    return clone


def clone_globals_into(module: Module, new_module: Module) -> Dict[Value, Value]:
    """Clone every global of ``module`` into ``new_module``.

    Returns the ``{original: clone}`` map callers pass to
    :func:`clone_function` (or use to remap already-cloned bodies) so the
    new module's functions reference its own globals, never the input's.
    """
    global_map: Dict[Value, Value] = {}
    for global_var in module.globals.values():
        cloned = clone_global(global_var)
        global_map[global_var] = cloned
        new_module.add_global(cloned)
    return global_map


def clone_module(module: Module) -> Module:
    """Return a deep copy of a module (globals and functions cloned)."""
    new_module = Module(module.name)
    global_map = clone_globals_into(module, new_module)
    for function in module.functions.values():
        if function.is_declaration:
            new_module.add_function(function)
        else:
            new_module.add_function(clone_function(function, value_map=global_map))
    return new_module


__all__ = ["clone_instruction", "clone_function", "clone_global",
           "clone_globals_into", "clone_module"]
