"""Static analyses over the IR: CFG, dominators, loops, aliasing, def-use."""

from .alias import AliasAnalysis, AliasResult
from .cfg import (
    is_reducible,
    predecessor_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
    split_critical_edges,
)
from .dominators import DominatorTree, PostDominatorTree
from .loops import Loop, LoopInfo
from .manager import (
    AnalysisManager,
    FunctionAnalyses,
    compute_function_analyses,
    function_fingerprint,
)
from .usedef import UseDefInfo, has_users, users_of

__all__ = [
    "AliasAnalysis",
    "AliasResult",
    "AnalysisManager",
    "FunctionAnalyses",
    "compute_function_analyses",
    "function_fingerprint",
    "DominatorTree",
    "PostDominatorTree",
    "Loop",
    "LoopInfo",
    "UseDefInfo",
    "users_of",
    "has_users",
    "predecessor_map",
    "reachable_blocks",
    "reverse_postorder",
    "remove_unreachable_blocks",
    "is_reducible",
    "split_critical_edges",
]
