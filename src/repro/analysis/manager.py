"""Memoized per-function analyses shared across validation queries.

Building a value graph needs five analyses over the IR function —
predecessors, dominators, natural loops, gate formulas and memory-effect
summaries — none of which depend on the :class:`~repro.vgraph.graph.ValueGraph`
being built.  The stepwise validation pipeline builds every *interior*
function version twice (the "after" of step *i* is the "before" of step
*i+1*) and the bisecting strategy rebuilds the original version once per
probe, so recomputing the analyses for every build is pure waste.

:class:`AnalysisManager` memoizes one :class:`FunctionAnalyses` bundle per
function version.  Entries are keyed by the function's *fingerprint* (a
content hash of its printed IR) together with the object's identity: the
identity makes lookups for the common same-object case unambiguous, and
the fingerprint both invalidates the entry if a pass mutated the function
in place since it was cached and keeps a stale entry from being served to
a recycled ``id()``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from ..errors import IrreducibleCFGError, ValidationInternalError
from ..ir.module import Function
from ..ir.printer import print_function


def function_fingerprint(function: Function) -> str:
    """A content hash of a function's printed IR (stable across clones)."""
    return hashlib.sha256(print_function(function).encode("utf-8")).hexdigest()


class FunctionAnalyses:
    """The analysis bundle one value-graph build consumes."""

    __slots__ = ("function", "fingerprint", "preds", "dom", "loops", "gates",
                 "memory_effects")

    def __init__(self, function: Function, fingerprint: str, preds, dom, loops,
                 gates, memory_effects):
        self.function = function
        self.fingerprint = fingerprint
        self.preds = preds
        self.dom = dom
        self.loops = loops
        self.gates = gates
        self.memory_effects = memory_effects

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionAnalyses @{self.function.name} {self.fingerprint[:12]}>"


def compute_function_analyses(function: Function,
                              fingerprint: Optional[str] = None) -> FunctionAnalyses:
    """Compute the full analysis bundle for one function (no caching).

    Performs the same front-end checks as graph construction: declarations
    have nothing to analyse and irreducible control flow is rejected
    (§5.1), so a cached bundle always describes an analysable function.
    """
    # Imported lazily: ``repro.gated`` itself imports ``repro.analysis``
    # submodules, so a module-level import here would turn a direct
    # ``import repro.gated`` into a circular-import error.
    from ..gated.gates import GateAnalysis
    from ..gated.monadic import MemoryEffects
    from .cfg import is_reducible, predecessor_map
    from .dominators import DominatorTree
    from .loops import LoopInfo

    if function.is_declaration:
        raise ValidationInternalError(f"@{function.name} has no body to analyse")
    if not is_reducible(function):
        raise IrreducibleCFGError(f"@{function.name} has an irreducible CFG")

    dom = DominatorTree.compute(function)
    return FunctionAnalyses(
        function,
        fingerprint if fingerprint is not None else function_fingerprint(function),
        preds=predecessor_map(function),
        dom=dom,
        loops=LoopInfo.compute(function, dom),
        gates=GateAnalysis(function, dom),
        memory_effects=MemoryEffects(function),
    )


class AnalysisManager:
    """Memoizes :class:`FunctionAnalyses` across validation queries.

    One manager is meant to live for (at least) one multi-version
    validation job — a stepwise pipeline walk, a bisection, a whole-module
    run — so every distinct function version pays for its analyses once no
    matter how many graph builds consume them.  The ``computed``/``reused``
    counters are the evidence: reports surface them and the stepwise tests
    assert that interior versions are analysed once and reused.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, str], FunctionAnalyses] = {}
        #: Number of analysis bundles actually computed (cache misses).
        self.computed = 0
        #: Number of lookups answered from the cache.
        self.reused = 0

    def __len__(self) -> int:
        return len(self._cache)

    def analyses_for(self, function: Function) -> FunctionAnalyses:
        """The (memoized) analysis bundle for ``function``."""
        fingerprint = function_fingerprint(function)
        key = (id(function), fingerprint)
        bundle = self._cache.get(key)
        if bundle is not None:
            self.reused += 1
            return bundle
        bundle = compute_function_analyses(function, fingerprint)
        self.computed += 1
        # The bundle holds a strong reference to ``function``, so the id()
        # in the key cannot be recycled while the entry is alive.
        self._cache[key] = bundle
        return bundle

    def stats(self) -> Dict[str, int]:
        """Computed/reused/size counters as a plain dict (for reports)."""
        return {
            "analyses_computed": self.computed,
            "analyses_reused": self.reused,
            "analyses_cached": len(self._cache),
        }


__all__ = [
    "AnalysisManager",
    "FunctionAnalyses",
    "compute_function_analyses",
    "function_fingerprint",
]
