"""Memoized per-function analyses shared across validation queries.

Building a value graph needs five analyses over the IR function —
predecessors, dominators, natural loops, gate formulas and memory-effect
summaries — none of which depend on the :class:`~repro.vgraph.graph.ValueGraph`
being built.  The stepwise validation pipeline builds every *interior*
function version twice (the "after" of step *i* is the "before" of step
*i+1*) and the bisecting strategy rebuilds the original version once per
probe, so recomputing the analyses for every build is pure waste.

:class:`AnalysisManager` memoizes one :class:`FunctionAnalyses` bundle per
function version.  Entries are keyed by the function's *fingerprint* (a
content hash of its printed IR) together with the object's identity: the
identity makes lookups for the common same-object case unambiguous, and
the fingerprint both invalidates the entry if a pass mutated the function
in place since it was cached and keeps a stale entry from being served to
a recycled ``id()``.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..errors import IrreducibleCFGError, ValidationInternalError
from ..ir.module import Function
from ..ir.printer import print_function


def function_fingerprint(function: Function) -> str:
    """A content hash of a function's printed IR (stable across clones)."""
    return hashlib.sha256(print_function(function).encode("utf-8")).hexdigest()


class FingerprintTable:
    """One fingerprint memo shared by every checkpoint-fingerprint consumer.

    The planner (:func:`repro.validator.scheduler.plan.build_plan`), the
    chain-graph provider, the settle-phase fallback and the incremental
    differ all fingerprint the *same* checkpoint function objects;
    historically each kept its own per-run memo, so one pipeline's
    checkpoints were re-hashed once per consumer.  This table is the
    single shared memo: entries are keyed weakly by function identity, so
    a retired version's entry dies with the version and a recycled
    ``id()`` can never alias a stale hash.

    Only *known-immutable* versions may be remembered globally — the
    changed-pass checkpoints of
    :meth:`~repro.transforms.pass_manager.PassManager.run_with_snapshots`
    are private clones nothing mutates afterwards, whereas an unchanged
    step's snapshot aliases the caller's own function object, which the
    caller may mutate between runs.  Callers holding a maybe-mutable
    function use :meth:`fingerprint` (memo lookup, compute on miss,
    **no** store); callers holding an immutable version use
    :meth:`remember`.
    """

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: "weakref.WeakKeyDictionary[Function, str]" = \
            weakref.WeakKeyDictionary()

    def __len__(self) -> int:
        return len(self._table)

    def get(self, function: Function) -> Optional[str]:
        """The memoized fingerprint for ``function``, or ``None``."""
        return self._table.get(function)

    def remember(self, function: Function) -> str:
        """Memoize and return ``function``'s fingerprint (immutable callers only)."""
        cached = self._table.get(function)
        if cached is None:
            cached = function_fingerprint(function)
            self._table[function] = cached
        return cached

    def fingerprint(self, function: Function) -> str:
        """``function``'s fingerprint via the memo, computed (not stored) on miss."""
        cached = self._table.get(function)
        return cached if cached is not None else function_fingerprint(function)


#: The process-wide checkpoint fingerprint table (see :class:`FingerprintTable`).
CHECKPOINT_FINGERPRINTS = FingerprintTable()


class FunctionAnalyses:
    """The analysis bundle one value-graph build consumes."""

    __slots__ = ("function", "fingerprint", "preds", "dom", "loops", "gates",
                 "memory_effects")

    def __init__(self, function: Function, fingerprint: str, preds, dom, loops,
                 gates, memory_effects):
        self.function = function
        self.fingerprint = fingerprint
        self.preds = preds
        self.dom = dom
        self.loops = loops
        self.gates = gates
        self.memory_effects = memory_effects

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionAnalyses @{self.function.name} {self.fingerprint[:12]}>"


def compute_function_analyses(function: Function,
                              fingerprint: Optional[str] = None) -> FunctionAnalyses:
    """Compute the full analysis bundle for one function (no caching).

    Performs the same front-end checks as graph construction: declarations
    have nothing to analyse and irreducible control flow is rejected
    (§5.1), so a cached bundle always describes an analysable function.
    """
    # Imported lazily: ``repro.gated`` itself imports ``repro.analysis``
    # submodules, so a module-level import here would turn a direct
    # ``import repro.gated`` into a circular-import error.
    from ..gated.gates import GateAnalysis
    from ..gated.monadic import MemoryEffects
    from .cfg import is_reducible, predecessor_map
    from .dominators import DominatorTree
    from .loops import LoopInfo

    if function.is_declaration:
        raise ValidationInternalError(f"@{function.name} has no body to analyse")
    if not is_reducible(function):
        raise IrreducibleCFGError(f"@{function.name} has an irreducible CFG")

    dom = DominatorTree.compute(function)
    return FunctionAnalyses(
        function,
        fingerprint if fingerprint is not None else function_fingerprint(function),
        preds=predecessor_map(function),
        dom=dom,
        loops=LoopInfo.compute(function, dom),
        gates=GateAnalysis(function, dom),
        memory_effects=MemoryEffects(function),
    )


class AnalysisManager:
    """Memoizes :class:`FunctionAnalyses` across validation queries.

    One manager is meant to live for (at least) one multi-version
    validation job — a stepwise pipeline walk, a bisection, a whole-module
    run — so every distinct function version pays for its analyses once no
    matter how many graph builds consume them.  The ``computed``/``reused``
    counters are the evidence: reports surface them and the stepwise tests
    assert that interior versions are analysed once and reused.

    ``max_entries`` bounds the cache for long-lived services: without a
    bound a manager shared across a whole corpus sweep holds a strong
    reference to *every* version it ever analysed (each bundle pins its
    function, blocks and instructions).  With a bound the manager becomes
    an LRU — lookups refresh an entry's recency, insertions evict the
    least recently used entry beyond the bound.  Stepwise validation
    consumes each checkpoint's analyses in pipeline order (the validated
    prefix grows monotonically and the "after" of step *i* is reused as
    the "before" of step *i+1*), so LRU order coincides with
    prefix-generation order: even ``max_entries=2`` preserves every
    stepwise reuse while old generations are released.  Eviction can never
    change a verdict — an evicted version is simply recomputed — only the
    ``analyses_computed``/``analyses_evicted`` counters.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._cache: "OrderedDict[Tuple[int, str], FunctionAnalyses]" = OrderedDict()
        #: LRU bound (``None`` = unbounded, the historical behavior).
        self.max_entries = max_entries
        #: Number of analysis bundles actually computed (cache misses).
        self.computed = 0
        #: Number of lookups answered from the cache.
        self.reused = 0
        #: Number of bundles dropped by the LRU bound.
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._cache)

    def analyses_for(self, function: Function) -> FunctionAnalyses:
        """The (memoized) analysis bundle for ``function``."""
        fingerprint = function_fingerprint(function)
        key = (id(function), fingerprint)
        bundle = self._cache.get(key)
        if bundle is not None:
            self.reused += 1
            self._cache.move_to_end(key)
            return bundle
        bundle = compute_function_analyses(function, fingerprint)
        self.computed += 1
        # The bundle holds a strong reference to ``function``, so the id()
        # in the key cannot be recycled while the entry is alive.
        self._cache[key] = bundle
        if self.max_entries is not None:
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
                self.evicted += 1
        return bundle

    def stats(self) -> Dict[str, int]:
        """Computed/reused/evicted/size counters as a plain dict (for reports)."""
        return {
            "analyses_computed": self.computed,
            "analyses_reused": self.reused,
            "analyses_evicted": self.evicted,
            "analyses_cached": len(self._cache),
        }


__all__ = [
    "AnalysisManager",
    "CHECKPOINT_FINGERPRINTS",
    "FingerprintTable",
    "FunctionAnalyses",
    "compute_function_analyses",
    "function_fingerprint",
]
