"""Natural-loop detection.

A natural loop is identified by a back edge ``latch → header`` where the
header dominates the latch; the loop body is every block that can reach
the latch without passing through the header.  Loops sharing a header are
merged into a single :class:`Loop` (as LLVM's ``LoopInfo`` does), and
loops are nested into a forest.

The loop analysis feeds LICM, loop deletion, loop unswitching and the
gated-SSA construction (μ-node placement at headers, η-nodes at exits).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.instructions import Phi
from ..ir.module import BasicBlock, Function
from .cfg import predecessor_map, reachable_blocks
from .dominators import DominatorTree


class Loop:
    """One natural loop.

    Attributes
    ----------
    header:
        The unique loop header block.
    blocks:
        All blocks of the loop, including the header and any nested loops.
    latches:
        Blocks with a back edge to the header.
    parent:
        The enclosing loop, or ``None`` for a top-level loop.
    children:
        Loops nested immediately inside this one.
    """

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: List[BasicBlock] = [header]
        self._block_ids: Set[int] = {id(header)}
        self.latches: List[BasicBlock] = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    def contains(self, block: BasicBlock) -> bool:
        """Is ``block`` part of this loop (including nested loops)?"""
        return id(block) in self._block_ids

    def add_block(self, block: BasicBlock) -> None:
        """Add a block to the loop body."""
        if id(block) not in self._block_ids:
            self._block_ids.add(id(block))
            self.blocks.append(block)

    @property
    def depth(self) -> int:
        """Nesting depth: 1 for top-level loops."""
        depth = 1
        parent = self.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        return depth

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if there is one."""
        preds = [p for p in self.header.predecessors() if not self.contains(p)]
        if len(preds) == 1:
            return preds[0]
        return None

    def exit_edges(self) -> List[tuple]:
        """Edges ``(inside_block, outside_block)`` leaving the loop."""
        edges = []
        for block in self.blocks:
            for successor in block.successors():
                if not self.contains(successor):
                    edges.append((block, successor))
        return edges

    def exit_blocks(self) -> List[BasicBlock]:
        """Distinct target blocks of the exit edges."""
        seen: Set[int] = set()
        result = []
        for _, outside in self.exit_edges():
            if id(outside) not in seen:
                seen.add(id(outside))
                result.append(outside)
        return result

    def header_phis(self) -> List[Phi]:
        """The φ-nodes at the loop header (the loop-carried variables)."""
        return self.header.phis()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header=%{self.header.name} blocks={len(self.blocks)} depth={self.depth}>"


class LoopInfo:
    """The loop forest of a function."""

    def __init__(self, loops: List[Loop], loop_of_block: Dict[int, Loop]):
        self.loops = loops
        self._loop_of_block = loop_of_block

    @classmethod
    def compute(cls, function: Function, dom: Optional[DominatorTree] = None) -> "LoopInfo":
        """Detect all natural loops of ``function``."""
        dom = dom or DominatorTree.compute(function)
        preds = predecessor_map(function)
        reachable = {id(b) for b in reachable_blocks(function)}

        loops_by_header: Dict[int, Loop] = {}
        for block in function.blocks:
            if id(block) not in reachable:
                continue
            for successor in block.successors():
                if dom.dominates(successor, block):
                    # Back edge block -> successor.
                    loop = loops_by_header.get(id(successor))
                    if loop is None:
                        loop = Loop(successor)
                        loops_by_header[id(successor)] = loop
                    loop.latches.append(block)
                    _collect_loop_body(loop, block, preds)

        loops = list(loops_by_header.values())
        # Establish nesting: a loop is a child of the smallest loop (other
        # than itself) that contains its header.
        for loop in loops:
            best: Optional[Loop] = None
            for candidate in loops:
                if candidate is loop:
                    continue
                if candidate.contains(loop.header):
                    if best is None or len(candidate.blocks) < len(best.blocks):
                        best = candidate
            loop.parent = best
            if best is not None:
                best.children.append(loop)

        # Innermost loop of each block.
        loop_of_block: Dict[int, Loop] = {}
        for loop in sorted(loops, key=lambda l: -len(l.blocks)):
            for block in loop.blocks:
                loop_of_block[id(block)] = loop
        return cls(loops, loop_of_block)

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``, or ``None``."""
        return self._loop_of_block.get(id(block))

    def top_level_loops(self) -> List[Loop]:
        """Loops that are not nested in any other loop."""
        return [loop for loop in self.loops if loop.parent is None]

    def loop_depth(self, block: BasicBlock) -> int:
        """Nesting depth of ``block`` (0 outside any loop)."""
        loop = self.loop_for(block)
        return loop.depth if loop is not None else 0

    def __len__(self) -> int:
        return len(self.loops)


def _collect_loop_body(loop: Loop, latch: BasicBlock,
                       preds: Dict[BasicBlock, List[BasicBlock]]) -> None:
    """Add to ``loop`` every block that reaches ``latch`` without the header."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if loop.contains(block):
            continue
        loop.add_block(block)
        for pred in preds.get(block, []):
            if not loop.contains(pred):
                stack.append(pred)


__all__ = ["Loop", "LoopInfo"]
