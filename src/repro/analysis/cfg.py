"""Control-flow-graph utilities.

These helpers work directly on :class:`~repro.ir.module.Function` objects;
the CFG is implicit in the blocks' terminators.  They are used by the
dominator computation, the loop analysis, gated-SSA construction, and by
several optimization passes.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.module import BasicBlock, Function


def successors(block: BasicBlock) -> List[BasicBlock]:
    """Successor blocks of ``block`` (in branch order)."""
    return block.successors()


def predecessor_map(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map each block to its list of predecessors (in layout order)."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in function.blocks}
    for block in function.blocks:
        for successor in block.successors():
            preds[successor].append(block)
    return preds


def reachable_blocks(function: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in depth-first preorder."""
    if not function.blocks:
        return []
    seen: Set[int] = set()
    order: List[BasicBlock] = []
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if id(block) in seen:
            continue
        seen.add(id(block))
        order.append(block)
        for successor in reversed(block.successors()):
            if id(successor) not in seen:
                stack.append(successor)
    return order


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Reachable blocks in reverse postorder (a topological-ish order)."""
    seen: Set[int] = set()
    postorder: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        seen.add(id(block))
        while stack:
            current, it = stack[-1]
            advanced = False
            for successor in it:
                if id(successor) not in seen:
                    seen.add(id(successor))
                    stack.append((successor, iter(successor.successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    if function.blocks:
        visit(function.entry)
    return list(reversed(postorder))


def remove_unreachable_blocks(function: Function) -> int:
    """Delete blocks not reachable from the entry.

    φ-nodes in remaining blocks lose the incoming entries that referred to
    deleted predecessors.  Returns the number of blocks removed.
    """
    reachable = {id(b) for b in reachable_blocks(function)}
    dead = [b for b in function.blocks if id(b) not in reachable]
    if not dead:
        return 0
    dead_ids = {id(b) for b in dead}
    for block in function.blocks:
        if id(block) in dead_ids:
            continue
        for phi in block.phis():
            for value, pred in list(phi.incoming):
                if id(pred) in dead_ids:
                    phi.remove_incoming(pred)
    for block in dead:
        function.remove_block(block)
    return len(dead)


def is_reducible(function: Function) -> bool:
    """Check whether the function's CFG is reducible.

    Uses iterative T1/T2 interval reduction on a copy of the edge set:
    remove self-loops (T1) and merge nodes with a unique predecessor into
    that predecessor (T2).  The CFG is reducible iff it collapses to a
    single node.  The paper's front end (and ours) rejects irreducible
    functions.
    """
    blocks = reachable_blocks(function)
    if not blocks:
        return True
    ids = {id(b): i for i, b in enumerate(blocks)}
    succ: Dict[int, Set[int]] = {i: set() for i in range(len(blocks))}
    pred: Dict[int, Set[int]] = {i: set() for i in range(len(blocks))}
    for block in blocks:
        for s in block.successors():
            if id(s) in ids:
                succ[ids[id(block)]].add(ids[id(s)])
                pred[ids[id(s)]].add(ids[id(block)])
    entry = ids[id(blocks[0])]
    alive = set(range(len(blocks)))
    changed = True
    while changed and len(alive) > 1:
        changed = False
        for node in list(alive):
            # T1: remove self loop.
            if node in succ[node]:
                succ[node].discard(node)
                pred[node].discard(node)
                changed = True
            # T2: merge node into its unique predecessor.
            if node != entry and len(pred[node]) == 1:
                parent = next(iter(pred[node]))
                for s in succ[node]:
                    pred[s].discard(node)
                    if s != parent:
                        succ[parent].add(s)
                        pred[s].add(parent)
                succ[parent].discard(node)
                alive.discard(node)
                succ.pop(node, None)
                pred.pop(node, None)
                changed = True
    return len(alive) == 1


def split_critical_edges(function: Function) -> int:
    """Split critical edges (multi-successor block → multi-predecessor block).

    Inserts a fresh block containing a single unconditional branch on each
    critical edge and rewires the relevant φ incoming entries.  Several
    passes (and gated-SSA construction) are simpler when no critical edges
    exist.  Returns the number of edges split.
    """
    from ..ir.instructions import Branch

    preds = predecessor_map(function)
    split_count = 0
    for block in list(function.blocks):
        successors_ = block.successors()
        if len(successors_) < 2:
            continue
        terminator = block.terminator
        for successor in successors_:
            if len(preds[successor]) < 2:
                continue
            new_block = function.add_block(f"{block.name}.split", after=block)
            new_block.append(Branch(successor))
            terminator.replace_target(successor, new_block)
            for phi in successor.phis():
                for value, pred in list(phi.incoming):
                    if pred is block:
                        phi.remove_incoming(pred)
                        phi.add_incoming(value, new_block)
            split_count += 1
            preds = predecessor_map(function)
    return split_count


__all__ = [
    "successors",
    "predecessor_map",
    "reachable_blocks",
    "reverse_postorder",
    "remove_unreachable_blocks",
    "is_reducible",
    "split_critical_edges",
]
