"""Def-use helpers.

The IR stores only the def→operand direction (instructions hold their
operand values); passes that need the reverse direction build a
:class:`UseDefInfo` snapshot or call the one-off helpers here.  At the
scale of the benchmark corpora a full function scan is cheap, and not
maintaining use lists removes a whole class of consistency bugs from the
optimizer.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.instructions import Instruction
from ..ir.module import Function
from ..ir.values import Value


def users_of(function: Function, value: Value) -> List[Instruction]:
    """All instructions in ``function`` that use ``value`` as an operand."""
    result = []
    for inst in function.instructions():
        if any(op is value for op in inst.operands):
            result.append(inst)
    return result


def has_users(function: Function, value: Value) -> bool:
    """Does any instruction use ``value``?"""
    for inst in function.instructions():
        if any(op is value for op in inst.operands):
            return True
    return False


class UseDefInfo:
    """A snapshot of the def→users map for a whole function.

    The snapshot is built once with a single pass and is *not* updated
    when the function is mutated; passes that rewrite the IR should either
    rebuild it or fall back to the one-off helpers.
    """

    def __init__(self, function: Function):
        self.function = function
        self._users: Dict[int, List[Instruction]] = {}
        for inst in function.instructions():
            for operand in inst.operands:
                self._users.setdefault(id(operand), []).append(inst)

    def users(self, value: Value) -> List[Instruction]:
        """Instructions using ``value`` (possibly with duplicates removed)."""
        seen = set()
        result = []
        for user in self._users.get(id(value), []):
            if id(user) not in seen:
                seen.add(id(user))
                result.append(user)
        return result

    def use_count(self, value: Value) -> int:
        """Number of operand slots referencing ``value``."""
        return len(self._users.get(id(value), []))

    def is_dead(self, inst: Instruction) -> bool:
        """Is ``inst`` a register definition that nothing uses?"""
        return inst.has_result() and self.use_count(inst) == 0


__all__ = ["users_of", "has_users", "UseDefInfo"]
