"""Basic alias analysis.

Reproduces the "simple non-aliasing rules" the paper relies on (§4):

* two pointers that originate from two distinct stack allocations may not
  alias;
* a stack allocation may not alias a function argument or a global (the
  fresh memory cannot have escaped yet);
* two distinct globals may not alias;
* two ``getelementptr`` with the same base pointer and *different constant*
  offsets may not alias; with the *same* offsets they must alias;
* a pointer must-aliases itself.

Everything else is ``MAY_ALIAS``.  The same logic is used both by the
optimizer (GVN load forwarding, DSE, LICM) and by the validator's
load/store rewrite rules, which is exactly the paper's setup: the rules in
the validator "can use the result of a may-alias analysis".
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from ..ir.instructions import Alloca, GetElementPtr
from ..ir.values import Argument, ConstantInt, GlobalVariable, Value


class AliasResult(enum.Enum):
    """Outcome of an alias query."""

    NO_ALIAS = "no"
    MAY_ALIAS = "may"
    MUST_ALIAS = "must"


def _strip_gep(pointer: Value) -> Tuple[Value, Optional[int], bool]:
    """Peel constant-offset GEPs off a pointer.

    Returns ``(base, offset, known)`` where ``offset`` is the accumulated
    constant element offset when every peeled GEP had constant indices
    (``known=True``), otherwise ``known=False`` and the offset is
    meaningless.
    """
    offset = 0
    known = True
    while isinstance(pointer, GetElementPtr):
        indices = pointer.indices
        if len(indices) == 1 and isinstance(indices[0], ConstantInt):
            offset += indices[0].value
        else:
            known = False
        pointer = pointer.pointer
    return pointer, offset, known


def _is_identified_object(value: Value) -> bool:
    """Pointers whose storage is distinct from any other identified object."""
    return isinstance(value, (Alloca, GlobalVariable))


class AliasAnalysis:
    """Stateless basic alias analysis (see module docstring)."""

    def alias(self, a: Value, b: Value) -> AliasResult:
        """Classify the relationship between two pointer values."""
        if a is b:
            return AliasResult.MUST_ALIAS

        base_a, off_a, known_a = _strip_gep(a)
        base_b, off_b, known_b = _strip_gep(b)

        if base_a is base_b:
            if known_a and known_b:
                if off_a == off_b:
                    return AliasResult.MUST_ALIAS
                return AliasResult.NO_ALIAS
            return AliasResult.MAY_ALIAS

        # Distinct identified objects never alias.
        if _is_identified_object(base_a) and _is_identified_object(base_b):
            return AliasResult.NO_ALIAS

        # Fresh stack memory has not escaped: it cannot alias arguments
        # or globals (accessed directly or via constant GEPs).
        if isinstance(base_a, Alloca) and isinstance(base_b, (Argument, GlobalVariable)):
            return AliasResult.NO_ALIAS
        if isinstance(base_b, Alloca) and isinstance(base_a, (Argument, GlobalVariable)):
            return AliasResult.NO_ALIAS

        return AliasResult.MAY_ALIAS

    def no_alias(self, a: Value, b: Value) -> bool:
        """Shorthand: is the pair definitely non-aliasing?"""
        return self.alias(a, b) is AliasResult.NO_ALIAS

    def must_alias(self, a: Value, b: Value) -> bool:
        """Shorthand: is the pair definitely the same address?"""
        return self.alias(a, b) is AliasResult.MUST_ALIAS


__all__ = ["AliasAnalysis", "AliasResult"]
