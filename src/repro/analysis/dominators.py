"""Dominator trees, dominance frontiers and post-dominators.

Implemented with the Cooper–Harvey–Kennedy iterative algorithm over the
reverse postorder numbering, which is simple and fast enough for the sizes
in the benchmark corpora.  Dominance frontiers are needed by mem2reg's
φ-placement; post-dominators by ADCE's control-dependence computation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.module import BasicBlock, Function
from .cfg import predecessor_map, reverse_postorder


class DominatorTree:
    """The dominator tree of a function's reachable CFG.

    Use :meth:`compute` to build one.  Unreachable blocks do not appear in
    the tree at all; :meth:`dominates` returns ``False`` for them.
    """

    def __init__(self, function: Function, idom: Dict[int, Optional[BasicBlock]],
                 order: List[BasicBlock]):
        self.function = function
        self._idom = idom
        self._order = order
        self._index = {id(b): i for i, b in enumerate(order)}
        self._children: Dict[int, List[BasicBlock]] = {id(b): [] for b in order}
        for block in order:
            parent = idom.get(id(block))
            if parent is not None and parent is not block:
                self._children[id(parent)].append(block)

    # -- construction ------------------------------------------------------
    @classmethod
    def compute(cls, function: Function) -> "DominatorTree":
        """Compute the dominator tree of ``function``."""
        order = reverse_postorder(function)
        return cls(function, _compute_idoms(order, predecessor_map(function)), order)

    @classmethod
    def compute_post(cls, function: Function) -> "PostDominatorTree":
        """Compute the post-dominator forest of ``function``."""
        return PostDominatorTree.compute(function)

    # -- queries -------------------------------------------------------------
    def reachable_blocks(self) -> List[BasicBlock]:
        """Blocks reachable from entry, in reverse postorder."""
        return list(self._order)

    def idom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate dominator of ``block`` (``None`` for the entry)."""
        parent = self._idom.get(id(block))
        if parent is block:
            return None
        return parent

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        """Blocks immediately dominated by ``block``."""
        return list(self._children.get(id(block), []))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does ``a`` dominate ``b``?  (Every block dominates itself.)"""
        if id(a) not in self._index or id(b) not in self._index:
            return False
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            parent = self._idom.get(id(node))
            if parent is node:
                return False
            node = parent
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does ``a`` dominate ``b`` and ``a is not b``?"""
        return a is not b and self.dominates(a, b)

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """The dominance frontier of every reachable block."""
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in self._order}
        preds = predecessor_map(self.function)
        for block in self._order:
            block_preds = [p for p in preds[block] if id(p) in self._index]
            if len(block_preds) < 2:
                continue
            idom_block = self._idom[id(block)]
            for pred in block_preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not idom_block:
                    frontier[runner].add(block)
                    next_runner = self._idom.get(id(runner))
                    if next_runner is runner:
                        break
                    runner = next_runner
        return frontier

    def dominator_tree_preorder(self) -> List[BasicBlock]:
        """Blocks in a preorder walk of the dominator tree."""
        result: List[BasicBlock] = []
        if not self._order:
            return result
        stack = [self._order[0]]
        while stack:
            block = stack.pop()
            result.append(block)
            stack.extend(reversed(self.children(block)))
        return result


class PostDominatorTree:
    """Post-dominator relation, computed over the reversed CFG.

    Functions may have several exit blocks (multiple ``ret`` / ``unreachable``),
    so the computation uses a virtual exit node that every real exit leads to.
    """

    def __init__(self, ipostdom: Dict[int, Optional[BasicBlock]], order: List[BasicBlock]):
        self._ipdom = ipostdom
        self._index = {id(b): i for i, b in enumerate(order)}

    @classmethod
    def compute(cls, function: Function) -> "PostDominatorTree":
        """Compute post-dominators for ``function``."""
        blocks = reverse_postorder(function)
        exits = [b for b in blocks if not b.successors()]
        preds = predecessor_map(function)
        # Successors in the reversed graph are the original predecessors.
        reversed_succ: Dict[int, List[BasicBlock]] = {id(b): list(preds[b]) for b in blocks}
        reversed_pred: Dict[int, List[BasicBlock]] = {id(b): list(b.successors()) for b in blocks}

        # Postorder of the reversed CFG starting from the virtual exit.
        seen: Set[int] = set()
        postorder: List[BasicBlock] = []

        def visit(start: BasicBlock) -> None:
            stack = [(start, iter(reversed_succ[id(start)]))]
            seen.add(id(start))
            while stack:
                current, it = stack[-1]
                advanced = False
                for nxt in it:
                    if id(nxt) not in seen:
                        seen.add(id(nxt))
                        stack.append((nxt, iter(reversed_succ[id(nxt)])))
                        advanced = True
                        break
                if not advanced:
                    postorder.append(current)
                    stack.pop()

        for exit_block in exits:
            if id(exit_block) not in seen:
                visit(exit_block)
        order = list(reversed(postorder))

        ipdom: Dict[int, Optional[BasicBlock]] = {}
        index = {id(b): i for i, b in enumerate(order)}
        # Virtual exit: exits have themselves as (temporary) roots.
        for exit_block in exits:
            ipdom[id(exit_block)] = exit_block

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[id(a)] > index[id(b)]:
                    a = ipdom[id(a)]
                while index[id(b)] > index[id(a)]:
                    b = ipdom[id(b)]
            return a

        changed = True
        while changed:
            changed = False
            for block in order:
                if block in exits:
                    continue
                candidates = [p for p in reversed_pred[id(block)]
                              if id(p) in ipdom and id(p) in index]
                if not candidates:
                    continue
                new_ipdom = candidates[0]
                for other in candidates[1:]:
                    new_ipdom = intersect(new_ipdom, other)
                if ipdom.get(id(block)) is not new_ipdom:
                    ipdom[id(block)] = new_ipdom
                    changed = True
        return cls(ipdom, order)

    def ipostdom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate post-dominator (``None`` for exit blocks/unreachable)."""
        parent = self._ipdom.get(id(block))
        if parent is block:
            return None
        return parent

    def postdominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Does ``a`` post-dominate ``b``?"""
        if id(a) not in self._index or id(b) not in self._index:
            return False
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            parent = self._ipdom.get(id(node))
            if parent is node:
                return False
            node = parent
        return False


def _compute_idoms(order: List[BasicBlock], preds: Dict[BasicBlock, List[BasicBlock]]
                   ) -> Dict[int, Optional[BasicBlock]]:
    """Cooper–Harvey–Kennedy iterative immediate-dominator computation."""
    if not order:
        return {}
    index = {id(b): i for i, b in enumerate(order)}
    entry = order[0]
    idom: Dict[int, Optional[BasicBlock]] = {id(entry): entry}

    def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            candidates = [p for p in preds[block] if id(p) in idom and id(p) in index]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(id(block)) is not new_idom:
                idom[id(block)] = new_idom
                changed = True
    return idom


__all__ = ["DominatorTree", "PostDominatorTree"]
