#!/usr/bin/env python3
"""Incremental revalidation: pay only for the pipeline suffix you changed.

A cold stepwise sweep validates every adjacent checkpoint pair of every
function from scratch.  But the common real workload is *re*-validation
after a small change — here, swapping the last two passes of the paper
pipeline.  A long-lived :class:`~repro.validator.watch.Revalidator`
retains, per function, the previous run's checkpoint fingerprints, the
adjacent-pair cache keys and the constructed (never normalized) chain
value graph; the re-run then

* **adopts** every pair whose two checkpoint fingerprints are unchanged
  — answered from the cache under the previous plan's keys, never
  re-keyed, never re-validated (``pairs_skipped_unchanged``);
* **extends** the retained graph with only the dirtied versions, whose
  hash-consing re-reads every sub-term shared with the unchanged
  population (``subgraph_nodes_reused``), and normalizes a
  root-restricted clone against the dirty pairs' goals only.

Records are signature-identical to a cold run either way — CI enforces
it on all twelve corpora (``stepwise_guard.py --incremental-parity``) —
so what changes is only the work, which this example prints side by
side.  The same machinery sits behind ``config.incremental`` (routing
``llvm_md`` through a process-shared revalidator) and behind the
polling CLI::

    python -m repro.validator.watch my_module.ll --passes adce gvn dse

Run with::

    python examples/watch_mode.py [scale]
"""

import sys
from dataclasses import replace

from repro.bench import BENCHMARKS_BY_NAME, build_corpus
from repro.transforms import PAPER_PIPELINE
from repro.validator import DEFAULT_CONFIG, Revalidator, llvm_md

BENCHMARK = "gcc"
TWEAKED = PAPER_PIPELINE[:-2] + (PAPER_PIPELINE[-1], PAPER_PIPELINE[-2])


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    print(f"pipeline: {', '.join(PAPER_PIPELINE)}")
    print(f"tweaked:  {', '.join(TWEAKED)}  (corpus {BENCHMARK}, "
          f"scale {scale})\n")

    # The cold oracle: a fresh sweep of the tweaked pipeline.
    cold_module = build_corpus(BENCHMARKS_BY_NAME[BENCHMARK], scale=scale)
    _, cold = llvm_md(cold_module, TWEAKED, DEFAULT_CONFIG,
                      label=BENCHMARK, strategy="stepwise")

    # The incremental path: prime a revalidator with the original
    # pipeline, then revalidate the same module under the tweak.
    revalidator = Revalidator(replace(DEFAULT_CONFIG, incremental=True))
    module = build_corpus(BENCHMARKS_BY_NAME[BENCHMARK], scale=scale)
    revalidator.revalidate(module, PAPER_PIPELINE, label=BENCHMARK)
    _, warm = revalidator.revalidate(module, TWEAKED, label=BENCHMARK)
    revalidator.close()

    identical = [r.signature() for r in cold.records] == \
                [r.signature() for r in warm.records]
    print(f"record parity (verdicts, blame, kept prefixes): "
          f"{'IDENTICAL' if identical else 'DIVERGED (bug!)'}\n")

    cold_totals, warm_totals = cold.engine_totals(), warm.engine_totals()
    for key in ("rule_invocations", "nodes_built", "normalize_runs"):
        cold_value = cold_totals.get(key, 0)
        warm_value = warm_totals.get(key, 0)
        saved = 100.0 * (1.0 - warm_value / cold_value) if cold_value else 0.0
        print(f"  {key:<18} cold={cold_value:>7}  incremental={warm_value:>7}  "
              f"saved {saved:5.1f}%")
    shard = warm.shard_stats or {}
    print(f"\nreuse: {shard.get('pairs_skipped_unchanged', 0)} unchanged pairs "
          f"adopted from the previous plan, "
          f"{shard.get('subgraph_nodes_reused', 0)} retained graph nodes "
          f"re-read by the dirty rebuild, "
          f"{shard.get('functions_fully_cached', 0)} functions settled "
          f"without any fresh work")


if __name__ == "__main__":
    main()
