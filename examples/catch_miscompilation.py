#!/usr/bin/env python3
"""Catching miscompilations: fault-injected passes vs the validator.

Translation validation earns its keep when the optimizer is wrong.  This
example takes a small synthetic corpus, runs each of the fault-injection
passes from ``repro.transforms.buggy`` (an inverted branch, a dropped
store, alias-blind load forwarding, ...), and shows that:

* the reference interpreter observes a behaviour change (when the broken
  code path is actually reached), and
* the validator rejects every miscompiled function — without running it.

It then hides each injector *inside* an otherwise-correct pipeline and
uses the ``bisect`` and ``stepwise`` validation strategies to attribute
the rejection to the guilty pass — the validator as a miscompilation
*debugger*, not just a gatekeeper.  Finally it runs the correct pipeline
for comparison, where most functions validate.

Run with::

    python examples/catch_miscompilation.py
"""

from repro.bench import small_test_corpus
from repro.ir import Interpreter, clone_function, clone_module
from repro.transforms import ALL_BUGGY_PASSES, PAPER_PIPELINE, get_pass
from repro.validator import validate, validate_function_pipeline


def behavioural_difference(module, original, mutated) -> bool:
    """Does the interpreter observe different results on sample inputs?"""
    for base in [(3, 5, 7, 2, 9), (0, 1, 2, 3, 4), (-4, 11, 6, 1, 0)]:
        args = list(base[: len(original.args)])

        def run(function, mod):
            try:
                return Interpreter(mod).run(function, args).return_value
            except Exception as error:  # noqa: BLE001 - any runtime error counts
                return ("error", type(error).__name__)

        if run(original, module) != run(mutated, module):
            return True
    return False


def main() -> None:
    module = small_test_corpus(functions=6, seed=11)
    functions = module.defined_functions()

    print("=== fault-injected passes ===")
    caught = missed = 0
    for pass_name in ALL_BUGGY_PASSES:
        for function in functions:
            mutated = clone_function(function, new_name=f"{function.name}.bug")
            if not get_pass(pass_name)(mutated):
                continue  # this injector found nothing to break here
            result = validate(function, mutated)
            observed = behavioural_difference(module, function, mutated)
            status = "REJECTED" if not result.is_success else "accepted"
            if not result.is_success:
                caught += 1
            else:
                missed += 1
            print(f"{pass_name:24s} {function.name:8s} validator={status:8s} "
                  f"interpreter_diff={observed}")
    print(f"\nvalidator rejected {caught} of {caught + missed} injected mutations")
    print("(accepted mutations hit dead or unobservable code: the interpreter finds no"
          " behavioural difference for them either — see interpreter_diff above)\n")

    print("=== pass-level blame: which pass miscompiled? ===")
    for bug_pass in ALL_BUGGY_PASSES[:3]:
        pipeline = ("adce", "gvn", bug_pass, "dse")
        correct = wrong = 0
        for function in functions:
            for strategy in ("bisect", "stepwise"):
                _, record = validate_function_pipeline(
                    function, pipeline, strategy=strategy)
                if not record.transformed_by.get(bug_pass) or record.validated:
                    continue  # injector idle here, or the breakage is unobservable
                if record.blamed_pass == bug_pass:
                    correct += 1
                else:
                    wrong += 1
        verdict = f"{correct}/{correct + wrong} rejections blamed on it" if correct + wrong \
            else "never fired observably"
        print(f"{bug_pass:24s} hidden in adce|gvn|·|dse: {verdict}")
    print()

    print("=== correct pipeline, for comparison ===")
    validated = transformed = 0
    for function in functions:
        _, record = validate_function_pipeline(function, PAPER_PIPELINE)
        if record.transformed:
            transformed += 1
            if record.validated:
                validated += 1
    print(f"correct pipeline: {validated}/{transformed} transformed functions validated")


if __name__ == "__main__":
    main()
