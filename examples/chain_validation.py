#!/usr/bin/env python3
"""Chain-shared value graphs: one graph per checkpoint chain, not per pair.

The stepwise strategy checkpoints a function after every pass and
validates each *adjacent* checkpoint pair.  Naively that re-translates
every interior checkpoint twice (as the "after" of step *i* and the
"before" of step *i + 1*) and re-normalizes the largely identical shared
structure once per pair.  With ``config.chain_graphs`` (the default) the
driver instead hash-conses the WHOLE chain into one
:class:`~repro.vgraph.graph.ValueGraph` — unchanged sub-terms exist once
no matter how many checkpoints contain them — and normalizes it once
against every adjacent pair's goal roots, reading the per-pair verdicts
off the single normalized graph.  Verdicts, blame and kept prefixes are
byte-identical either way (CI enforces it on all twelve corpora); only
the work changes.

This example validates one corpus twice — per-pair and chain-shared — and
prints the verdict-parity check next to the construction/normalization
work each mode performed.

Run with::

    python examples/chain_validation.py [scale]
"""

import sys
from dataclasses import replace

from repro.bench import BENCHMARKS_BY_NAME, build_corpus, format_table
from repro.transforms import PAPER_PIPELINE
from repro.validator import DEFAULT_CONFIG, llvm_md

BENCHMARK = "perlbench"


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    print(f"pipeline: {', '.join(PAPER_PIPELINE)}  "
          f"(corpus {BENCHMARK}, scale {scale})\n")

    reports = {}
    for mode, chain_graphs in (("per-pair", False), ("chain-shared", True)):
        module = build_corpus(BENCHMARKS_BY_NAME[BENCHMARK], scale=scale)
        config = replace(DEFAULT_CONFIG, chain_graphs=chain_graphs)
        _, report = llvm_md(module, PAPER_PIPELINE, config,
                            label=BENCHMARK, strategy="stepwise")
        reports[mode] = report

    per_pair, chained = reports["per-pair"], reports["chain-shared"]
    identical = [r.signature() for r in per_pair.records] == \
                [r.signature() for r in chained.records]
    print(f"record parity (verdicts, blame, kept prefixes): "
          f"{'IDENTICAL' if identical else 'DIVERGED (bug!)'}\n")

    rows = []
    for mode, report in reports.items():
        totals = report.engine_totals()
        rows.append({
            "mode": mode,
            "validated": f"{report.validated_functions}/{report.transformed_functions}",
            "nodes built": totals.get("nodes_built", 0),
            "rule invocations": totals.get("rule_invocations", 0),
            "normalize runs": totals.get("normalize_runs", 0),
            "validation time (s)": round(report.total_time, 2),
        })
    print(format_table(rows, title="Identical verdicts, less work"))

    chain_totals = chained.chain_totals()
    if chain_totals.get("chains"):
        built = chain_totals["chain_nodes_built"]
        baseline = chain_totals["chain_pair_baseline_nodes"]
        print(f"\n{chain_totals['chains']} chain graphs held "
              f"{chain_totals['chain_versions']} checkpoint versions; "
              f"construction built {built} nodes where per-pair graphs "
              f"would have rebuilt ~{baseline} "
              f"({100.0 * (1 - built / baseline):.0f}% shared), and "
              f"{chain_totals['chain_normalizations_saved']} normalization "
              f"runs were saved outright.")


if __name__ == "__main__":
    main()
