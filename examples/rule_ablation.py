#!/usr/bin/env python3
"""Rewrite-rule ablation: how much does each rule group buy?

Reproduces miniature versions of the paper's Figures 6–8: validate a
single optimization (GVN, LICM or SCCP) under increasing sets of
normalization rules and print the validation rate per rule set, as an
ASCII bar chart per benchmark.

Run with::

    python examples/rule_ablation.py [gvn|licm|sccp] [scale]
"""

import sys

from repro.bench import figure6, figure7, figure8, format_grouped_bars

RUNNERS = {"gvn": figure6, "licm": figure7, "sccp": figure8}


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "gvn"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    if which not in RUNNERS:
        raise SystemExit(f"unknown optimization {which!r}; pick one of {sorted(RUNNERS)}")
    benchmarks = ("sqlite", "bzip2", "hmmer", "lbm")
    print(f"rule ablation for {which} (scale {scale}, benchmarks: {', '.join(benchmarks)})\n")
    results = RUNNERS[which](scale=scale, benchmarks=benchmarks)
    print(format_grouped_bars(results, title=f"validated fraction of {which}-transformed functions"))


if __name__ == "__main__":
    main()
