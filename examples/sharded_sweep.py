#!/usr/bin/env python3
"""Corpus-scale validation: sharded stepwise sweeps with a persistent cache.

This example shows the two scaling layers the driver grew on top of the
paper's per-function validator:

* **sharding** — ``validate_module_batch`` flattens the per-pass adjacent
  checkpoint pairs of *all* functions of *all* modules into one
  deduplicated work queue and fans it out over a process pool
  (``config.concurrency``), then reassembles per-function verdicts, blame
  and kept prefixes identical to the serial path;
* **persistence** — with ``config.cache_dir`` set, every proved pair is
  saved to a content-addressed on-disk cache, so a second sweep (a CI
  re-run, a nightly job) answers from disk instead of re-proving
  anything;
* **backend selection** — ``config.executor`` picks the scheduling
  backend: ``"serial"``, ``"pool"`` (the process-pool default when
  ``concurrency > 1``), ``"wave"`` (speculative pipeline-position
  waves) or ``"steal"`` (persistent work-stealing pool).  One section
  sweeps a *high-rejection* pipeline (one pass deliberately
  miscompiles) through the eager pool schedule and through waves: the
  wave backend cancels the later pairs of every function whose pair
  already rejected, so it answers measurably fewer queries for
  byte-identical per-function records;
* **work stealing + the sqlite proof store** — the final section runs
  the same cold/warm cycle with ``executor="steal"`` and
  ``cache_backend="sqlite"``: idle workers steal queued items from the
  most-loaded peer (``items_stolen`` / ``steal_attempts``), the store
  flushes proved pairs incrementally instead of rewriting one JSON
  blob (``store_flushes``), and the warm run faults only the rows it
  actually consults (``store_lazy_loads``).

Run with::

    python examples/sharded_sweep.py [scale]

``scale`` (default 0.3) multiplies every corpus's function count.
"""

import os
import sys
import tempfile
import time
from dataclasses import replace

from repro.bench import BENCHMARKS_BY_NAME, build_corpus, format_table
from repro.validator import DEFAULT_CONFIG, validate_module_batch

BENCHMARKS = ("sqlite", "bzip2", "hmmer", "mcf", "lbm")

#: A pipeline with an injected miscompilation: plenty of rejections, so
#: speculative wave scheduling has doomed pairs to cancel.
BUGGY_PIPELINE = ("adce", "bug-flip-operator", "gvn", "dse")


def sweep(modules, labels, config, title, passes=None):
    start = time.perf_counter()
    kwargs = {"passes": passes} if passes is not None else {}
    results = validate_module_batch(modules, config=config, labels=labels,
                                    strategy="stepwise", **kwargs)
    elapsed = time.perf_counter() - start
    rows = [report.to_table_row() for _, report in results]
    print(format_table(rows, title=title))
    report = results[-1][1]
    shard = report.shard_stats or {}
    cache = report.cache_stats or {}
    print(f"  wall time          : {elapsed:.2f}s")
    print(f"  backend            : {shard.get('executor', '?')} "
          f"({shard.get('workers', 0)} workers)")
    print(f"  distinct pairs     : {shard.get('distinct_pairs', 0)} "
          f"(pooled items {shard.get('pooled_pairs', 0)}, "
          f"chain items {shard.get('chain_items', 0)})")
    if shard.get("executor") == "wave":
        print(f"  waves              : {shard.get('waves', 0)} run, "
              f"{shard.get('waves_cancelled', 0)} function-wave slots "
              f"cancelled, {shard.get('speculative_pairs_skipped', 0)} "
              f"planned pairs never validated")
    if shard.get("executor") == "steal":
        print(f"  stealing           : {shard.get('items_stolen', 0)} items "
              f"stolen in {shard.get('steal_attempts', 0)} attempts, "
              f"{shard.get('speculative_pairs_skipped', 0)} doomed pairs "
              f"cancelled off the queue")
    print(f"  cache              : {cache.get('hits', 0)} hits / "
          f"{cache.get('misses', 0)} misses "
          f"({cache.get('disk_loaded', 0)} loaded from disk)")
    if "store_flushes" in cache:
        print(f"  proof store        : "
              f"{cache.get('store_flushes', 0)} flushes, "
              f"{cache.get('store_lazy_loads', 0)} entries lazily faulted, "
              f"{cache.get('store_bytes_written', 0)} B written / "
              f"{cache.get('store_bytes_read', 0)} B read")
    print()
    return results


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    # At least 2 so the sharded path engages even on single-core boxes.
    workers = min(4, max(2, os.cpu_count() or 2))
    labels = list(BENCHMARKS)

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        config = replace(DEFAULT_CONFIG, concurrency=workers, cache_dir=cache_dir)
        print(f"sharded stepwise sweep: {len(BENCHMARKS)} corpora at scale {scale}, "
              f"{workers} workers, cache at {cache_dir}\n")

        modules = [build_corpus(BENCHMARKS_BY_NAME[name], scale) for name in labels]
        sweep(modules, labels, config, "Cold sweep (empty cache)")

        # A fresh batch (new modules, new process-level cache object): every
        # pair is answered from the on-disk cache the cold sweep saved.
        modules = [build_corpus(BENCHMARKS_BY_NAME[name], scale) for name in labels]
        results = sweep(modules, labels, config, "Warm sweep (persistent cache)")

        cache = results[-1][1].cache_stats or {}
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        rate = cache.get("hits", 0) / lookups if lookups else 1.0
        print(f"warm-run cache-hit rate: {rate:.1%} — "
              f"the second sweep re-proved "
              f"{(results[-1][1].shard_stats or {}).get('distinct_pairs', 0)} pairs\n")

    # Backend selection on a high-rejection pipeline: eager pool schedule
    # vs speculative waves, each with its own cold in-memory cache so the
    # query counts are comparable.  Chain packing is disabled for the
    # eager run to make it the literal "round 1 validates every pair"
    # baseline the wave backend improves on.
    modules = [build_corpus(BENCHMARKS_BY_NAME[name], scale) for name in labels]
    eager_config = replace(DEFAULT_CONFIG, concurrency=workers,
                           executor="pool", chain_graphs=False)
    eager = sweep(modules, labels, eager_config,
                  "High-rejection sweep, eager pool backend (buggy pipeline)",
                  passes=BUGGY_PIPELINE)
    modules = [build_corpus(BENCHMARKS_BY_NAME[name], scale) for name in labels]
    wave_config = replace(DEFAULT_CONFIG, concurrency=workers, executor="wave")
    wave = sweep(modules, labels, wave_config,
                 "High-rejection sweep, speculative wave backend",
                 passes=BUGGY_PIPELINE)

    eager_pairs = (eager[-1][1].shard_stats or {}).get("distinct_pairs", 0)
    wave_pairs = (wave[-1][1].shard_stats or {}).get("distinct_pairs", 0)
    identical = (
        [r.signature() for _, rep in eager for r in rep.records] ==
        [r.signature() for _, rep in wave for r in rep.records])
    print(f"wave vs eager: {wave_pairs} vs {eager_pairs} queries answered "
          f"({eager_pairs - wave_pairs} saved by cancelling doomed pairs); "
          f"records identical: {identical}\n")

    # Work stealing over the sqlite proof store: the same cold/warm cycle
    # as the first section, but idle workers steal queued items from the
    # most-loaded peer and the cache persists through incremental sqlite
    # upserts instead of whole-file JSON rewrites — so the warm run
    # faults in only the rows it actually consults.
    with tempfile.TemporaryDirectory(prefix="repro-sqlite-") as cache_dir:
        steal_config = replace(DEFAULT_CONFIG, concurrency=workers,
                               executor="steal", cache_dir=cache_dir,
                               cache_backend="sqlite")
        modules = [build_corpus(BENCHMARKS_BY_NAME[name], scale) for name in labels]
        sweep(modules, labels, steal_config,
              "Cold sweep, work-stealing backend + sqlite proof store")
        modules = [build_corpus(BENCHMARKS_BY_NAME[name], scale) for name in labels]
        results = sweep(modules, labels, steal_config,
                        "Warm sweep, work-stealing backend + sqlite proof store")

        cache = results[-1][1].cache_stats or {}
        loaded = cache.get("disk_loaded", 0)
        lazy = cache.get("store_lazy_loads", 0)
        print(f"warm sqlite run: faulted {lazy} of {loaded} stored entries "
              f"lazily — {loaded - lazy} proofs never left the database")


if __name__ == "__main__":
    main()
