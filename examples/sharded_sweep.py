#!/usr/bin/env python3
"""Corpus-scale validation: sharded stepwise sweeps with a persistent cache.

This example shows the two scaling layers the driver grew on top of the
paper's per-function validator:

* **sharding** — ``validate_module_batch`` flattens the per-pass adjacent
  checkpoint pairs of *all* functions of *all* modules into one
  deduplicated work queue and fans it out over a process pool
  (``config.concurrency``), then reassembles per-function verdicts, blame
  and kept prefixes identical to the serial path;
* **persistence** — with ``config.cache_dir`` set, every proved pair is
  saved to a content-addressed on-disk cache, so a second sweep (a CI
  re-run, a nightly job) answers from disk instead of re-proving
  anything.

Run with::

    python examples/sharded_sweep.py [scale]

``scale`` (default 0.3) multiplies every corpus's function count.
"""

import os
import sys
import tempfile
import time
from dataclasses import replace

from repro.bench import BENCHMARKS_BY_NAME, build_corpus, format_table
from repro.validator import DEFAULT_CONFIG, validate_module_batch

BENCHMARKS = ("sqlite", "bzip2", "hmmer", "mcf", "lbm")


def sweep(modules, labels, config, title):
    start = time.perf_counter()
    results = validate_module_batch(modules, config=config, labels=labels,
                                    strategy="stepwise")
    elapsed = time.perf_counter() - start
    rows = [report.to_table_row() for _, report in results]
    print(format_table(rows, title=title))
    report = results[-1][1]
    shard = report.shard_stats or {}
    cache = report.cache_stats or {}
    print(f"  wall time          : {elapsed:.2f}s")
    print(f"  distinct pairs     : {shard.get('distinct_pairs', 0)} "
          f"(pooled {shard.get('pooled_pairs', 0)} over "
          f"{shard.get('workers', 0)} workers)")
    print(f"  cache              : {cache.get('hits', 0)} hits / "
          f"{cache.get('misses', 0)} misses "
          f"({cache.get('disk_loaded', 0)} loaded from disk)")
    print()
    return results


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    # At least 2 so the sharded path engages even on single-core boxes.
    workers = min(4, max(2, os.cpu_count() or 2))
    labels = list(BENCHMARKS)

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        config = replace(DEFAULT_CONFIG, concurrency=workers, cache_dir=cache_dir)
        print(f"sharded stepwise sweep: {len(BENCHMARKS)} corpora at scale {scale}, "
              f"{workers} workers, cache at {cache_dir}\n")

        modules = [build_corpus(BENCHMARKS_BY_NAME[name], scale) for name in labels]
        sweep(modules, labels, config, "Cold sweep (empty cache)")

        # A fresh batch (new modules, new process-level cache object): every
        # pair is answered from the on-disk cache the cold sweep saved.
        modules = [build_corpus(BENCHMARKS_BY_NAME[name], scale) for name in labels]
        results = sweep(modules, labels, config, "Warm sweep (persistent cache)")

        cache = results[-1][1].cache_stats or {}
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        rate = cache.get("hits", 0) / lookups if lookups else 1.0
        print(f"warm-run cache-hit rate: {rate:.1%} — "
              f"the second sweep re-proved "
              f"{(results[-1][1].shard_stats or {}).get('distinct_pairs', 0)} pairs")


if __name__ == "__main__":
    main()
