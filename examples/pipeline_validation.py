#!/usr/bin/env python3
"""Benchmark-style run: the llvm-md driver over synthetic SPEC-like corpora.

Reproduces a miniature version of the paper's Figure 4 experiment: build a
few of the benchmark corpora, run the full optimization pipeline through
the ``llvm_md`` driver (optimize → validate → keep or reject per
function), and print per-benchmark validation rates, times and the
failure-reason histogram.

Run with::

    python examples/pipeline_validation.py [scale]

``scale`` (default 0.4) multiplies every corpus's function count.
"""

import sys

from repro.bench import BENCHMARKS_BY_NAME, build_corpus, format_table
from repro.transforms import PAPER_PIPELINE
from repro.validator import llvm_md

BENCHMARKS = ("sqlite", "bzip2", "hmmer", "perlbench")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    rows = []
    reasons = {}
    print(f"pipeline: {', '.join(PAPER_PIPELINE)}  (scale {scale})\n")
    for name in BENCHMARKS:
        module = build_corpus(BENCHMARKS_BY_NAME[name], scale=scale)
        optimized, report = llvm_md(module, PAPER_PIPELINE, label=name)
        rows.append(report.to_table_row())
        for reason, count in report.reasons_histogram().items():
            reasons[reason] = reasons.get(reason, 0) + count
        kept = sum(1 for record in report.records if record.transformed and record.validated)
        print(f"{name}: kept {kept} optimized bodies, "
              f"rolled back {report.rejected_functions} "
              f"({report.total_time:.2f}s validation)")

    print()
    print(format_table(rows, title="Figure 4 (miniature)"))
    print("\nfailure reasons:", reasons or "none")


if __name__ == "__main__":
    main()
