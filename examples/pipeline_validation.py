#!/usr/bin/env python3
"""Benchmark-style run: the llvm-md driver over synthetic SPEC-like corpora.

Reproduces a miniature version of the paper's Figure 4 experiment: build a
few of the benchmark corpora, run the full optimization pipeline through
the ``llvm_md`` driver (optimize → validate → keep or reject per
function), and print per-benchmark validation rates, times and the
failure-reason histogram.

Beyond the paper, the driver now supports three validation *strategies* —
``whole`` (the paper's single composed query), ``stepwise`` (validate each
pass's effect separately, keep the longest validated prefix and blame the
failing pass) and ``bisect`` (whole first, binary-search blame on
rejection).  The second half of this example compares ``whole`` against
``stepwise`` and shows the optimization work stepwise salvages from
functions whole validation rolls back entirely.

Run with::

    python examples/pipeline_validation.py [scale]

``scale`` (default 0.4) multiplies every corpus's function count.
"""

import sys

from repro.bench import BENCHMARKS_BY_NAME, build_corpus, format_table
from repro.transforms import PAPER_PIPELINE
from repro.validator import llvm_md

BENCHMARKS = ("sqlite", "bzip2", "hmmer", "perlbench")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    rows = []
    reasons = {}
    stepwise_rows = []
    print(f"pipeline: {', '.join(PAPER_PIPELINE)}  (scale {scale})\n")
    for name in BENCHMARKS:
        module = build_corpus(BENCHMARKS_BY_NAME[name], scale=scale)
        optimized, report = llvm_md(module, PAPER_PIPELINE, label=name)
        rows.append(report.to_table_row())
        for reason, count in report.reasons_histogram().items():
            reasons[reason] = reasons.get(reason, 0) + count
        kept = sum(1 for record in report.records if record.transformed and record.validated)
        print(f"{name}: kept {kept} optimized bodies, "
              f"rolled back {report.rejected_functions} "
              f"({report.total_time:.2f}s validation)")

        _, stepwise_report = llvm_md(module, PAPER_PIPELINE, label=name,
                                     strategy="stepwise")
        stats = stepwise_report.analysis_stats or {}
        stepwise_rows.append({
            "benchmark": name,
            "whole_rejected": report.rejected_functions,
            "partially_kept": stepwise_report.partially_kept_functions,
            "salvaged_steps": stepwise_report.kept_prefix_steps,
            "blamed": ", ".join(f"{p}×{n}" for p, n in
                                sorted(stepwise_report.blame_histogram().items())) or "-",
            "analyses_reused": stats.get("analyses_reused", 0),
        })

    print()
    print(format_table(rows, title="Figure 4 (miniature)"))
    print("\nfailure reasons:", reasons or "none")
    print()
    print(format_table(stepwise_rows,
                       title="Stepwise strategy: salvage and blame (vs whole)"))
    print("\nEvery 'salvaged step' is a validated pass effect the whole-pair "
          "strategy would have rolled back;\n'blamed' names the first pass "
          "whose effect failed to validate, per function.")


if __name__ == "__main__":
    main()
