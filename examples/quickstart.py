#!/usr/bin/env python3
"""Quickstart: validate a hand-written optimization with LLVM-MD.

This walks through the paper's introductory example (§3.1): two basic
blocks that compute the same value in different ways, plus a miscompiled
variant, and shows the validator accepting the former and rejecting the
latter.  It then runs the real optimizer pipeline on a small function and
validates its output.

Run with::

    python examples/quickstart.py
"""

from repro.ir import clone_function, parse_module, print_function
from repro.transforms import PAPER_PIPELINE, optimize
from repro.validator import validate

SOURCE = """
define i32 @original(i32 %a) {
entry:
  %x1 = add i32 3, 3
  %x2 = mul i32 %a, %x1
  %x3 = add i32 %x2, %x2
  ret i32 %x3
}

define i32 @optimized(i32 %a) {
entry:
  %y1 = mul i32 %a, 6
  %y2 = shl i32 %y1, 1
  ret i32 %y2
}

define i32 @miscompiled(i32 %a) {
entry:
  %y1 = mul i32 %a, 7
  %y2 = shl i32 %y1, 1
  ret i32 %y2
}

define i32 @with_loop(i32 %a, i32 %n) {
entry:
  %p = alloca i32
  store i32 %a, i32* %p
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %inext, %body ]
  %acc = phi i32 [ 0, %entry ], [ %accnext, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %v = load i32, i32* %p
  %inv = add i32 %v, 3
  %accnext = add i32 %acc, %inv
  %inext = add i32 %i, 1
  br label %loop
exit:
  %r = add i32 %acc, %acc
  ret i32 %r
}
"""


def main() -> None:
    module = parse_module(SOURCE, name="quickstart")

    # 1. The paper's basic-block example: 3+3 folds to 6, a*6 is shared,
    #    and x+x normalizes to x<<1, so the graphs merge.
    original = module.get_function("original")
    optimized = module.get_function("optimized")
    result = validate(original, optimized)
    print(f"original vs optimized : {result.reason:24s} success={result.is_success}")

    # 2. A miscompiled variant (multiplies by 7 instead of 6) is rejected.
    miscompiled = module.get_function("miscompiled")
    result = validate(original, miscompiled)
    print(f"original vs miscompiled: {result.reason:24s} success={result.is_success}")
    if result.detail:
        print("  mismatch detail:")
        for line in result.detail.splitlines():
            print("   ", line)

    # 3. Run the real pipeline (ADCE, GVN, SCCP, LICM, loop deletion,
    #    loop unswitching, DSE) on a loop and validate the result.
    with_loop = module.get_function("with_loop")
    after = optimize(clone_function(with_loop), PAPER_PIPELINE)
    print("\nAfter the paper pipeline, @with_loop becomes:\n")
    print(print_function(after))
    result = validate(with_loop, after)
    print(f"\npipeline validation    : {result.reason:24s} success={result.is_success}")
    print(f"normalization stats    : {result.stats}")


if __name__ == "__main__":
    main()
