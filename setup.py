"""Setuptools shim; metadata lives in pyproject.toml."""
from setuptools import setup

setup()
